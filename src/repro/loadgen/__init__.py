"""Open-loop load generator for the serving frontend.

Builds a deterministic *schedule* first — arrival times from a Poisson
or usenet-diurnal process, each arrival bound to a tenant/user from a
million-user population and to a concrete probe or scan — then replays
it against a client in open loop: requests are issued when the clock
says so, never when the previous response lands.  Responses settle
concurrently; the generator records each request's fate (completed,
shed, rate-limited, deadline-expired) and wall-clock latency.

The report separates **offered** load (what the schedule demanded) from
**admitted/completed** load (what the server absorbed) — the gap *is*
the overload behaviour under test.  ``max_lag_s`` reports how far the
issue loop itself fell behind the schedule, so a run where the
generator (not the server) was the bottleneck is visible instead of
silently under-offering.

Works against either client in :mod:`repro.serve.client`; schedules are
reproducible from the seed, so two policies can be offered *exactly*
the same traffic.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import (
    FrontendError,
    RequestRejected,
    TransportError,
    WorkloadError,
)
from ..obs import Histogram
from ..serve.resilience import ResilienceStats
from .arrivals import (
    TenantPopulation,
    modulated_arrivals,
    poisson_arrivals,
    usenet_diurnal_profile,
)

#: Arrival shapes :class:`LoadConfig` accepts.
ARRIVAL_KINDS = ("poisson", "diurnal")


@dataclass(frozen=True)
class LoadConfig:
    """One open-loop burst's shape.

    ``offered_qps`` is the schedule's mean rate; the diurnal profile
    redistributes it across the run without changing the mean.
    ``t_lo``/``t_hi`` bound the day axis queries ask about (take them
    from the served cluster's window).
    """

    duration_s: float = 2.0
    offered_qps: float = 400.0
    arrivals: str = "poisson"
    #: Days of the usenet weekly profile compressed onto the run
    #: (only used by ``arrivals="diurnal"``).
    diurnal_days: int = 7
    population: TenantPopulation = field(default_factory=TenantPopulation)
    probe_fraction: float = 0.9
    domain: int = 400
    t_lo: int = 1
    t_hi: int = 5
    deadline_ms: float | None = None
    seed: int = 7

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.offered_qps <= 0:
            raise WorkloadError(
                f"offered_qps must be > 0, got {self.offered_qps}"
            )
        if self.arrivals not in ARRIVAL_KINDS:
            raise WorkloadError(
                f"unknown arrival kind {self.arrivals!r}; "
                f"known: {', '.join(ARRIVAL_KINDS)}"
            )
        if not 0.0 <= self.probe_fraction <= 1.0:
            raise WorkloadError(
                f"probe_fraction must be in [0, 1], "
                f"got {self.probe_fraction}"
            )
        if self.domain < 1:
            raise WorkloadError(f"domain must be >= 1, got {self.domain}")
        if not self.t_lo <= self.t_hi:
            raise WorkloadError(
                f"t_lo {self.t_lo} must be <= t_hi {self.t_hi}"
            )


@dataclass(frozen=True)
class ScheduledRequest:
    """One arrival: when, who, and what to ask."""

    at: float
    tenant: str
    user_id: int
    op: str  # "probe" | "scan"
    value: int | None
    t1: int
    t2: int


def build_schedule(config: LoadConfig) -> list[ScheduledRequest]:
    """Return the burst's deterministic request schedule."""
    rng = random.Random(config.seed)
    if config.arrivals == "diurnal":
        times = modulated_arrivals(
            config.offered_qps,
            config.duration_s,
            usenet_diurnal_profile(config.diurnal_days),
            rng,
        )
    else:
        times = poisson_arrivals(config.offered_qps, config.duration_s, rng)
    schedule = []
    for t in times:
        tenant, user_id = config.population.sample(rng)
        t1 = rng.randint(config.t_lo, config.t_hi)
        t2 = rng.randint(t1, config.t_hi)
        if rng.random() < config.probe_fraction:
            schedule.append(
                ScheduledRequest(
                    t, tenant, user_id, "probe",
                    rng.randint(1, config.domain), t1, t2,
                )
            )
        else:
            schedule.append(
                ScheduledRequest(t, tenant, user_id, "scan", None, t1, t2)
            )
    return schedule


@dataclass
class LoadReport:
    """Outcome of one open-loop burst (all latencies wall-clock)."""

    offered: int
    offered_qps: float
    wall_duration_s: float
    completed: int
    rejected: dict[str, int]
    errors: int
    latency: dict[str, float]
    per_tenant: dict[str, dict[str, int]]
    max_lag_s: float
    #: Transport-level failures (torn streams) — a subset of ``errors``.
    transport_errors: int = 0
    #: Per-tenant per-code rejection breakdown: which tenant was turned
    #: away for which reason (the fair-queueing claims read this).
    rejected_by_tenant: dict[str, dict[str, int]] = field(
        default_factory=dict
    )
    #: Backend attempts per offered request over this burst: 1.0 for a
    #: plain client; > 1.0 measures the retry/hedge overhead a
    #: :class:`~repro.serve.resilience.ResilientClient` added.
    amplification: float = 1.0
    #: Resilience deltas over the burst (hedges, retries, budget
    #: denials...) when the client exposes
    #: :class:`~repro.serve.resilience.ResilienceStats`.
    resilience: dict[str, float] | None = None

    @property
    def shed(self) -> int:
        """Return how many requests the shed policy turned away."""
        return self.rejected.get("shed-overload", 0)

    @property
    def admitted_qps(self) -> float:
        """Return completed requests per wall-clock second."""
        if self.wall_duration_s <= 0:
            return 0.0
        return self.completed / self.wall_duration_s

    @property
    def shed_ratio(self) -> float:
        """Return the fraction of offered requests that were shed."""
        return self.shed / self.offered if self.offered else 0.0

    @property
    def reject_ratio(self) -> float:
        """Return the fraction of offered requests rejected for any reason."""
        total = sum(self.rejected.values())
        return total / self.offered if self.offered else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Return the JSON-serialisable report."""
        return {
            "offered": self.offered,
            "offered_qps": self.offered_qps,
            "wall_duration_s": self.wall_duration_s,
            "completed": self.completed,
            "admitted_qps": self.admitted_qps,
            "rejected": dict(sorted(self.rejected.items())),
            "shed_ratio": self.shed_ratio,
            "errors": self.errors,
            "latency": self.latency,
            "per_tenant": {
                k: dict(v) for k, v in sorted(self.per_tenant.items())
            },
            "max_lag_s": self.max_lag_s,
            "transport_errors": self.transport_errors,
            "rejected_by_tenant": {
                k: dict(sorted(v.items()))
                for k, v in sorted(self.rejected_by_tenant.items())
            },
            "amplification": self.amplification,
            **(
                {} if self.resilience is None
                else {"resilience": dict(self.resilience)}
            ),
        }


async def run_load(
    client: Any,
    config: LoadConfig,
    *,
    clock: Callable[[], float] = time.monotonic,
    schedule: list[ScheduledRequest] | None = None,
) -> LoadReport:
    """Replay a schedule against ``client`` in open loop.

    ``schedule`` defaults to ``build_schedule(config)``; pass one
    explicitly to offer byte-identical traffic to several clients or
    server configurations (the A/B shape every bench claim relies on).
    """
    if schedule is None:
        schedule = build_schedule(config)
    latencies = Histogram("loadgen.latency")
    rejected: dict[str, int] = {}
    per_tenant: dict[str, dict[str, int]] = {}
    rejected_by_tenant: dict[str, dict[str, int]] = {}
    completed = 0
    errors = 0
    transport_errors = 0
    max_lag = 0.0
    # Amplification is measured as a delta over the burst so one client
    # can serve several bursts without cross-contamination.
    res_stats = getattr(client, "stats", None)
    if not isinstance(res_stats, ResilienceStats):
        res_stats = None
    res_before = res_stats.to_dict() if res_stats is not None else None

    def tenant_bin(tenant: str) -> dict[str, int]:
        return per_tenant.setdefault(
            tenant, {"offered": 0, "completed": 0, "rejected": 0}
        )

    async def issue(request: ScheduledRequest) -> None:
        nonlocal completed, errors, transport_errors
        started = clock()
        try:
            if request.op == "probe":
                await client.probe(
                    request.value, request.t1, request.t2,
                    tenant=request.tenant,
                    deadline_ms=config.deadline_ms,
                )
            else:
                await client.scan(
                    request.t1, request.t2,
                    tenant=request.tenant,
                    deadline_ms=config.deadline_ms,
                )
        except RequestRejected as exc:
            rejected[exc.code] = rejected.get(exc.code, 0) + 1
            tenant_bin(request.tenant)["rejected"] += 1
            by_code = rejected_by_tenant.setdefault(request.tenant, {})
            by_code[exc.code] = by_code.get(exc.code, 0) + 1
            return
        except TransportError:
            transport_errors += 1
            errors += 1
            return
        except (FrontendError, ConnectionError, OSError):
            errors += 1
            return
        completed += 1
        tenant_bin(request.tenant)["completed"] += 1
        latencies.observe(clock() - started)

    tasks: list[asyncio.Task] = []
    loop = asyncio.get_running_loop()
    start = clock()
    for request in schedule:
        tenant_bin(request.tenant)["offered"] += 1
        due = start + request.at
        delay = due - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        else:
            max_lag = max(max_lag, -delay)
        tasks.append(loop.create_task(issue(request)))
    if tasks:
        await asyncio.gather(*tasks)
    wall = clock() - start
    amplification = 1.0
    resilience: dict[str, float] | None = None
    if res_stats is not None and res_before is not None:
        after = res_stats.to_dict()
        resilience = {
            key: after[key] - res_before[key]
            for key in (
                "requests", "attempts", "hedges", "hedge_wins",
                "retries", "budget_denied", "failovers",
            )
        }
        if schedule:
            amplification = resilience["attempts"] / len(schedule)
    return LoadReport(
        offered=len(schedule),
        offered_qps=len(schedule) / config.duration_s,
        wall_duration_s=wall,
        completed=completed,
        rejected=rejected,
        errors=errors,
        latency=latencies.summary(),
        per_tenant=per_tenant,
        max_lag_s=max_lag,
        transport_errors=transport_errors,
        rejected_by_tenant=rejected_by_tenant,
        amplification=amplification,
        resilience=resilience,
    )


__all__ = [
    "ARRIVAL_KINDS",
    "LoadConfig",
    "LoadReport",
    "ScheduledRequest",
    "TenantPopulation",
    "build_schedule",
    "modulated_arrivals",
    "poisson_arrivals",
    "run_load",
    "usenet_diurnal_profile",
]
