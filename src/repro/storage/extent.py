"""Extent handles for the simulated disk.

An :class:`Extent` is a contiguous byte range on the simulated device.  It is
the unit of allocation: packed indexes live in a single extent per index (one
seek scans them), while CONTIGUOUS buckets each own a private extent that is
reallocated when it overflows.

Extents are handles, not data containers — the payload of an index lives in
ordinary Python structures owned by the index layer.  The extent records
*where* and *how large*, which is all the cost model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from ..errors import ExtentError

_EXTENT_IDS = count(1)


@dataclass
class Extent:
    """A contiguous allocated byte range ``[offset, offset + size)``.

    Attributes:
        offset: Starting byte address on the device.
        size: Allocated length in bytes.
        live: ``False`` once the extent has been freed; any further use
            raises :class:`~repro.errors.ExtentError`.
        extent_id: Monotonic identity, stable across the extent's life.
    """

    offset: int
    size: int
    live: bool = True
    extent_id: int = field(default_factory=lambda: next(_EXTENT_IDS))

    @property
    def end(self) -> int:
        """Return the first byte address past the extent."""
        return self.offset + self.size

    def check_live(self) -> None:
        """Raise :class:`ExtentError` if the extent has been freed."""
        if not self.live:
            raise ExtentError(
                f"extent #{self.extent_id} at [{self.offset}, {self.end}) "
                "was already freed"
            )

    def overlaps(self, other: "Extent") -> bool:
        """Return ``True`` if this extent shares any byte with ``other``.

        Zero-size extents occupy no bytes and never overlap anything.
        """
        if self.size == 0 or other.size == 0:
            return False
        return self.offset < other.end and other.offset < self.end

    def adjacent_to(self, other: "Extent") -> bool:
        """Return ``True`` if the two extents touch without overlapping."""
        return self.end == other.offset or other.end == self.offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "live" if self.live else "freed"
        return (
            f"Extent(#{self.extent_id}, [{self.offset}, {self.end}), "
            f"{self.size}B, {state})"
        )
