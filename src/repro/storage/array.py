"""A disk array: ``k`` independent simulated devices behind one facade.

The paper's availability argument — maintenance touches one constituent at
a time, so the other ``n - 1`` stay queryable — only becomes *measurable*
when constituents live on separate devices with separate clocks.
:class:`DiskArray` provides that substrate: ``k``
:class:`~repro.storage.disk.SimulatedDisk` (or
:class:`~repro.storage.faults.FaultyDisk`) devices, each with its own
allocator, I/O counters, optional page cache, and clock, plus a
:class:`Placement` policy mapping index names to devices.

The array itself never charges I/O: callers obtain the device for a
binding via :meth:`disk_for` and do their reads/writes there, so every
byte lands on exactly one device's counters.  Aggregate views (live
bytes, high-water marks, summed I/O and cache snapshots) exist so the
day-level metrics of :mod:`repro.sim` keep their single-disk shape.

With ``k == 1`` the array degenerates to exactly one
:class:`SimulatedDisk` — the serialized driver's world — which is what the
scheduler's equivalence guarantee rests on.
"""

from __future__ import annotations

from typing import Callable, Sequence
from zlib import crc32

from .cost import DiskParameters
from .disk import SimulatedDisk
from .pagecache import PageCache, PageCacheSnapshot
from .stats import IOSnapshot


class Placement:
    """Maps binding names (``I1``, ``Temp`` ...) to device indexes.

    Strategies:

    * ``round_robin`` (default) — the first distinct name seen goes to
      device 0, the next to device 1, and so on, wrapping.  Deterministic
      given the name arrival order, and spreads ``I1..In`` over distinct
      devices whenever ``k >= n`` — the layout the paper's Section 8
      anticipates.
    * ``hash`` — stable CRC32 of the name, independent of arrival order.
    * ``pinned`` — an explicit ``{name: device}`` map; unlisted names fall
      back to round-robin.
    """

    STRATEGIES = ("round_robin", "hash", "pinned")

    def __init__(
        self,
        n_devices: int,
        strategy: str = "round_robin",
        pinned: dict[str, int] | None = None,
    ) -> None:
        if n_devices < 1:
            raise ValueError(f"need at least one device, got {n_devices}")
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown placement strategy {strategy!r}; "
                f"known: {', '.join(self.STRATEGIES)}"
            )
        self.n_devices = n_devices
        self.strategy = strategy
        self.pinned = dict(pinned or {})
        for name, device in self.pinned.items():
            if not 0 <= device < n_devices:
                raise ValueError(
                    f"pinned device {device} for {name!r} outside "
                    f"[0, {n_devices})"
                )
        self._assigned: dict[str, int] = {}

    def device_index(self, name: str) -> int:
        """Return the device hosting ``name``, assigning on first sight."""
        if name in self.pinned:
            return self.pinned[name]
        if self.strategy == "hash":
            return crc32(name.encode("utf-8")) % self.n_devices
        if name not in self._assigned:
            self._assigned[name] = len(self._assigned) % self.n_devices
        return self._assigned[name]

    def assignments(self) -> dict[str, int]:
        """Return the names placed so far (pinned entries included)."""
        out = dict(self._assigned)
        out.update(self.pinned)
        return out


def _sum_io(snapshots: Sequence[IOSnapshot]) -> IOSnapshot:
    """Componentwise sum of per-device I/O snapshots."""
    return IOSnapshot(
        seeks=sum(s.seeks for s in snapshots),
        bytes_read=sum(s.bytes_read for s in snapshots),
        bytes_written=sum(s.bytes_written for s in snapshots),
        reads=sum(s.reads for s in snapshots),
        writes=sum(s.writes for s in snapshots),
        busy_seconds=sum(s.busy_seconds for s in snapshots),
    )


def _sum_cache(snapshots: Sequence[PageCacheSnapshot]) -> PageCacheSnapshot:
    """Componentwise sum of per-device page-cache snapshots."""
    return PageCacheSnapshot(
        hits=sum(s.hits for s in snapshots),
        misses=sum(s.misses for s in snapshots),
        evictions=sum(s.evictions for s in snapshots),
        read_hits=sum(s.read_hits for s in snapshots),
        write_hits=sum(s.write_hits for s in snapshots),
        resident_pages=sum(s.resident_pages for s in snapshots),
        capacity_pages=sum(s.capacity_pages for s in snapshots),
    )


class DiskArray:
    """``k`` simulated devices plus the placement policy over them.

    Args:
        devices: The member devices, in device-index order.  Mixed arrays
            (some :class:`~repro.storage.faults.FaultyDisk`, some plain)
            are allowed — fault injection stays per-device.
        placement: Name-to-device policy; defaults to round-robin over
            ``len(devices)``.
    """

    def __init__(
        self,
        devices: Sequence[SimulatedDisk],
        placement: Placement | None = None,
    ) -> None:
        if not devices:
            raise ValueError("need at least one device")
        self.devices: list[SimulatedDisk] = list(devices)
        self.drained: set[int] = set()
        self.placement = placement or Placement(len(self.devices))
        if self.placement.n_devices != len(self.devices):
            raise ValueError(
                f"placement is over {self.placement.n_devices} devices, "
                f"array has {len(self.devices)}"
            )

    @classmethod
    def create(
        cls,
        n_devices: int,
        *,
        params: DiskParameters | None = None,
        page_cache_bytes: int | None = None,
        page_size: int | None = None,
        strategy: str = "round_robin",
        pinned: dict[str, int] | None = None,
        device_factory: Callable[[int], SimulatedDisk] | None = None,
    ) -> "DiskArray":
        """Build a homogeneous array of ``n_devices`` fresh devices.

        ``page_cache_bytes`` attaches an independent LRU page cache of
        that capacity to *each* device (caches are per-device hardware).
        ``device_factory`` overrides device construction entirely — the
        hook for fault-injected members.
        """
        if device_factory is None:
            def device_factory(_: int) -> SimulatedDisk:
                cache = None
                if page_cache_bytes is not None:
                    cache = (
                        PageCache(page_cache_bytes, page_size)
                        if page_size is not None
                        else PageCache(page_cache_bytes)
                    )
                return SimulatedDisk(params, page_cache=cache)
        devices = [device_factory(i) for i in range(n_devices)]
        return cls(devices, Placement(n_devices, strategy, pinned))

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.devices)

    def device_index(self, name: str) -> int:
        """Return the device index hosting binding ``name``."""
        return self.placement.device_index(name)

    def add_device(self, device: SimulatedDisk) -> int:
        """Append ``device`` to the array; return its device index.

        Used by the cluster's self-healing layer to provision a fresh
        spare for a replica rebuild.  Existing placements are unaffected
        (round-robin assignments already made keep their devices); the
        new device simply becomes addressable.
        """
        self.devices.append(device)
        self.placement.n_devices = len(self.devices)
        return len(self.devices) - 1

    def drain_device(self, index: int) -> None:
        """Mark device ``index`` drained — retired from active service.

        Devices are never removed from the array (indexes are stable ids
        that replicas and metrics reference), so retiring one is a flag:
        the caller is responsible for having moved or dropped its data
        first (the elastic engine drops the old shard's indexes before
        draining its devices).  Drained devices keep their clocks and
        counters for the run's aggregate accounting.
        """
        if not 0 <= index < len(self.devices):
            raise ValueError(
                f"device index {index} outside [0, {len(self.devices)})"
            )
        self.drained.add(index)

    def is_drained(self, index: int) -> bool:
        """Return whether device ``index`` has been drained."""
        return index in self.drained

    def active_indexes(self) -> list[int]:
        """Return the indexes of devices still in active service."""
        return [i for i in range(len(self.devices)) if i not in self.drained]

    def disk_for(self, name: str) -> SimulatedDisk:
        """Return the device hosting binding ``name``."""
        return self.devices[self.placement.device_index(name)]

    # ------------------------------------------------------------------
    # Aggregate clocks and counters
    # ------------------------------------------------------------------

    def clocks(self) -> list[float]:
        """Return every device's clock, in device order."""
        return [d.clock for d in self.devices]

    @property
    def total_clock(self) -> float:
        """Return the sum of all device clocks (serial-equivalent time)."""
        return sum(d.clock for d in self.devices)

    def io_snapshot(self) -> IOSnapshot:
        """Return the array-wide sum of the devices' I/O counters."""
        return _sum_io([d.stats.snapshot() for d in self.devices])

    def cache_snapshot(self) -> PageCacheSnapshot | None:
        """Return the summed page-cache counters (``None`` if no caches)."""
        snaps = [
            d.page_cache.snapshot()
            for d in self.devices
            if d.page_cache is not None
        ]
        if not snaps:
            return None
        return _sum_cache(snaps)

    # ------------------------------------------------------------------
    # Space
    # ------------------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Return live bytes across the whole array."""
        return sum(d.live_bytes for d in self.devices)

    @property
    def high_water_bytes(self) -> int:
        """Return the summed per-device high-water marks.

        Per-device peaks need not be simultaneous, so this is an upper
        bound on the true array-wide peak — the same conservative measure
        :class:`~repro.sim.multidisk_sim.MultiDiskReport` reports.
        """
        return sum(d.high_water_bytes for d in self.devices)

    def reset_high_water(self) -> None:
        """Restart peak-space tracking on every device."""
        for d in self.devices:
            d.reset_high_water()

    def check_invariants(self) -> None:
        """Check every device's allocator invariants."""
        for d in self.devices:
            d.check_invariants()
