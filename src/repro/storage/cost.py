"""Hardware cost parameters for the simulated disk.

The paper's entire analysis (Section 5) is expressed in two hardware
parameters: the seek time and the sequential transfer rate.  Table 12 uses
``seek = 14 ms`` and ``Trans = 10 MB/s``, which we adopt as defaults.

Costs are charged in *seconds* of simulated time.  A single I/O of ``b``
bytes costs ``seek + b / bandwidth``; contiguous (packed) data can therefore
be moved with one seek, while fragmented data pays one seek per extent —
exactly the effect the paper exploits when arguing for packed indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per megabyte, used throughout for converting Table 12 figures.
MEGABYTE = 1_000_000

#: Default seek time from Table 12 (seconds).
DEFAULT_SEEK_S = 0.014

#: Default transfer bandwidth from Table 12 (bytes/second).
DEFAULT_BANDWIDTH_BPS = 10 * MEGABYTE


@dataclass(frozen=True)
class DiskParameters:
    """Immutable description of a simulated disk's performance envelope.

    Attributes:
        seek_s: Time for one random seek, in seconds.
        bandwidth_bps: Sequential transfer rate, in bytes per second.
        capacity_bytes: Total device capacity. ``None`` means unbounded,
            which is convenient for analytic runs that only track the
            high-water mark.
    """

    seek_s: float = DEFAULT_SEEK_S
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    capacity_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.seek_s < 0:
            raise ValueError(f"seek_s must be >= 0, got {self.seek_s}")
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth_bps must be > 0, got {self.bandwidth_bps}"
            )
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be > 0 or None, got {self.capacity_bytes}"
            )

    def transfer_time(self, nbytes: int) -> float:
        """Return the time in seconds to stream ``nbytes`` sequentially."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes / self.bandwidth_bps

    def io_time(self, nbytes: int, *, seeks: float = 1) -> float:
        """Return the time for an I/O of ``nbytes`` preceded by ``seeks`` seeks.

        ``seeks`` may be fractional: under a buffer-pool model only the
        missing fraction of random touches pays a seek.
        """
        if seeks < 0:
            raise ValueError(f"seeks must be >= 0, got {seeks}")
        return seeks * self.seek_s + self.transfer_time(nbytes)
