"""Simulated storage substrate: extents, allocator, clocked disk.

This package stands in for the paper's physical disk.  See ``DESIGN.md`` for
the substitution rationale: the paper's cost analysis uses only seek time and
transfer bandwidth, both of which :class:`DiskParameters` exposes.
"""

from .allocator import ExtentAllocator
from .array import DiskArray, Placement
from .bufferpool import BufferPoolModel
from .cost import DEFAULT_BANDWIDTH_BPS, DEFAULT_SEEK_S, MEGABYTE, DiskParameters
from .disk import SimulatedDisk
from .extent import Extent
from .faults import (
    CrashPoint,
    FaultInjector,
    FaultStats,
    FaultyDisk,
    RetryPolicy,
)
from .pagecache import DEFAULT_PAGE_SIZE, PageCache, PageCacheSnapshot
from .stats import IOSnapshot, IOStats

__all__ = [
    "BufferPoolModel",
    "DiskArray",
    "Placement",
    "DEFAULT_PAGE_SIZE",
    "PageCache",
    "PageCacheSnapshot",
    "CrashPoint",
    "FaultInjector",
    "FaultStats",
    "FaultyDisk",
    "RetryPolicy",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_SEEK_S",
    "MEGABYTE",
    "DiskParameters",
    "Extent",
    "ExtentAllocator",
    "IOSnapshot",
    "IOStats",
    "SimulatedDisk",
]
