"""Trace-driven LRU page cache for the simulated disk.

The analytic :class:`~repro.storage.bufferpool.BufferPoolModel` predicts a
*memoryless* miss rate from the working-set size alone — it cannot see
locality, batching, or warm-up.  :class:`PageCache` replaces that formula
with the real thing: an LRU over fixed-size pages of live extents, driven by
the actual trace of reads and writes the indexes issue.  Plugged into
:class:`~repro.storage.disk.SimulatedDisk`, it makes the memory-pressure
effects behind the paper's Figures 5 and 10 *emergent* rather than assumed:
a Zipf query stream keeps hot buckets resident, a batch sweep warms the
pages the next request needs, and an index that outgrows the cache starts
paying seeks exactly where the authors' 96 MB DEC 3000 did.

Cost semantics (the trace-driven analogue of the analytic model, which
scales seeks by the miss rate):

* a **read** whose pages are all resident is memory-speed — it skips both
  the seek and the transfer;
* a partially resident read pays the caller's seek plus a page-granular
  transfer of the missing pages only;
* a **write** always pays its transfer (write-through: bytes must reach the
  platter), but skips the seek when every touched page is resident — the
  warm pool absorbs the positioning cost, matching how
  :meth:`BufferPoolModel.effective_seeks` discounts a warm working set.

Pages are keyed by ``(extent_id, page_index)``.  Extent ids are unique for
the life of the process, and :meth:`SimulatedDisk.free` invalidates an
extent's pages, so a recycled disk offset can never produce a stale hit.

Under uniform-random touches over a fixed working set the cache's steady
miss rate converges to the analytic ``max(0, 1 − memory/working_set)`` —
property-tested in ``tests/storage/test_pagecache_equivalence.py`` — while
under skewed or sequential traces it captures what the formula cannot.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .extent import Extent

#: Lazily bound :mod:`repro.index.kernels` — imported on first touch to
#: avoid the import cycle ``index -> storage.disk -> pagecache``.
_kernels = None


def _vectorized_enabled() -> bool:
    global _kernels
    if _kernels is None:
        from ..index import kernels

        _kernels = kernels
    return _kernels.vectorized_enabled()

#: Default page size: 4 KiB, the classic OS/buffer-pool granule.
DEFAULT_PAGE_SIZE = 4096


@dataclass(frozen=True)
class PageCacheSnapshot:
    """Immutable point-in-time copy of the cache counters.

    Supports subtraction so callers can measure a window of activity the
    same way they do with :class:`~repro.storage.stats.IOSnapshot`.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    read_hits: int = 0
    write_hits: int = 0
    resident_pages: int = 0
    capacity_pages: int = 0

    def __sub__(self, other: "PageCacheSnapshot") -> "PageCacheSnapshot":
        return PageCacheSnapshot(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            read_hits=self.read_hits - other.read_hits,
            write_hits=self.write_hits - other.write_hits,
            resident_pages=self.resident_pages,
            capacity_pages=self.capacity_pages,
        )

    @property
    def touches(self) -> int:
        """Return total page touches (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Return the fraction of page touches served from memory."""
        touches = self.touches
        return self.hits / touches if touches else 0.0

    @property
    def miss_rate(self) -> float:
        """Return the fraction of page touches that went to disk."""
        touches = self.touches
        return self.misses / touches if touches else 0.0


class PageCache:
    """An LRU cache of fixed-size pages of live extents.

    Args:
        capacity_bytes: Memory available for pages; rounded down to whole
            pages (at least one).
        page_size: Bytes per page.

    The cache never stores payload — like the rest of the storage layer it
    tracks *which* pages are resident, which is all the cost model needs.
    """

    def __init__(
        self,
        capacity_bytes: float,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be > 0, got {capacity_bytes}"
            )
        if page_size <= 0:
            raise ValueError(f"page_size must be > 0, got {page_size}")
        self.page_size = page_size
        self.capacity_pages = max(1, int(capacity_bytes // page_size))
        #: LRU order: oldest first.  Values are unused (set-like).
        self._pages: OrderedDict[tuple[int, int], None] = OrderedDict()
        #: Secondary index: extent_id -> resident page indexes, so freeing
        #: an extent invalidates in O(its pages), not O(cache size).
        self._by_extent: dict[int, set[int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.read_hits = 0
        self.write_hits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Return the number of pages currently cached."""
        return len(self._pages)

    @property
    def capacity_bytes(self) -> int:
        """Return the cache capacity in bytes (whole pages)."""
        return self.capacity_pages * self.page_size

    def is_resident(self, extent: Extent, page_index: int) -> bool:
        """Return ``True`` if the given page of ``extent`` is cached."""
        return (extent.extent_id, page_index) in self._pages

    def snapshot(self) -> PageCacheSnapshot:
        """Return an immutable copy of the current counters."""
        return PageCacheSnapshot(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            read_hits=self.read_hits,
            write_hits=self.write_hits,
            resident_pages=self.resident_pages,
            capacity_pages=self.capacity_pages,
        )

    # ------------------------------------------------------------------
    # Page accounting
    # ------------------------------------------------------------------

    def _page_span(self, extent: Extent, nbytes: int, offset: int) -> range:
        """Return the page indexes a touch of ``[offset, offset+nbytes)`` covers.

        The span is clipped to the extent; first and last pages may be
        partial.
        """
        end = min(offset + nbytes, extent.size)
        if end <= offset:
            return range(0)
        first = offset // self.page_size
        last = (end - 1) // self.page_size
        return range(first, last + 1)

    def _touch(
        self, extent: Extent, nbytes: int, offset: int, *, is_read: bool
    ) -> tuple[int, int]:
        """Record a touch; return ``(missed_pages, total_pages)``.

        Every touched page ends up resident and most-recently-used;
        admission evicts LRU pages as needed.

        With the vectorized kernels enabled, the two overwhelmingly
        common span shapes skip the per-page Python loop:

        * **all resident** (a warm sweep) — bulk counter updates, with
          only the mandatory per-page ``move_to_end`` to keep LRU order
          exact;
        * **none resident** (a cold sweep that fits) — one arithmetic
          eviction count ``max(0, resident + k - capacity)``, a bulk
          pop of that many LRU victims, and one ordered bulk insert.

        Mixed spans — and cold spans larger than the whole cache, where
        later admissions must evict earlier pages of the *same* span —
        take the reference loop, so counters, LRU order, and victim
        choice are identical to the per-page path in every case
        (property-tested in ``tests/storage/test_pagecache_kernel.py``).
        """
        span = self._page_span(extent, nbytes, offset)
        k = len(span)
        if k > 1 and _vectorized_enabled():
            ext_id = extent.extent_id
            resident = self._by_extent.get(ext_id)
            n_hits = len(resident.intersection(span)) if resident else 0
            pages = self._pages
            if n_hits == k:
                for page_index in span:
                    pages.move_to_end((ext_id, page_index))
                self.hits += k
                if is_read:
                    self.read_hits += k
                else:
                    self.write_hits += k
                return 0, k
            if n_hits == 0 and k <= self.capacity_pages:
                n_evict = len(pages) + k - self.capacity_pages
                if n_evict > 0:
                    for _ in range(n_evict):
                        victim, _unused = pages.popitem(last=False)
                        self._forget(victim)
                    self.evictions += n_evict
                for page_index in span:
                    pages[(ext_id, page_index)] = None
                self._by_extent.setdefault(ext_id, set()).update(span)
                self.misses += k
                return k, k
        missed = 0
        for page_index in span:
            key = (extent.extent_id, page_index)
            if key in self._pages:
                self._pages.move_to_end(key)
                self.hits += 1
                if is_read:
                    self.read_hits += 1
                else:
                    self.write_hits += 1
            else:
                missed += 1
                self.misses += 1
                self._admit(key)
        return missed, len(span)

    def _admit(self, key: tuple[int, int]) -> None:
        while len(self._pages) >= self.capacity_pages:
            victim, _ = self._pages.popitem(last=False)
            self._forget(victim)
            self.evictions += 1
        self._pages[key] = None
        self._by_extent.setdefault(key[0], set()).add(key[1])

    def _forget(self, key: tuple[int, int]) -> None:
        pages = self._by_extent.get(key[0])
        if pages is not None:
            pages.discard(key[1])
            if not pages:
                del self._by_extent[key[0]]

    # ------------------------------------------------------------------
    # Hooks (called by SimulatedDisk)
    # ------------------------------------------------------------------

    def read_charges(
        self, extent: Extent, nbytes: int, seeks: float, offset: int = 0
    ) -> tuple[float, int]:
        """Account a read; return the ``(seeks, bytes)`` still owed to disk.

        A fully resident read owes nothing; otherwise the caller's seeks
        are owed in full plus a page-granular transfer of the missing pages
        (clipped to the extent's end).
        """
        missed, total = self._touch(extent, nbytes, offset, is_read=True)
        if missed == 0:
            return 0.0, 0
        missed_bytes = min(missed * self.page_size, extent.size)
        return seeks, missed_bytes

    def write_charges(
        self, extent: Extent, nbytes: int, seeks: float, offset: int = 0
    ) -> tuple[float, int]:
        """Account a write; return the ``(seeks, bytes)`` owed to disk.

        Write-through: the transfer is always owed, but the seek is
        absorbed when every touched page was already resident.
        """
        missed, total = self._touch(extent, nbytes, offset, is_read=False)
        if total and missed == 0:
            return 0.0, nbytes
        return seeks, nbytes

    def invalidate_extent(self, extent: Extent) -> int:
        """Drop every page of ``extent``; return how many were resident.

        Called when the extent is freed — dropped pages are not counted as
        evictions (nothing displaced them).
        """
        pages = self._by_extent.pop(extent.extent_id, None)
        if not pages:
            return 0
        for page_index in pages:
            del self._pages[(extent.extent_id, page_index)]
        return len(pages)

    def clear(self) -> None:
        """Empty the cache (counters are kept)."""
        self._pages.clear()
        self._by_extent.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageCache({self.resident_pages}/{self.capacity_pages} pages "
            f"of {self.page_size}B, {self.hits} hits, {self.misses} misses)"
        )
