"""Buffer-pool (memory-pressure) model for random-access index updates.

The paper's measured constants came from a DEC 3000 with 96 MB of RAM —
less than one-seventh of SCAM's 7-day unpacked index.  Incremental
(CONTIGUOUS) updates touch buckets in random order, so their cost depends
heavily on how much of the index the buffer pool can keep resident:
updates to a resident bucket are memory-speed, misses pay a seek.
Streaming operations (packed builds, scans, copies) are unaffected — they
never revisit a page.

:class:`BufferPoolModel` captures exactly that: given the working-set size
of a random-access operation, it scales the operation's *seek count* by the
miss rate ``max(0, 1 − memory/working_set)``.  Plugged into
:class:`~repro.storage.disk.SimulatedDisk`, it makes incremental ``Add``
super-linear in daily volume once the index outgrows memory — the effect
behind Figure 10's REINDEX-overtakes-WATA crossover (see EXPERIMENTS.md).

The default disk has no buffer pool (``None``): all nominal seeks are paid,
which matches the paper's memoryless Section-5 cost model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BufferPoolModel:
    """A simple LRU-style residency model.

    Attributes:
        memory_bytes: Pool size available for index pages.
        min_miss_rate: Floor on the miss rate even for fully resident
            working sets (cold misses, page write-backs); 0 models a
            perfectly warm cache.
    """

    memory_bytes: float
    min_miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError(
                f"memory_bytes must be > 0, got {self.memory_bytes}"
            )
        if not 0.0 <= self.min_miss_rate <= 1.0:
            raise ValueError(
                f"min_miss_rate must be in [0, 1], got {self.min_miss_rate}"
            )

    def miss_rate(self, working_set_bytes: float) -> float:
        """Return the fraction of random touches that go to disk.

        Uniform-random access over a working set of size ``w`` with an LRU
        pool of size ``m`` hits with probability ``min(1, m/w)``.
        """
        if working_set_bytes < 0:
            raise ValueError(
                f"working_set_bytes must be >= 0, got {working_set_bytes}"
            )
        if working_set_bytes == 0:
            return self.min_miss_rate
        resident = min(1.0, self.memory_bytes / working_set_bytes)
        return max(self.min_miss_rate, 1.0 - resident)

    def effective_seeks(self, seeks: float, working_set_bytes: float) -> float:
        """Scale a nominal seek count by the miss rate."""
        if seeks < 0:
            raise ValueError(f"seeks must be >= 0, got {seeks}")
        return seeks * self.miss_rate(working_set_bytes)
