"""First-fit extent allocator with free-list coalescing.

The allocator hands out contiguous byte ranges from a linear address space.
It exists for two reasons:

* **Space accounting.**  The paper's space measures (Table 8, Figure 3,
  Figure 11) are about how many bytes a wave index pins at its worst moment.
  The allocator tracks live bytes and the all-time high-water mark.
* **Contiguity.**  ``BuildIndex`` must produce a *packed* index whose buckets
  are "allocated contiguously on disk" (Section 2).  The allocator's
  first-fit policy plus end-of-space growth makes a single allocation
  contiguous by construction, so a packed index really is scannable with one
  seek in the cost model.

Freed ranges are coalesced with their neighbours so long-running simulations
(e.g. the 200-day Figure 11 run) do not fragment the free list.
"""

from __future__ import annotations

import bisect

from ..errors import ExtentError, OutOfSpaceError
from .extent import Extent


class ExtentAllocator:
    """First-fit allocator over ``[0, capacity)`` (or an unbounded space).

    Args:
        capacity_bytes: Total space available, or ``None`` for an unbounded
            device that grows at the end as needed.
    """

    def __init__(self, capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be > 0 or None, got {capacity_bytes}"
            )
        self._capacity = capacity_bytes
        # Free list as sorted, non-overlapping, non-adjacent (offset, size).
        self._free: list[tuple[int, int]] = []
        # First never-allocated byte; space beyond it is implicitly free.
        self._frontier = 0
        self._live: dict[int, Extent] = {}
        self._live_bytes = 0
        self._high_water = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Return the number of currently allocated bytes."""
        return self._live_bytes

    @property
    def high_water_bytes(self) -> int:
        """Return the maximum of :attr:`live_bytes` over the allocator's life."""
        return self._high_water

    def reset_high_water(self) -> None:
        """Restart peak tracking from the current live size.

        Lets callers measure the peak of a bounded activity window (e.g.
        one wave-index transition) exactly, even while shadow copies spike
        and fall inside a single operation.
        """
        self._high_water = self._live_bytes

    @property
    def live_extents(self) -> int:
        """Return the count of live extents."""
        return len(self._live)

    @property
    def frontier(self) -> int:
        """Return the first byte address never handed out."""
        return self._frontier

    def live_extent_list(self) -> list[Extent]:
        """Return the live extents (handles, not copies), offset-ordered.

        Crash recovery's mark-and-sweep uses this to find extents no index
        binding references any more (orphans of an interrupted operation).
        """
        return sorted(self._live.values(), key=lambda e: e.offset)

    def free_ranges(self) -> list[tuple[int, int]]:
        """Return a copy of the explicit free list as ``(offset, size)`` pairs."""
        return list(self._free)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, nbytes: int) -> Extent:
        """Allocate a contiguous extent of ``nbytes``.

        Zero-byte allocations are legal (an empty index still needs an
        identity) and consume no space.

        Raises:
            OutOfSpaceError: If the device is bounded and no free range or
                frontier space can satisfy the request.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        offset = self._find_offset(nbytes)
        extent = Extent(offset=offset, size=nbytes)
        self._live[extent.extent_id] = extent
        self._live_bytes += nbytes
        self._high_water = max(self._high_water, self._live_bytes)
        return extent

    def _find_offset(self, nbytes: int) -> int:
        if nbytes == 0:
            return self._frontier
        for i, (off, size) in enumerate(self._free):
            if size >= nbytes:
                if size == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (off + nbytes, size - nbytes)
                return off
        # Grow at the frontier.
        end = self._frontier + nbytes
        if self._capacity is not None and end > self._capacity:
            raise OutOfSpaceError(
                f"cannot allocate {nbytes} bytes: frontier at "
                f"{self._frontier}, capacity {self._capacity}, and no free "
                "range is large enough"
            )
        offset = self._frontier
        self._frontier = end
        return offset

    def free(self, extent: Extent) -> None:
        """Release ``extent`` back to the free list.

        Raises:
            ExtentError: If the extent was already freed or is unknown.
        """
        extent.check_live()
        if extent.extent_id not in self._live:
            raise ExtentError(
                f"extent #{extent.extent_id} does not belong to this allocator"
            )
        del self._live[extent.extent_id]
        extent.live = False
        self._live_bytes -= extent.size
        if extent.size > 0:
            self._insert_free(extent.offset, extent.size)

    def _insert_free(self, offset: int, size: int) -> None:
        """Insert a range into the free list, coalescing with neighbours."""
        i = bisect.bisect_left(self._free, (offset, 0))
        # Coalesce with predecessor.
        if i > 0:
            prev_off, prev_size = self._free[i - 1]
            if prev_off + prev_size == offset:
                offset, size = prev_off, prev_size + size
                del self._free[i - 1]
                i -= 1
        # Coalesce with successor.
        if i < len(self._free):
            next_off, next_size = self._free[i]
            if offset + size == next_off:
                size += next_size
                del self._free[i]
        # Coalesce with the frontier: return trailing space entirely.
        if offset + size == self._frontier:
            self._frontier = offset
        else:
            self._free.insert(i, (offset, size))

    # ------------------------------------------------------------------
    # Validation helpers (used heavily by property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert internal consistency; raises ``AssertionError`` on breakage.

        Checks that live extents never overlap each other or the free list,
        that the free list is sorted/coalesced, and that byte accounting
        matches the extent population.
        """
        extents = sorted(self._live.values(), key=lambda e: e.offset)
        for a, b in zip(extents, extents[1:]):
            assert not a.overlaps(b), f"live extents overlap: {a} vs {b}"
        total = sum(e.size for e in extents)
        assert total == self._live_bytes, (
            f"live byte accounting drifted: {total} != {self._live_bytes}"
        )
        last_end = None
        for off, size in self._free:
            assert size > 0, "zero-sized free range"
            assert off + size <= self._frontier, "free range beyond frontier"
            if last_end is not None:
                assert off > last_end, "free list not sorted/coalesced"
            last_end = off + size
        for ext in extents:
            if ext.size == 0:
                # Zero-size extents are positionless handles; the frontier
                # may retract past their nominal offset.
                continue
            assert ext.end <= self._frontier, f"{ext} beyond frontier"
            for off, size in self._free:
                free_ext = Extent(offset=off, size=size, extent_id=-1)
                assert not ext.overlaps(free_ext), (
                    f"{ext} overlaps free range [{off}, {off + size})"
                )
