"""I/O statistics collected by the simulated disk.

The counters mirror the quantities the paper reasons about: seeks, bytes
read/written, and elapsed device time.  :class:`IOStats` instances support
subtraction so callers can cheaply measure a window of activity::

    before = disk.stats.snapshot()
    ...do work...
    delta = disk.stats.snapshot() - before
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable point-in-time copy of the disk counters."""

    seeks: float = 0
    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0
    busy_seconds: float = 0.0

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            seeks=self.seeks - other.seeks,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            busy_seconds=self.busy_seconds - other.busy_seconds,
        )

    @property
    def bytes_total(self) -> int:
        """Return total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written


class IOStats:
    """Mutable I/O counters owned by a :class:`~repro.storage.disk.SimulatedDisk`."""

    def __init__(self) -> None:
        self.seeks = 0.0
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0
        self.busy_seconds = 0.0

    def record_read(self, nbytes: int, seeks: float, seconds: float) -> None:
        """Account for a read of ``nbytes`` preceded by ``seeks`` seeks."""
        self.reads += 1
        self.seeks += seeks
        self.bytes_read += nbytes
        self.busy_seconds += seconds

    def record_write(self, nbytes: int, seeks: float, seconds: float) -> None:
        """Account for a write of ``nbytes`` preceded by ``seeks`` seeks."""
        self.writes += 1
        self.seeks += seeks
        self.bytes_written += nbytes
        self.busy_seconds += seconds

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current counters."""
        return IOSnapshot(
            seeks=self.seeks,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            reads=self.reads,
            writes=self.writes,
            busy_seconds=self.busy_seconds,
        )
