"""Clocked simulated disk.

:class:`SimulatedDisk` combines an :class:`~repro.storage.allocator.ExtentAllocator`
with a :class:`~repro.storage.cost.DiskParameters` cost model and a running
clock.  Index code allocates extents, then *reads* and *writes* through the
disk so every byte moved is charged ``seek + bytes/bandwidth`` seconds.

This is the substitution for the paper's physical DEC-3000 disk: the paper's
Section-5 analysis is expressed entirely in ``seek`` and ``Trans``, so a
device that charges those two costs reproduces every trend the paper derives
from them (DESIGN.md, substitution table).

The disk does not store payload bytes — indexes keep their entries in Python
structures and use extents purely as placement/cost bookkeeping.  This keeps
multi-hundred-megabyte "days" affordable in memory while preserving the
byte-exact accounting the experiments need.
"""

from __future__ import annotations

from .allocator import ExtentAllocator
from .bufferpool import BufferPoolModel
from .cost import DiskParameters
from .extent import Extent
from .pagecache import PageCache
from .stats import IOSnapshot, IOStats


class SimulatedDisk:
    """A byte-addressed device with seek/transfer cost accounting.

    Args:
        params: Hardware cost parameters; defaults to Table 12's disk
            (14 ms seek, 10 MB/s transfer, unbounded capacity).
        buffer_pool: Optional *analytic* residency model — scales seek
            counts by a closed-form miss rate (the paper's memoryless
            Section-5 behaviour).
        page_cache: Optional *trace-driven* LRU page cache — when present
            it supersedes the analytic model: every extent read/write is
            routed through it and cached page touches skip their
            seek/transfer charges (see :mod:`repro.storage.pagecache`).
    """

    def __init__(
        self,
        params: DiskParameters | None = None,
        buffer_pool: "BufferPoolModel | None" = None,
        page_cache: "PageCache | None" = None,
    ) -> None:
        self.params = params or DiskParameters()
        self.buffer_pool = buffer_pool
        self.page_cache = page_cache
        self._allocator = ExtentAllocator(self.params.capacity_bytes)
        self.stats = IOStats()
        self._clock = 0.0

    def effective_seeks(
        self, seeks: float, working_set_bytes: float | None = None
    ) -> float:
        """Scale ``seeks`` by the buffer pool's miss rate, if modelled.

        Random-access callers (CONTIGUOUS bucket updates) pass the size of
        the structure they hop around in; streaming callers pass ``None``
        and always pay their nominal seeks.

        With a trace-driven :class:`PageCache` attached the nominal seeks
        are returned unscaled: the cache itself decides, touch by touch,
        which I/Os are memory-speed — applying the analytic discount too
        would double-count residency.
        """
        if self.page_cache is not None:
            return seeks
        if self.buffer_pool is None or working_set_bytes is None:
            return seeks
        return self.buffer_pool.effective_seeks(seeks, working_set_bytes)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Return elapsed simulated seconds since the disk was created."""
        return self._clock

    def advance(self, seconds: float) -> None:
        """Advance the clock without I/O (e.g. CPU-bound work models)."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._clock += seconds

    # ------------------------------------------------------------------
    # Space management
    # ------------------------------------------------------------------

    def allocate(self, nbytes: int) -> Extent:
        """Allocate a contiguous extent; free space costs no I/O time."""
        return self._allocator.allocate(nbytes)

    def free(self, extent: Extent) -> None:
        """Release an extent.

        Freeing is instantaneous in the model, mirroring the paper's
        observation that a commercial DBMS throws away a whole index in
        milliseconds regardless of size — the heart of WATA's advantage.
        Any cached pages of the extent are invalidated, so a recycled
        offset can never produce a stale hit.
        """
        if self.page_cache is not None:
            self.page_cache.invalidate_extent(extent)
        self._allocator.free(extent)

    def reallocate(self, extent: Extent, nbytes: int) -> Extent:
        """Allocate a new extent of ``nbytes`` and free ``extent``.

        The new extent is allocated *before* the old one is freed, exactly
        as CONTIGUOUS must do (the old bucket is copied into the new one),
        so the transient space spike is captured by the high-water mark.
        """
        new = self._allocator.allocate(nbytes)
        if self.page_cache is not None:
            self.page_cache.invalidate_extent(extent)
        self._allocator.free(extent)
        return new

    @property
    def live_bytes(self) -> int:
        """Return currently allocated bytes."""
        return self._allocator.live_bytes

    @property
    def high_water_bytes(self) -> int:
        """Return the maximum of :attr:`live_bytes` since the last reset."""
        return self._allocator.high_water_bytes

    def reset_high_water(self) -> None:
        """Restart peak-space tracking from the current live size."""
        self._allocator.reset_high_water()

    @property
    def live_extents(self) -> int:
        """Return the number of live extents."""
        return self._allocator.live_extents

    def live_extent_list(self) -> list[Extent]:
        """Return the live extent handles (see the allocator's method)."""
        return self._allocator.live_extent_list()

    def check_invariants(self) -> None:
        """Delegate to the allocator's consistency checks."""
        self._allocator.check_invariants()

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def read(
        self,
        extent: Extent,
        nbytes: int | None = None,
        *,
        seeks: float = 1,
        offset: int = 0,
    ) -> float:
        """Charge a read of ``nbytes`` (default: the whole extent).

        Returns the seconds the read took.  ``seeks`` defaults to one: any
        random access pays a seek, while callers streaming many adjacent
        extents (a packed segment scan) pass ``seeks=0`` for all but the
        first extent.  ``offset`` locates the touch inside the extent (a
        bucket's slice of a shared packed extent) so the page cache tracks
        the right pages; it does not change the charge on a cacheless disk.
        """
        extent.check_live()
        if nbytes is None:
            nbytes = extent.size
        self._check_range(extent, nbytes, offset, "read")
        if self.page_cache is not None:
            # Resident pages are memory-speed: only the owed remainder
            # (seek if any page missed, transfer of missed pages) reaches
            # the device and the counters.
            seeks, nbytes = self.page_cache.read_charges(
                extent, nbytes, seeks, offset
            )
        seconds = self.params.io_time(nbytes, seeks=seeks)
        self.stats.record_read(nbytes, seeks, seconds)
        self._clock += seconds
        return seconds

    def write(
        self,
        extent: Extent,
        nbytes: int | None = None,
        *,
        seeks: float = 1,
        offset: int = 0,
    ) -> float:
        """Charge a write of ``nbytes`` (default: the whole extent)."""
        extent.check_live()
        if nbytes is None:
            nbytes = extent.size
        self._check_range(extent, nbytes, offset, "write")
        if self.page_cache is not None:
            # Write-through: the transfer always reaches the device, but a
            # fully resident touch has its seek absorbed by the warm pool.
            seeks, nbytes = self.page_cache.write_charges(
                extent, nbytes, seeks, offset
            )
        seconds = self.params.io_time(nbytes, seeks=seeks)
        self.stats.record_write(nbytes, seeks, seconds)
        self._clock += seconds
        return seconds

    @staticmethod
    def _check_range(extent: Extent, nbytes: int, offset: int, kind: str) -> None:
        if offset < 0 or not 0 <= nbytes or offset + nbytes > extent.size:
            raise ValueError(
                f"{kind} of {nbytes} bytes at offset {offset} outside "
                f"extent of {extent.size} bytes"
            )

    def stream_read(self, nbytes: int, *, seeks: float = 1) -> float:
        """Charge a sequential read of ``nbytes`` without a specific extent.

        Used for scanning a day's source records during ``BuildIndex`` and
        for whole-index scans/copies, which the paper models as a single
        seek followed by one long transfer (Table 9).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        seconds = self.params.io_time(nbytes, seeks=seeks)
        self.stats.record_read(nbytes, seeks, seconds)
        self._clock += seconds
        return seconds

    def stream_write(self, nbytes: int, *, seeks: float = 1) -> float:
        """Charge a sequential write of ``nbytes`` without a specific extent.

        The space itself must already have been accounted via
        :meth:`allocate`; this only charges the transfer time.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        seconds = self.params.io_time(nbytes, seeks=seeks)
        self.stats.record_write(nbytes, seeks, seconds)
        self._clock += seconds
        return seconds

    def snapshot(self) -> IOSnapshot:
        """Return a snapshot of the I/O counters."""
        return self.stats.snapshot()
