"""Deterministic fault injection for the simulated disk.

The paper's availability argument (WATA*/RATA* keep the window queryable
while maintenance runs) only matters if maintenance can *fail* — a real
deployment sees transient I/O errors, dying devices, space pressure, and
process crashes mid-transition.  This module adds all four to the substrate
without touching the cost model:

* :class:`FaultInjector` — a seed-driven policy consulted before every I/O
  (and, via the journaled executor, at every op boundary).  Deterministic:
  the same seed and schedule produce the same fault sequence, which is what
  makes the crash-matrix harness (:mod:`repro.sim.crashmatrix`) reproducible.
* :class:`FaultyDisk` — a :class:`~repro.storage.disk.SimulatedDisk` that
  routes every read/write through its injector and retries transients under
  a :class:`RetryPolicy`, charging backoff delays to the simulated clock.
* :class:`CrashPoint` — "die after the Nth I/O" or "die after the Nth
  executed op", raised as :class:`~repro.errors.SimulatedCrash`.

Faults are exceptions from :mod:`repro.errors`: :class:`TransientIOError`
(retryable), :class:`DeviceFailure` (permanent — the query path treats the
affected constituents as offline), and :class:`SimulatedCrash` (process
death; disk state survives, memory does not).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import (
    DeviceFailure,
    OutOfSpaceError,
    SimulatedCrash,
    TransientIOError,
)
from .bufferpool import BufferPoolModel
from .cost import DiskParameters
from .disk import SimulatedDisk
from .extent import Extent
from .pagecache import PageCache


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient I/O errors.

    Args:
        max_attempts: Total tries per I/O (first attempt included).
        base_delay_s: Simulated seconds charged before the first retry.
        multiplier: Backoff growth factor per retry.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def delay_before_retry(self, retry_number: int) -> float:
        """Return the backoff before the ``retry_number``-th retry (1-based)."""
        if retry_number < 1:
            raise ValueError(f"retry_number must be >= 1, got {retry_number}")
        return self.base_delay_s * self.multiplier ** (retry_number - 1)


@dataclass(frozen=True)
class CrashPoint:
    """Where a simulated process crash fires.

    Exactly one of the fields is set:

    * ``after_ios``: the first ``after_ios`` I/Os since :meth:`FaultInjector.arm_crash`
      succeed; the next one raises :class:`SimulatedCrash` *before* any time
      or bytes are charged (it never happened).
    * ``after_ops``: the first ``after_ops`` executor ops complete; the crash
      fires at the following op boundary.  ``after_ops=0`` crashes before the
      plan's first op.
    """

    after_ios: int | None = None
    after_ops: int | None = None

    def __post_init__(self) -> None:
        if (self.after_ios is None) == (self.after_ops is None):
            raise ValueError("set exactly one of after_ios / after_ops")
        value = self.after_ios if self.after_ios is not None else self.after_ops
        if value < 0:
            raise ValueError(f"crash point must be >= 0, got {value}")


@dataclass
class FaultStats:
    """Counters of what the injector actually did."""

    ios: int = 0
    ops: int = 0
    transients_injected: int = 0
    crashes_fired: int = 0


class FaultInjector:
    """Seed-driven fault policy for a :class:`FaultyDisk`.

    Args:
        seed: Seeds the transient-fault stream; same seed, same faults.
        transient_read_rate: Probability a read attempt raises
            :class:`TransientIOError` (each retry redraws).
        transient_write_rate: Same, for writes.
        fail_device_after_ios: Permanent :class:`DeviceFailure` once this
            many I/Os have completed; ``None`` disables.
        space_limit_bytes: Simulated space pressure — allocations that would
            push ``live_bytes`` past this raise
            :class:`~repro.errors.OutOfSpaceError`; ``None`` disables.
        crash: Optional initial :class:`CrashPoint`; :meth:`arm_crash` can
            install one later (resetting the relevant counter).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        transient_read_rate: float = 0.0,
        transient_write_rate: float = 0.0,
        fail_device_after_ios: int | None = None,
        space_limit_bytes: int | None = None,
        crash: CrashPoint | None = None,
    ) -> None:
        for name, rate in (
            ("transient_read_rate", transient_read_rate),
            ("transient_write_rate", transient_write_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self._rng = random.Random(seed)
        self.transient_read_rate = transient_read_rate
        self.transient_write_rate = transient_write_rate
        self.fail_device_after_ios = fail_device_after_ios
        self.space_limit_bytes = space_limit_bytes
        self.stats = FaultStats()
        self._device_failed = False
        self._crash: CrashPoint | None = None
        self._crash_io_base = 0
        self._crash_op_base = 0
        if crash is not None:
            self.arm_crash(crash)

    # ------------------------------------------------------------------
    # Crash scheduling
    # ------------------------------------------------------------------

    def arm_crash(self, crash: CrashPoint) -> None:
        """Install ``crash``, counting I/Os and ops from this moment on."""
        self._crash = crash
        self._crash_io_base = self.stats.ios
        self._crash_op_base = self.stats.ops

    def disarm(self) -> None:
        """Remove any armed crash point (the process "survived")."""
        self._crash = None

    @property
    def device_failed(self) -> bool:
        """Return ``True`` once a permanent failure has fired."""
        return self._device_failed

    def fail_device(self) -> None:
        """Fail the device immediately (external cause, e.g. a test)."""
        self._device_failed = True

    # ------------------------------------------------------------------
    # Hooks (called by FaultyDisk and the journaled executor)
    # ------------------------------------------------------------------

    def before_io(self, kind: str, nbytes: int) -> None:
        """Gate one I/O attempt; raise a fault or admit it (counting it).

        Raise order mirrors severity: a dead device stays dead; a due crash
        fires before weaker faults; transients come last.
        """
        if self._device_failed:
            raise DeviceFailure("simulated device has failed permanently")
        crash = self._crash
        if (
            crash is not None
            and crash.after_ios is not None
            and self.stats.ios - self._crash_io_base >= crash.after_ios
        ):
            self.stats.crashes_fired += 1
            raise SimulatedCrash(
                f"crash point reached after {crash.after_ios} I/O(s)"
            )
        if (
            self.fail_device_after_ios is not None
            and self.stats.ios >= self.fail_device_after_ios
        ):
            self._device_failed = True
            raise DeviceFailure(
                f"simulated device failed after {self.stats.ios} I/O(s)"
            )
        rate = (
            self.transient_read_rate
            if kind == "read"
            else self.transient_write_rate
        )
        if rate > 0.0 and self._rng.random() < rate:
            self.stats.transients_injected += 1
            raise TransientIOError(
                f"injected transient {kind} error ({nbytes} bytes)"
            )
        self.stats.ios += 1

    def before_op(self) -> None:
        """Gate one executor op; fires op-count crash points."""
        crash = self._crash
        if (
            crash is not None
            and crash.after_ops is not None
            and self.stats.ops - self._crash_op_base >= crash.after_ops
        ):
            self.stats.crashes_fired += 1
            raise SimulatedCrash(
                f"crash point reached after {crash.after_ops} op(s)"
            )

    def note_op_completed(self) -> None:
        """Record one fully executed op."""
        self.stats.ops += 1

    def check_allocation(self, live_bytes: int, nbytes: int) -> None:
        """Apply space pressure to an allocation request."""
        limit = self.space_limit_bytes
        if limit is not None and live_bytes + nbytes > limit:
            raise OutOfSpaceError(
                f"space pressure: allocation of {nbytes} bytes would exceed "
                f"the injected limit of {limit} bytes ({live_bytes} live)"
            )


class FaultyDisk(SimulatedDisk):
    """A simulated disk whose I/Os can fail.

    Every read/write consults the injector first; transient errors are
    retried under ``retry_policy`` with backoff charged to the simulated
    clock (the paper's clock-accounting discipline extends to failure
    handling).  A retryable error that survives every attempt escalates to
    the caller as :class:`TransientIOError`; permanent faults and crashes
    propagate immediately.

    Args:
        params: Hardware cost parameters (as for :class:`SimulatedDisk`).
        buffer_pool: Optional buffer-pool model (as for :class:`SimulatedDisk`).
        page_cache: Optional trace-driven page cache (as for :class:`SimulatedDisk`).
        injector: Fault policy; defaults to a no-fault injector, making
            ``FaultyDisk()`` behave exactly like ``SimulatedDisk()``.
        retry_policy: Backoff schedule for transients.
    """

    def __init__(
        self,
        params: DiskParameters | None = None,
        buffer_pool: BufferPoolModel | None = None,
        page_cache: PageCache | None = None,
        *,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(params, buffer_pool, page_cache)
        self.injector = injector or FaultInjector()
        self.retry_policy = retry_policy or RetryPolicy()

    def _admit(self, kind: str, nbytes: int) -> None:
        """Run the injector gate, retrying transients with backoff."""
        retries = 0
        while True:
            try:
                self.injector.before_io(kind, nbytes)
                return
            except TransientIOError:
                retries += 1
                if retries >= self.retry_policy.max_attempts:
                    raise
                self.advance(self.retry_policy.delay_before_retry(retries))

    def allocate(self, nbytes: int) -> Extent:
        self.injector.check_allocation(self.live_bytes, nbytes)
        return super().allocate(nbytes)

    def read(
        self,
        extent: Extent,
        nbytes: int | None = None,
        *,
        seeks: float = 1,
        offset: int = 0,
    ) -> float:
        self._admit("read", nbytes if nbytes is not None else extent.size)
        return super().read(extent, nbytes, seeks=seeks, offset=offset)

    def write(
        self,
        extent: Extent,
        nbytes: int | None = None,
        *,
        seeks: float = 1,
        offset: int = 0,
    ) -> float:
        self._admit("write", nbytes if nbytes is not None else extent.size)
        return super().write(extent, nbytes, seeks=seeks, offset=offset)

    def stream_read(self, nbytes: int, *, seeks: float = 1) -> float:
        self._admit("read", nbytes)
        return super().stream_read(nbytes, seeks=seeks)

    def stream_write(self, nbytes: int, *, seeks: float = 1) -> float:
        self._admit("write", nbytes)
        return super().stream_write(nbytes, seeks=seeks)
