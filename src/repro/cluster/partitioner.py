"""Key-space partitioners for the sharded wave-index cluster.

A wave index keeps one sliding window fast by spreading maintenance over
``n`` constituents; the cluster layer applies the same trick across the
*key space*: each of ``k`` shards owns a slice of the search-field domain
and runs its own wave index over the full window.  The partitioner is the
contract between the two layers — a pure, stateless mapping from search
values to shard ids that both the store splitter (at build time) and the
coordinator (at query time) consult, so a probe for ``value`` always
lands on the shard holding ``value``'s postings.

Two implementations mirror the classic physical designs:

* :class:`HashPartitioner` — stable CRC32 of the value; balanced for any
  key distribution, but range queries fan out to every shard.
* :class:`RangePartitioner` — ordered split points; co-locates adjacent
  keys (and makes shard rebalancing a contiguous-range move) at the cost
  of balance depending on the chosen splits.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, Protocol, runtime_checkable
from zlib import crc32

from ..core.records import Record, RecordStore
from ..errors import ClusterError


@runtime_checkable
class Partitioner(Protocol):
    """Maps search values to shard ids ``0 .. n_shards - 1``.

    Implementations must be deterministic and stateless: the same value
    maps to the same shard on every call, in every process (bench
    artifacts are byte-compared across runs).
    """

    @property
    def n_shards(self) -> int:
        """Return the number of shards the key space is split into."""
        ...

    def shard_for(self, value: Any) -> int:
        """Return the shard id owning ``value``."""
        ...

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly description (for bench reports)."""
        ...


class HashPartitioner:
    """Shard by stable CRC32 of the value's string form.

    CRC32 rather than builtin ``hash()``: string hashing is salted per
    process (``PYTHONHASHSEED``), which would scatter the same store
    differently on every run and break artifact reproducibility.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ClusterError(f"need at least one shard, got {n_shards}")
        self._n_shards = n_shards

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_for(self, value: Any) -> int:
        return crc32(str(value).encode("utf-8")) % self._n_shards

    def describe(self) -> dict[str, Any]:
        return {"kind": "hash", "n_shards": self._n_shards}

    def __repr__(self) -> str:
        return f"HashPartitioner(n_shards={self._n_shards})"


class RangePartitioner:
    """Shard by ordered split points over a comparable key domain.

    ``split_points`` must be strictly increasing; values strictly less
    than ``split_points[0]`` go to shard 0, values in
    ``[split_points[i-1], split_points[i])`` to shard ``i``, and values
    ``>= split_points[-1]`` to the last shard — so ``len(split_points)+1``
    shards in total, and :meth:`shard_for` is monotone non-decreasing in
    the value (the property the hypothesis suite asserts).
    """

    def __init__(self, split_points: Iterable[Any]) -> None:
        splits = list(split_points)
        if not splits:
            raise ClusterError("range partitioning needs >= 1 split point")
        for left, right in zip(splits, splits[1:]):
            try:
                ordered = left < right
            except TypeError as exc:
                raise ClusterError(
                    f"split points {left!r} and {right!r} are not comparable"
                ) from exc
            if not ordered:
                raise ClusterError(
                    f"split points must be strictly increasing; "
                    f"{left!r} >= {right!r}"
                )
        self.split_points = tuple(splits)

    @property
    def n_shards(self) -> int:
        return len(self.split_points) + 1

    def shard_for(self, value: Any) -> int:
        try:
            return bisect_right(self.split_points, value)
        except TypeError as exc:
            raise ClusterError(
                f"value {value!r} is not comparable with the split points"
            ) from exc

    def describe(self) -> dict[str, Any]:
        return {
            "kind": "range",
            "n_shards": self.n_shards,
            "split_points": [str(p) for p in self.split_points],
        }

    def __repr__(self) -> str:
        return f"RangePartitioner(split_points={self.split_points!r})"


def make_partitioner(
    kind: str, n_shards: int, *, range_splits: Iterable[Any] = ()
) -> Partitioner:
    """Build the partitioner named by ``kind`` (``"hash"``/``"range"``).

    For ``"range"`` with no explicit splits, integer split points are
    synthesized from CRC32 order statistics — callers that care about the
    actual key distribution pass their own ``range_splits``.
    """
    if kind == "hash":
        return HashPartitioner(n_shards)
    if kind == "range":
        splits = list(range_splits)
        if splits:
            if len(splits) != n_shards - 1:
                raise ClusterError(
                    f"{n_shards} shards need {n_shards - 1} split points, "
                    f"got {len(splits)}"
                )
            return RangePartitioner(splits)
        if n_shards == 1:
            return HashPartitioner(1)  # one shard needs no splits
        raise ClusterError(
            "range partitioning needs explicit range_splits for k > 1"
        )
    raise ClusterError(f"unknown partitioner kind {kind!r}")


def partition_store(
    store: RecordStore, partitioner: Partitioner
) -> list[RecordStore]:
    """Split ``store`` into one :class:`RecordStore` per shard.

    Every shard receives a batch for *every* day of the source store
    (possibly empty) so schemes can rebuild any day range on any shard.
    A record with several search values is placed on every shard owning
    at least one of them, carrying only the owned value subset; its raw
    ``nbytes`` are split proportionally to the values kept, so the
    cluster-wide build cost stays comparable to the single-index build.

    With one shard the original store is returned as-is — the identity
    that makes the ``k=1`` cluster bit-identical to the single-index
    simulation.
    """
    if partitioner.n_shards == 1:
        return [store]
    shards = [RecordStore() for _ in range(partitioner.n_shards)]
    for day in store.days:
        per_shard: list[list[Record]] = [[] for _ in shards]
        for record in store.batch(day).records:
            owned: dict[int, list[Any]] = {}
            for value in record.values:
                owned.setdefault(partitioner.shard_for(value), []).append(value)
            for shard_id, values in owned.items():
                per_shard[shard_id].append(
                    Record(
                        record_id=record.record_id,
                        day=record.day,
                        values=tuple(values),
                        nbytes=record.nbytes * len(values) // len(record.values),
                        info=record.info,
                    )
                )
        for shard_store, records in zip(shards, per_shard):
            shard_store.add_records(day, records)
    return shards
