"""Key-space partitioners for the sharded wave-index cluster.

A wave index keeps one sliding window fast by spreading maintenance over
``n`` constituents; the cluster layer applies the same trick across the
*key space*: each of ``k`` shards owns a slice of the search-field domain
and runs its own wave index over the full window.  The partitioner is the
contract between the two layers — a pure, stateless mapping from search
values to shard ids that both the store splitter (at build time) and the
coordinator (at query time) consult, so a probe for ``value`` always
lands on the shard holding ``value``'s postings.

Three implementations mirror the classic physical designs:

* :class:`HashPartitioner` — stable CRC32 of the value; balanced for any
  key distribution, but range queries fan out to every shard.
* :class:`RangePartitioner` — ordered split points; co-locates adjacent
  keys (and makes shard rebalancing a contiguous-range move) at the cost
  of balance depending on the chosen splits.
* :class:`SlotHashPartitioner` — CRC32 into a fixed slot ring with an
  explicit slot-to-shard table; routing-compatible with elastic topology
  changes, because splitting a shard only reassigns *that shard's* slots.

For online resharding (:mod:`repro.cluster.elastic`) the range and
slot-hash partitioners support :meth:`split` / :meth:`merge_with_next`,
both returning a *new* partitioner that changes the routing of keys in
the affected shard(s) only — every other key keeps its shard, modulo the
uniform id renumbering described by :func:`reshard_id_mapping`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable
from zlib import crc32

from ..core.records import Record, RecordStore
from ..errors import ClusterError


@runtime_checkable
class Partitioner(Protocol):
    """Maps search values to shard ids ``0 .. n_shards - 1``.

    Implementations must be deterministic and stateless: the same value
    maps to the same shard on every call, in every process (bench
    artifacts are byte-compared across runs).
    """

    @property
    def n_shards(self) -> int:
        """Return the number of shards the key space is split into."""
        ...

    def shard_for(self, value: Any) -> int:
        """Return the shard id owning ``value``."""
        ...

    def shards_for_many(self, values: Sequence[Any]) -> list[int]:
        """Return the shard id per value, in input order.

        Semantically ``[self.shard_for(v) for v in values]``; batched so
        implementations can amortize per-value work (hashing, string
        conversion) across a whole scatter.
        """
        ...

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly description (for bench reports)."""
        ...


class HashPartitioner:
    """Shard by stable CRC32 of the value's string form.

    CRC32 rather than builtin ``hash()``: string hashing is salted per
    process (``PYTHONHASHSEED``), which would scatter the same store
    differently on every run and break artifact reproducibility.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ClusterError(f"need at least one shard, got {n_shards}")
        self._n_shards = n_shards
        #: Value -> shard memo.  The mapping is pure, so caching it is
        #: invisible; bounded by the number of distinct search values.
        self._memo: dict[Any, int] = {}

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_for(self, value: Any) -> int:
        return crc32(str(value).encode("utf-8")) % self._n_shards

    def shards_for_many(self, values: Sequence[Any]) -> list[int]:
        return _shards_for_many_memo(self, values, self._memo)

    def describe(self) -> dict[str, Any]:
        return {"kind": "hash", "n_shards": self._n_shards}

    def __repr__(self) -> str:
        return f"HashPartitioner(n_shards={self._n_shards})"


class RangePartitioner:
    """Shard by ordered split points over a comparable key domain.

    ``split_points`` must be strictly increasing; values strictly less
    than ``split_points[0]`` go to shard 0, values in
    ``[split_points[i-1], split_points[i])`` to shard ``i``, and values
    ``>= split_points[-1]`` to the last shard — so ``len(split_points)+1``
    shards in total, and :meth:`shard_for` is monotone non-decreasing in
    the value (the property the hypothesis suite asserts).
    """

    def __init__(self, split_points: Iterable[Any]) -> None:
        splits = list(split_points)
        if not splits:
            raise ClusterError("range partitioning needs >= 1 split point")
        for left, right in zip(splits, splits[1:]):
            try:
                ordered = left < right
            except TypeError as exc:
                raise ClusterError(
                    f"split points {left!r} and {right!r} are not comparable"
                ) from exc
            if not ordered:
                raise ClusterError(
                    f"split points must be strictly increasing; "
                    f"{left!r} >= {right!r}"
                )
        self.split_points = tuple(splits)

    @property
    def n_shards(self) -> int:
        return len(self.split_points) + 1

    def shard_for(self, value: Any) -> int:
        try:
            return bisect_right(self.split_points, value)
        except TypeError as exc:
            raise ClusterError(
                f"value {value!r} is not comparable with the split points"
            ) from exc

    def shards_for_many(self, values: Sequence[Any]) -> list[int]:
        return [self.shard_for(value) for value in values]

    def split(self, shard_id: int, *, key: Any = None) -> "RangePartitioner":
        """Return a new partitioner with shard ``shard_id`` split at ``key``.

        ``key`` becomes a new split point strictly inside the shard's
        range, producing children ``shard_id`` (``[lo, key)``) and
        ``shard_id + 1`` (``[key, hi)``); shards above shift up by one.
        The edge cases split/merge exposed are rejected explicitly:

        * ``key`` equal to the shard's *lower* boundary would leave the
          left child empty;
        * ``key`` equal to (or past) the shard's *upper* boundary would
          leave the right child empty — including the single-value range
          ``[b, b+1)`` over integers, which has no interior split point;
        * duplicate split points would break strict monotonicity.
        """
        if not 0 <= shard_id < self.n_shards:
            raise ClusterError(
                f"shard {shard_id} outside [0, {self.n_shards})"
            )
        if key is None:
            raise ClusterError("range split needs an explicit key")
        splits = self.split_points
        try:
            if shard_id > 0 and not splits[shard_id - 1] < key:
                raise ClusterError(
                    f"split key {key!r} is not above the shard's lower "
                    f"boundary {splits[shard_id - 1]!r} — the left child "
                    f"range would be empty"
                )
            if shard_id < len(splits) and not key < splits[shard_id]:
                raise ClusterError(
                    f"split key {key!r} is not below the shard's upper "
                    f"boundary {splits[shard_id]!r} — the right child "
                    f"range would be empty"
                )
        except TypeError as exc:
            raise ClusterError(
                f"split key {key!r} is not comparable with the split points"
            ) from exc
        return RangePartitioner(
            splits[:shard_id] + (key,) + splits[shard_id:]
        )

    def merge_with_next(self, shard_id: int) -> "RangePartitioner":
        """Return a new partitioner merging ``shard_id`` with ``shard_id+1``.

        The inverse of :meth:`split`: removing the boundary between the
        two shards re-fuses their ranges, and
        ``p.split(s, key=k).merge_with_next(s)`` routes every value
        exactly as ``p`` does (the hypothesis suite asserts the identity).
        A range partitioner always has >= 2 shards, so merging is only
        possible down to 2.
        """
        if not 0 <= shard_id < self.n_shards - 1:
            raise ClusterError(
                f"shard {shard_id} has no next neighbour to merge with "
                f"(n_shards={self.n_shards})"
            )
        if len(self.split_points) == 1:
            raise ClusterError(
                "cannot merge a 2-shard range partitioner down to one "
                "shard (a range partitioner needs >= 1 split point)"
            )
        splits = self.split_points
        return RangePartitioner(splits[:shard_id] + splits[shard_id + 1:])

    def describe(self) -> dict[str, Any]:
        return {
            "kind": "range",
            "n_shards": self.n_shards,
            "split_points": [str(p) for p in self.split_points],
        }

    def __repr__(self) -> str:
        return f"RangePartitioner(split_points={self.split_points!r})"


class SlotHashPartitioner:
    """Hash into a fixed slot ring with an explicit slot-to-shard table.

    Plain ``crc32 % k`` cannot split one shard without rerouting almost
    every key (changing ``k`` changes every residue).  The classic fix is
    a level of indirection: hash into ``n_slots`` fixed slots and keep a
    table mapping slots to shards.  Splitting a shard then moves half of
    *its own* slots to the new shard; every other key keeps its slot and
    its shard.  This is the elastic-capable hash partitioner the
    resharding engine uses (``kind="slot-hash"``).

    Args:
        slot_to_shard: Shard id per slot; shard ids must cover
            ``0 .. max`` contiguously (every shard owns >= 1 slot).
    """

    def __init__(self, slot_to_shard: Iterable[int]) -> None:
        table = tuple(slot_to_shard)
        if not table:
            raise ClusterError("slot-hash partitioning needs >= 1 slot")
        shards = set(table)
        n_shards = max(shards) + 1
        if shards != set(range(n_shards)):
            missing = sorted(set(range(n_shards)) - shards)
            raise ClusterError(
                f"slot table must cover shards 0..{n_shards - 1} "
                f"contiguously; missing {missing}"
            )
        self.slot_to_shard = table
        self._n_shards = n_shards
        self._memo: dict[Any, int] = {}

    @classmethod
    def balanced(cls, n_shards: int, n_slots: int = 64) -> "SlotHashPartitioner":
        """Build a table spreading ``n_slots`` round-robin over shards."""
        if n_shards < 1:
            raise ClusterError(f"need at least one shard, got {n_shards}")
        if n_slots < n_shards:
            raise ClusterError(
                f"need at least one slot per shard; "
                f"{n_slots} slots < {n_shards} shards"
            )
        return cls(tuple(slot % n_shards for slot in range(n_slots)))

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def n_slots(self) -> int:
        return len(self.slot_to_shard)

    def shard_for(self, value: Any) -> int:
        slot = crc32(str(value).encode("utf-8")) % len(self.slot_to_shard)
        return self.slot_to_shard[slot]

    def shards_for_many(self, values: Sequence[Any]) -> list[int]:
        return _shards_for_many_memo(self, values, self._memo)

    def owned_slots(self, shard_id: int) -> tuple[int, ...]:
        """Return the slots routed to ``shard_id``, in ring order."""
        return tuple(
            slot
            for slot, shard in enumerate(self.slot_to_shard)
            if shard == shard_id
        )

    def split(self, shard_id: int, *, key: Any = None) -> "SlotHashPartitioner":
        """Return a new partitioner splitting ``shard_id`` into two.

        The second half of the shard's slots (in ring order) moves to a
        new shard inserted at ``shard_id + 1``; shards above shift up by
        one.  ``key`` is accepted for API symmetry with
        :meth:`RangePartitioner.split` and ignored — slot moves are
        deterministic.  A shard that owns a single slot cannot be split.
        """
        if not 0 <= shard_id < self._n_shards:
            raise ClusterError(
                f"shard {shard_id} outside [0, {self._n_shards})"
            )
        owned = self.owned_slots(shard_id)
        if len(owned) < 2:
            raise ClusterError(
                f"shard {shard_id} owns a single slot and cannot be "
                f"split further (add slots or merge first)"
            )
        moved = set(owned[len(owned) // 2:])
        table = []
        for slot, shard in enumerate(self.slot_to_shard):
            if shard > shard_id:
                table.append(shard + 1)
            elif shard == shard_id and slot in moved:
                table.append(shard_id + 1)
            else:
                table.append(shard)
        return SlotHashPartitioner(table)

    def merge_with_next(self, shard_id: int) -> "SlotHashPartitioner":
        """Return a new partitioner folding ``shard_id + 1`` into ``shard_id``.

        The next shard's slots join ``shard_id``; shards above shift down
        by one.  Inverse of :meth:`split` when applied to the same shard.
        """
        if not 0 <= shard_id < self._n_shards - 1:
            raise ClusterError(
                f"shard {shard_id} has no next neighbour to merge with "
                f"(n_shards={self._n_shards})"
            )
        table = []
        for shard in self.slot_to_shard:
            if shard == shard_id + 1:
                table.append(shard_id)
            elif shard > shard_id + 1:
                table.append(shard - 1)
            else:
                table.append(shard)
        return SlotHashPartitioner(table)

    def describe(self) -> dict[str, Any]:
        return {
            "kind": "slot-hash",
            "n_shards": self._n_shards,
            "n_slots": len(self.slot_to_shard),
            "slot_to_shard": list(self.slot_to_shard),
        }

    def __repr__(self) -> str:
        return (
            f"SlotHashPartitioner(n_shards={self._n_shards}, "
            f"n_slots={len(self.slot_to_shard)})"
        )


def _shards_for_many_memo(
    partitioner: Partitioner, values: Sequence[Any], memo: dict[Any, int]
) -> list[int]:
    """Batched routing through a per-partitioner value-to-shard memo.

    CRC32 routing re-hashes ``str(value)`` on every call; a scatter of a
    few thousand probes touches the same hot values over and over, so
    memoizing the (pure) mapping removes the hash from the hot path.
    Unhashable values fall back to the direct computation.
    """
    shard_for = partitioner.shard_for
    out = []
    for value in values:
        try:
            shard = memo.get(value)
        except TypeError:
            out.append(shard_for(value))
            continue
        if shard is None:
            shard = shard_for(value)
            memo[value] = shard
        out.append(shard)
    return out


def reshard_id_mapping(
    kind: str, shard_id: int, old_n_shards: int
) -> dict[int, int]:
    """Return the old-to-new shard-id mapping a split/merge implies.

    Covers the shards that *survive* the change: a split of ``shard_id``
    shifts every shard above it up by one (the split shard itself is
    replaced by two children and is absent); a merge of ``shard_id`` with
    ``shard_id + 1`` shifts every shard above the pair down by one (the
    merged pair is replaced by one child and both parents are absent).
    The elastic engine uses this to renumber surviving shards and the
    health monitor uses it to carry breaker state across the swap.
    """
    if kind == "split":
        return {
            old: old if old < shard_id else old + 1
            for old in range(old_n_shards)
            if old != shard_id
        }
    if kind == "merge":
        return {
            old: old if old < shard_id else old - 1
            for old in range(old_n_shards)
            if old not in (shard_id, shard_id + 1)
        }
    raise ClusterError(f"unknown reshard kind {kind!r}")


def make_partitioner(
    kind: str, n_shards: int, *, range_splits: Iterable[Any] = ()
) -> Partitioner:
    """Build the partitioner named by ``kind``.

    Kinds: ``"hash"`` (static CRC32), ``"slot-hash"`` (elastic-capable
    CRC32 through a slot ring), ``"range"`` (explicit split points).
    For ``"range"`` with no explicit splits, integer split points are
    synthesized from CRC32 order statistics — callers that care about the
    actual key distribution pass their own ``range_splits``.
    """
    if kind == "hash":
        return HashPartitioner(n_shards)
    if kind == "slot-hash":
        return SlotHashPartitioner.balanced(n_shards)
    if kind == "range":
        splits = list(range_splits)
        if splits:
            if len(splits) != n_shards - 1:
                raise ClusterError(
                    f"{n_shards} shards need {n_shards - 1} split points, "
                    f"got {len(splits)}"
                )
            return RangePartitioner(splits)
        if n_shards == 1:
            return HashPartitioner(1)  # one shard needs no splits
        raise ClusterError(
            "range partitioning needs explicit range_splits for k > 1"
        )
    raise ClusterError(f"unknown partitioner kind {kind!r}")


def partition_store(
    store: RecordStore, partitioner: Partitioner
) -> list[RecordStore]:
    """Split ``store`` into one :class:`RecordStore` per shard.

    Every shard receives a batch for *every* day of the source store
    (possibly empty) so schemes can rebuild any day range on any shard.
    A record with several search values is placed on every shard owning
    at least one of them, carrying only the owned value subset; its raw
    ``nbytes`` are split proportionally to the values kept, so the
    cluster-wide build cost stays comparable to the single-index build.

    With one shard the original store is returned as-is — the identity
    that makes the ``k=1`` cluster bit-identical to the single-index
    simulation.
    """
    if partitioner.n_shards == 1:
        return [store]
    shards = [RecordStore() for _ in range(partitioner.n_shards)]
    for day in store.days:
        per_shard: list[list[Record]] = [[] for _ in shards]
        for record in store.batch(day).records:
            owned: dict[int, list[Any]] = {}
            shard_ids = partitioner.shards_for_many(record.values)
            for value, shard_id in zip(record.values, shard_ids):
                owned.setdefault(shard_id, []).append(value)
            for shard_id, values in owned.items():
                per_shard[shard_id].append(
                    Record(
                        record_id=record.record_id,
                        day=record.day,
                        values=tuple(values),
                        nbytes=record.nbytes * len(values) // len(record.values),
                        info=record.info,
                    )
                )
        for shard_store, records in zip(shards, per_shard):
            shard_store.add_records(day, records)
    return shards
