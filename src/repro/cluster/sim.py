"""Day-by-day cluster simulation: staggered maintenance, shared serving.

Runs one maintenance scheme per shard over a partitioned record store,
each shard on its own device(s) of a :class:`~repro.storage.array.DiskArray`,
and serves the day's query stream against the whole cluster on a shared
timeline — the cluster-level analogue of
:class:`~repro.sim.scheduler.OverlappedSimulation`.

Model
-----

**Maintenance.**  Each day, every shard's scheme emits its plan and every
alive replica executes it on its own device.  The *staggered* policy
(Kimura et al.'s deploy-order concern applied to shard transitions) runs
shards in batches of at most ``ceil(k * max_concurrent_frac)``: batch
``j+1`` starts when batch ``j``'s slowest shard finishes, so the cluster
never has more than a bounded fraction of its serving capacity in
transition.  ``lockstep`` starts every shard at once (the naive policy
the benchmark compares against).

**Serving.**  The day's query units arrive evenly over
``arrival_stretch x`` the cluster maintenance makespan.  A probe routes
to the shard owning its value; a scan fans out to every shard.  Queries
that arrive *before* a shard's maintenance window opens are served
immediately from that shard's pre-transition index (the cost and
coverage are measured against the post-transition substrate, one day's
transition apart — a close proxy that keeps the single timeline
tractable); queries arriving after the window opens queue behind it,
exactly as in the single-index scheduler.  That asymmetry is the whole
point of staggering: a shard whose transition has not started yet keeps
answering at steady-state latency.

**Faults.**  A device failure mid-maintenance or mid-query marks the
replica failed; serving fails over to the next replica.  When every
replica of a shard is dead, its answers degrade to correct partial
results — empty, with the shard's window days enumerated as missing —
never a wrong answer.

With ``k=1, r=1`` and lockstep maintenance the whole machinery
degenerates to the serialized driver: one store (the partition is the
identity), one device, maintenance from time zero, every query served
post-maintenance in order.  ``tests/cluster/test_cluster_equivalence.py``
asserts bit-identical per-day costs and query results for all seven
schemes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.executor import ExecutionReport, PlanExecutor
from ..core.ops import Op
from ..core.records import RecordStore
from ..core.schemes.base import WaveScheme
from ..core.wave import WaveIndex
from ..errors import (
    ClusterError,
    DegradedWindowError,
    FaultError,
    TransientIOError,
)
from ..index.config import IndexConfig
from ..index.updates import UpdateTechnique
from ..obs import Histogram, MetricsRegistry
from ..sim.metrics import DayMetrics, SimulationResult
from ..sim.querygen import ProbeUnit, QueryUnit, QueryWorkload, ScanUnit, UnitOutcome
from ..sim.scheduler import OpInterval, OverlapPolicy
from ..storage.array import DiskArray
from ..storage.cost import DiskParameters
from ..storage.disk import SimulatedDisk
from ..storage.pagecache import PageCache
from ..advisor import (
    AdvisorConfig,
    AdvisorEngine,
    CostModelPlanner,
    Design,
    DesignRouter,
    RetuneAborted,
    RetuneDecision,
    RetuneReport,
    WorkloadObserver,
    calibrate_parameters,
)
from ..advisor.observer import VALUE_TRACK_LIMIT
from .coordinator import ClusterCoordinator
from .elastic import (
    Autoscaler,
    AutoscalerDecision,
    ElasticConfig,
    ReshardAborted,
    ReshardReport,
    ScaleAction,
    TopologyChangeEngine,
)
from .partitioner import SlotHashPartitioner, make_partitioner, partition_store
from .rebalance import RebalanceReport, move_replica
from .selfheal import (
    RebuildAborted,
    RebuildReport,
    ReplicaHealthMonitor,
    SelfHealConfig,
    rebuild_replica,
)
from .shard import Shard, ShardReplica

#: Maintenance scheduling policies accepted by :attr:`ClusterConfig.maintenance`.
MAINTENANCE_POLICIES = ("staggered", "lockstep")


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the sharded cluster.

    Args:
        n_shards: Number of key-space shards ``k``.
        replication: Replicas per shard ``r`` (1 = no redundancy).
        partitioner: ``"hash"`` or ``"range"``.
        range_splits: Split points for the range partitioner
            (``k - 1`` values, strictly increasing).
        maintenance: ``"staggered"`` or ``"lockstep"`` day-boundary
            scheduling (see module docstring).
        max_concurrent_frac: Staggering bound — at most
            ``ceil(k * max_concurrent_frac)`` shards in transition at
            once.  Ignored under lockstep.
        policy: Wait-or-degrade behaviour for constituents blocked by
            in-place maintenance (same semantics as the single-index
            scheduler).
        arrival_stretch: Queries arrive evenly over
            ``arrival_stretch x`` the cluster maintenance makespan.
        page_cache_bytes: Optional per-device LRU page-cache capacity.
        page_size: Page size for the per-device caches.
        selfheal: Optional self-healing configuration (retry/backoff,
            per-replica circuit breakers, automatic re-replication — see
            :mod:`repro.cluster.selfheal`).  ``None`` (the default)
            keeps the PR 4 behaviour: failed replicas stay failed.
        elastic: Optional elastic-resharding configuration (online shard
            split/merge plus the per-day autoscaler — see
            :mod:`repro.cluster.elastic`).  ``None`` (the default) keeps
            the topology frozen; with it set and ``partitioner="hash"``,
            the plain hash partitioner is silently upgraded to the
            slot-based one so splits are even possible.
        advisor: Optional online-tuning configuration (workload
            observation, cost-model re-planning, journaled per-replica
            retunes, divergent designs — see :mod:`repro.advisor`).
            ``None`` (the default) keeps every design frozen and the
            run bit-identical to an advisor-less build.
    """

    n_shards: int = 2
    replication: int = 1
    partitioner: str = "hash"
    range_splits: tuple[Any, ...] = ()
    maintenance: str = "staggered"
    max_concurrent_frac: float = 0.5
    policy: OverlapPolicy = OverlapPolicy.WAIT
    arrival_stretch: float = 2.0
    page_cache_bytes: int | None = None
    page_size: int | None = None
    selfheal: SelfHealConfig | None = None
    elastic: ElasticConfig | None = None
    advisor: "AdvisorConfig | None" = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ClusterError(f"need at least one shard, got {self.n_shards}")
        if self.replication < 1:
            raise ClusterError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.maintenance not in MAINTENANCE_POLICIES:
            raise ClusterError(
                f"unknown maintenance policy {self.maintenance!r}; "
                f"known: {', '.join(MAINTENANCE_POLICIES)}"
            )
        if not 0.0 < self.max_concurrent_frac <= 1.0:
            raise ClusterError(
                f"max_concurrent_frac must be in (0, 1], "
                f"got {self.max_concurrent_frac}"
            )
        if self.arrival_stretch < 1.0:
            raise ClusterError(
                f"arrival_stretch must be >= 1.0, got {self.arrival_stretch}"
            )
        if self.page_cache_bytes is not None and self.page_cache_bytes < 1:
            raise ClusterError(
                f"page_cache_bytes must be >= 1, got {self.page_cache_bytes}"
            )
        if (
            self.advisor is not None
            and self.advisor.divergent
            and self.replication < 2
        ):
            raise ClusterError(
                "divergent per-replica designs need replication >= 2, "
                f"got {self.replication}"
            )

    @property
    def max_concurrent_shards(self) -> int:
        """Return how many shards may transition simultaneously."""
        if self.maintenance == "lockstep":
            return self.n_shards
        return max(1, math.ceil(self.n_shards * self.max_concurrent_frac))

    @property
    def n_devices(self) -> int:
        """Return the array size: one device per shard replica."""
        return self.n_shards * self.replication


@dataclass(frozen=True)
class ClusterDayStats:
    """Timeline outcome of one cluster day."""

    day: int
    maintenance_makespan_seconds: float
    makespan_seconds: float
    shard_windows: tuple[tuple[float, float], ...]
    queries: int = 0
    queries_waited: int = 0
    queries_degraded: int = 0
    failovers: int = 0
    shards_unavailable: tuple[int, ...] = ()
    missing_days: frozenset[int] = frozenset()
    latency_during_transition: dict[str, float] | None = None
    latency_steady_state: dict[str, float] | None = None
    #: Self-healing activity (all zero when self-healing is disabled).
    rebuilds: int = 0
    rebuilds_failed: int = 0
    rebuild_seconds: float = 0.0
    rebuild_spans: tuple[float, ...] = ()
    retries: int = 0
    breaker_opens: int = 0
    #: Elastic resharding activity (all zero/None when elasticity is off).
    reshards: int = 0
    reshards_aborted: int = 0
    reshard_deferred: str | None = None
    reshard_kinds: tuple[str, ...] = ()
    reshard_seconds: float = 0.0
    topology_version: int = 0
    n_shards: int = 0
    autoscaler: dict[str, Any] | None = None
    #: Online-tuning activity (all zero/None when the advisor is off).
    retunes: int = 0
    retunes_aborted: int = 0
    retune_seconds: float = 0.0
    #: Per-replica design labels after this day's retunes, keyed
    #: ``"s{shard}/r{replica}"`` — only replicas with a divergent design.
    designs: dict[str, str] | None = None
    #: Per-shard serving busy time; ``max()`` of it is the serving
    #: bottleneck the elastic bench measures throughput against.
    query_seconds: tuple[float, ...] = ()


@dataclass
class ClusterResult:
    """Accumulated metrics over a whole cluster run."""

    window: int
    n_indexes: int
    scheme_name: str
    technique: str
    n_shards: int
    replication: int
    maintenance: str
    partitioner: dict[str, Any]
    shard_results: list[SimulationResult]
    days: list[ClusterDayStats] = field(default_factory=list)
    latency_during: dict[str, float] | None = None
    latency_steady: dict[str, float] | None = None
    #: Per-shard series of shards retired by a topology change (their
    #: history stops on the day the split/merge replaced them).
    retired_shard_results: list[SimulationResult] = field(
        default_factory=list
    )

    def total_requests(self) -> int:
        """Return query requests served over the run."""
        return sum(d.queries for d in self.days)

    def total_makespan_seconds(self) -> float:
        """Return the summed per-day cluster timeline lengths."""
        return sum(d.makespan_seconds for d in self.days)

    def queries_per_second(self) -> float:
        """Return run throughput: requests over cluster makespan."""
        makespan = self.total_makespan_seconds()
        if makespan <= 0.0:
            return 0.0
        return self.total_requests() / makespan

    def total_failovers(self) -> int:
        """Return replica failovers over the run."""
        return sum(d.failovers for d in self.days)

    def total_queries_degraded(self) -> int:
        """Return queries answered partially (missing days reported)."""
        return sum(d.queries_degraded for d in self.days)

    def all_missing_days(self) -> frozenset[int]:
        """Return every day any answer lost to faults or degradation."""
        missing: set[int] = set()
        for d in self.days:
            missing |= d.missing_days
        return frozenset(missing)

    def total_rebuilds(self) -> int:
        """Return completed replica rebuilds over the run."""
        return sum(d.rebuilds for d in self.days)

    def total_rebuilds_failed(self) -> int:
        """Return aborted rebuild attempts over the run."""
        return sum(d.rebuilds_failed for d in self.days)

    def max_rebuild_seconds(self) -> float:
        """Return the longest single replica rebuild (copy + catch-up)
        span — the recovery-makespan headline the chaos soak gates on.
        A per-day *sum* would scale with how many kills happen to land
        on the same day, which is schedule noise, not recovery speed."""
        return max(
            (span for d in self.days for span in d.rebuild_spans),
            default=0.0,
        )

    def total_reshards(self) -> int:
        """Return completed topology changes (splits + merges)."""
        return sum(d.reshards for d in self.days)

    def total_reshards_aborted(self) -> int:
        """Return aborted topology-change attempts over the run."""
        return sum(d.reshards_aborted for d in self.days)

    def final_n_shards(self) -> int:
        """Return the shard count at the end of the run."""
        if self.days:
            return self.days[-1].n_shards or self.n_shards
        return self.n_shards


def _blocked_until(
    needed: set[str], arrival: float, blocking: list[OpInterval]
) -> tuple[set[str], float]:
    """Fixed-point release time over blocking intervals (scheduler rule)."""
    release = arrival
    blocked: set[str] = set()
    changed = True
    while changed:
        changed = False
        for interval in blocking:
            if interval.target not in needed:
                continue
            if interval.start <= release < interval.end:
                blocked.add(interval.target)
                release = interval.end
                changed = True
    return blocked, release


class SparePool:
    """Per-day budgeted provisioning of spare devices.

    Replica rebuilds (:meth:`ClusterSimulation._run_healing`) and the
    elastic engine draw spares from one pool, so a
    ``spare_budget_per_day`` makes their competition explicit and
    deterministic: the engine runs at the start of the day but *defers*
    whenever a shard is under-replicated, so on a contended day the
    rebuild takes the spare and the topology change retries the next
    day.  ``acquire`` is all-or-nothing — a split needing ``2r`` devices
    either gets them all or leaves the budget untouched.

    With no budget (the default) acquisition always succeeds and the
    pool is a pass-through over the simulation's spare factory,
    preserving its behaviour (and spare ordinals) exactly.
    """

    def __init__(
        self,
        make: Callable[[], SimulatedDisk],
        *,
        budget_per_day: int | None = None,
    ) -> None:
        self._make = make
        self.budget_per_day = budget_per_day
        self._used_today = 0
        self.denied = 0

    def new_day(self) -> None:
        """Reset the day's budget."""
        self._used_today = 0

    def acquire(self, n: int = 1) -> list[SimulatedDisk] | None:
        """Provision ``n`` fresh devices, or ``None`` if over budget."""
        if n < 1:
            raise ClusterError(f"must acquire >= 1 spare, got {n}")
        if (
            self.budget_per_day is not None
            and self._used_today + n > self.budget_per_day
        ):
            self.denied += 1
            return None
        self._used_today += n
        return [self._make() for _ in range(n)]


class ClusterSimulation:
    """Day-by-day run of one scheme per shard over a partitioned store.

    Public surface mirrors :class:`~repro.sim.driver.Simulation`:
    ``run_start()`` / ``run_transition(day)`` / ``run(last_day)`` /
    ``result``.  Additionally exposes :attr:`coordinator` for direct
    scatter-gather queries against the cluster's current state and
    :meth:`rebalance_shard` for moving a shard between devices.
    """

    def __init__(
        self,
        scheme_factory: Callable[[], WaveScheme],
        store: RecordStore,
        *,
        technique: UpdateTechnique = UpdateTechnique.SIMPLE_SHADOW,
        index_config: IndexConfig | None = None,
        disk_params: DiskParameters | None = None,
        queries: QueryWorkload | None = None,
        cluster: ClusterConfig | None = None,
        device_factory: Callable[[int], SimulatedDisk] | None = None,
    ) -> None:
        self.config = cluster or ClusterConfig()
        cfg = self.config
        if cfg.elastic is not None and cfg.partitioner == "hash":
            # A plain modulo-hash table cannot split one shard without
            # re-routing every key; the slot table can.
            self.partitioner: Any = SlotHashPartitioner.balanced(
                cfg.n_shards
            )
        else:
            self.partitioner = make_partitioner(
                cfg.partitioner, cfg.n_shards, range_splits=cfg.range_splits
            )
        shard_stores = partition_store(store, self.partitioner)
        self.store = store
        self.queries = queries
        self.technique = technique
        self.obs = MetricsRegistry()
        self._disk_params = disk_params
        self._device_factory = device_factory
        self._monitor: ReplicaHealthMonitor | None = (
            ReplicaHealthMonitor(cfg.selfheal, self.obs)
            if cfg.selfheal is not None
            else None
        )
        self._clock_base = 0.0
        self._spares_created = 0
        self.spares = SparePool(
            self._make_spare,
            budget_per_day=(
                cfg.elastic.spare_budget_per_day
                if cfg.elastic is not None
                else None
            ),
        )
        self.elastic: TopologyChangeEngine | None = (
            TopologyChangeEngine(self) if cfg.elastic is not None else None
        )
        self._autoscaler: Autoscaler | None = (
            Autoscaler(cfg.elastic)
            if cfg.elastic is not None and cfg.elastic.autoscale
            else None
        )
        self._pending_action: ScaleAction | None = None
        self._last_action_day: int | None = None
        #: Day plans pre-applied by the elastic engine's catch-up, keyed
        #: by ``id(scheme)`` — popped (instead of re-planning) when the
        #: day loop reaches that shard.
        self._preplanned: dict[int, list[Op]] = {}
        #: Optional hook called after maintenance/healing and before the
        #: day's serving pass — the chaos harness's injection point for
        #: mid-serve faults.  Signature: ``hook(sim, day)``.
        self.on_serving_start: Callable[["ClusterSimulation", int], None] | None = None
        self.array = DiskArray.create(
            cfg.n_devices,
            params=disk_params,
            page_cache_bytes=cfg.page_cache_bytes,
            page_size=cfg.page_size,
            device_factory=device_factory,
        )
        index_config = index_config or IndexConfig()
        self.shards: list[Shard] = []
        for shard_id in range(cfg.n_shards):
            scheme = scheme_factory()
            replicas = []
            for replica_id in range(cfg.replication):
                device_index = replica_id * cfg.n_shards + shard_id
                device = self.array.devices[device_index]
                wave = WaveIndex(device, index_config, scheme.n_indexes)
                executor = PlanExecutor(
                    wave, shard_stores[shard_id], technique
                )
                replicas.append(
                    ShardReplica(
                        shard_id=shard_id,
                        replica_id=replica_id,
                        device_index=device_index,
                        device=device,
                        wave=wave,
                        executor=executor,
                    )
                )
            self.shards.append(
                Shard(shard_id, scheme, shard_stores[shard_id], replicas)
            )
        self.scheme = self.shards[0].scheme
        #: Online-tuning machinery (all ``None`` when the advisor is off,
        #: keeping every hot path on its legacy branch).
        self.advisor: AdvisorEngine | None = None
        self._observer: WorkloadObserver | None = None
        self._planner: CostModelPlanner | None = None
        self.router: DesignRouter | None = None
        self._retune_queue: list[RetuneDecision] = []
        self._value_tracks: dict[int, set[Any]] = {}
        if cfg.advisor is not None:
            params = calibrate_parameters(
                store, index_config, window=self.scheme.window
            )
            self._planner = CostModelPlanner(params, cfg.advisor)
            self._observer = WorkloadObserver(
                self.obs, cfg.advisor.observe_days
            )
            self.advisor = AdvisorEngine(self)
            if cfg.advisor.divergent:
                self.router = DesignRouter()
        self.coordinator = ClusterCoordinator(
            self.shards,
            self.partitioner,
            self.obs,
            monitor=self._monitor,
            router=self.router,
        )
        self.latency_during: Histogram = self.obs.histogram(
            "cluster.latency.during_transition"
        )
        self.latency_steady: Histogram = self.obs.histogram(
            "cluster.latency.steady_state"
        )
        self.result = ClusterResult(
            window=self.scheme.window,
            n_indexes=self.scheme.n_indexes,
            scheme_name=self.scheme.name,
            technique=technique.value,
            n_shards=cfg.n_shards,
            replication=cfg.replication,
            maintenance=cfg.maintenance,
            partitioner=self.partitioner.describe(),
            shard_results=[
                SimulationResult(
                    window=self.scheme.window,
                    n_indexes=self.scheme.n_indexes,
                    scheme_name=self.scheme.name,
                    technique=technique.value,
                )
                for _ in range(cfg.n_shards)
            ],
        )
        self._started = False
        self._day_failovers = 0

    # ------------------------------------------------------------------
    # Public day loop (mirrors the serialized driver)
    # ------------------------------------------------------------------

    @property
    def window(self) -> int:
        """Return the schemes' window ``W``."""
        return self.scheme.window

    def run_start(self) -> ClusterDayStats:
        """Execute every shard's initial build (day ``W``)."""
        if self._started:
            raise ClusterError("cluster simulation already started")
        self._started = True
        return self._run_day(self.window, lambda scheme: scheme.start_ops())

    def run_transition(self, day: int) -> ClusterDayStats:
        """Execute one daily transition on every shard."""
        if not self._started:
            raise ClusterError("call run_start() first")
        return self._run_day(day, lambda scheme: scheme.transition_ops(day))

    def run(self, last_day: int) -> ClusterResult:
        """Run start plus transitions through ``last_day``."""
        self.run_start()
        for day in range(self.window + 1, last_day + 1):
            self.run_transition(day)
        self.result.latency_during = (
            self.latency_during.summary() if self.latency_during.count else None
        )
        self.result.latency_steady = (
            self.latency_steady.summary() if self.latency_steady.count else None
        )
        return self.result

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def rebalance_shard(
        self, shard_id: int, to_device: int, *, replica_id: int = 0
    ) -> RebalanceReport:
        """Move one replica of ``shard_id`` onto array device ``to_device``.

        The move is a packed-shadow-style copy charged to both devices'
        cost clocks (see :mod:`repro.cluster.rebalance`); freed source
        extents invalidate any cached pages.
        """
        if not 0 <= shard_id < len(self.shards):
            raise ClusterError(f"no shard {shard_id}")
        if not 0 <= to_device < len(self.array):
            raise ClusterError(
                f"device {to_device} outside [0, {len(self.array)})"
            )
        shard = self.shards[shard_id]
        if not 0 <= replica_id < len(shard.replicas):
            raise ClusterError(f"shard {shard_id} has no replica {replica_id}")
        replica = shard.replicas[replica_id]
        if self.array.devices[to_device] is replica.device:
            raise ClusterError(
                f"{replica.name} already lives on device {to_device}"
            )
        report = move_replica(
            replica, self.array.devices[to_device], to_device
        )
        self.obs.counter("cluster.rebalances").inc()
        self.obs.counter("cluster.rebalance_bytes").inc(report.bytes_moved)
        return report

    # ------------------------------------------------------------------
    # Elastic resharding
    # ------------------------------------------------------------------

    def request_split(
        self,
        shard_id: int,
        *,
        split_key: Any = None,
        reason: str = "manual",
    ) -> ScaleAction:
        """Queue a split of ``shard_id`` for the next transition day.

        With ``split_key=None`` the engine picks the median owned key
        (range partitioner) or halves the slot set (slot-hash).  At most
        one topology change is in flight at a time; a new request
        replaces any queued one.
        """
        if self.elastic is None:
            raise ClusterError(
                "elastic resharding is not enabled "
                "(set ClusterConfig.elastic)"
            )
        action = ScaleAction(
            kind="split", shard_id=shard_id, split_key=split_key,
            reason=reason,
        )
        self._pending_action = action
        return action

    def request_merge(
        self, shard_id: int, *, reason: str = "manual"
    ) -> ScaleAction:
        """Queue a merge of ``shard_id`` with its next neighbour."""
        if self.elastic is None:
            raise ClusterError(
                "elastic resharding is not enabled "
                "(set ClusterConfig.elastic)"
            )
        action = ScaleAction(kind="merge", shard_id=shard_id, reason=reason)
        self._pending_action = action
        return action

    @property
    def pending_action(self) -> ScaleAction | None:
        """Return the queued topology change, if any."""
        return self._pending_action

    def _under_replicated(self) -> bool:
        """Return whether any healable shard is below target replication."""
        selfheal = self.config.selfheal
        if self._monitor is None or selfheal is None or not selfheal.rebuild:
            return False
        target = selfheal.target_replication or self.config.replication
        return any(
            shard.primary is not None
            and len(shard.alive_replicas()) < target
            for shard in self.shards
        )

    def _run_elastic(
        self, day: int
    ) -> tuple[list[ReshardReport], int, str | None]:
        """Execute the queued topology change, if it may run today.

        Runs *before* the day's plans are drawn, so a committed change
        hands the day loop an already-caught-up topology.  An
        under-replicated shard defers the change (healing outranks
        rebalancing — the deterministic spare-contention rule); an abort
        keeps the action queued for a retry tomorrow.
        """
        reports: list[ReshardReport] = []
        aborted = 0
        deferred: str | None = None
        if (
            self.elastic is None
            or self._pending_action is None
            or day <= self.window
        ):
            return reports, aborted, deferred
        if self._under_replicated():
            self.obs.counter("cluster.elastic.deferred").inc()
            return reports, aborted, "under-replicated"
        action = self._pending_action
        try:
            report = self.elastic.execute(action, day=day)
        except ReshardAborted as exc:
            return reports, 1, exc.reason
        self._pending_action = None
        self._last_action_day = day
        reports.append(report)
        return reports, aborted, deferred

    # ------------------------------------------------------------------
    # Online tuning advisor
    # ------------------------------------------------------------------

    def _observe_unit(self, shard_id: int, unit: QueryUnit) -> None:
        """Publish one served (sub)unit to the ``advisor.*`` counters."""
        prefix = f"advisor.shard{shard_id}."
        self.obs.counter(prefix + "requests").inc(unit.requests)
        if isinstance(unit, ScanUnit):
            self.obs.counter(prefix + "scans").inc(unit.requests)
            if unit.t1 == unit.t2:
                self.obs.counter(prefix + "scans_newest").inc(unit.requests)
            return
        self.obs.counter(prefix + "probes").inc(len(unit.values))
        tracked = self._value_tracks.setdefault(shard_id, set())
        for value in unit.values:
            if value in tracked or len(tracked) < VALUE_TRACK_LIMIT:
                tracked.add(value)
                self.obs.counter(f"{prefix}value.{value}").inc()
            else:
                self.obs.counter(prefix + "value.~other").inc()

    def _replica_design(
        self, shard: Shard, replica: ShardReplica
    ) -> Design:
        """Return the design a replica currently runs."""
        scheme = replica.scheme or shard.scheme
        return Design(
            scheme.name, scheme.n_indexes, replica.executor.technique.value
        )

    def _plan_retunes(self, day: int) -> None:
        """Queue accepted design switches at the day boundary."""
        planner = self._planner
        observer = self._observer
        assert planner is not None and observer is not None
        queued = {
            (d.shard_id, d.replica_id) for d in self._retune_queue
        }
        for shard in self.shards:
            obs = observer.observation(shard.shard_id)
            for replica in shard.replicas:
                if replica.failed:
                    continue
                if (shard.shard_id, replica.replica_id) in queued:
                    continue
                view = planner.replica_view(
                    obs, replica.replica_id, len(shard.replicas)
                )
                decision = planner.decide(
                    shard.shard_id,
                    replica.replica_id,
                    day,
                    self._replica_design(shard, replica),
                    view,
                )
                if decision is not None:
                    self._retune_queue.append(decision)
                    self.obs.counter("cluster.advisor.decisions").inc()

    def _run_advisor(self, day: int) -> tuple[list[RetuneReport], int]:
        """Execute queued retunes at the start of the day.

        Healing outranks retuning for spares (same deterministic rule as
        the elastic engine): an under-replicated cluster defers the whole
        queue.  A ``no-spare`` abort keeps its decision queued for
        tomorrow; any other abort drops it — the replica's cooldown keeps
        the planner from immediately re-deciding the same switch.
        """
        reports: list[RetuneReport] = []
        aborted = 0
        if (
            self.advisor is None
            or not self._retune_queue
            or day <= self.window
        ):
            return reports, aborted
        if self._under_replicated():
            self.obs.counter("cluster.advisor.deferred").inc()
            return reports, aborted
        budget = self.config.advisor.max_retunes_per_day
        requeue: list[RetuneDecision] = []
        while self._retune_queue and len(reports) + aborted < budget:
            decision = self._retune_queue.pop(0)
            try:
                reports.append(self.advisor.execute(decision, day=day))
            except RetuneAborted as exc:
                aborted += 1
                if exc.reason == "no-spare":
                    requeue.append(decision)
        self._retune_queue = requeue + self._retune_queue
        return reports, aborted

    def _on_topology_changed(self, mapping: dict[int, int]) -> None:
        """Re-align per-shard bookkeeping after a committed swap.

        ``mapping`` is old shard id → new shard id for the survivors;
        parents absent from it retire (their day series moves to
        :attr:`ClusterResult.retired_shard_results`) and brand-new child
        shards start fresh series.
        """
        old = self.result.shard_results
        inverse = {new_id: old_id for old_id, new_id in mapping.items()}
        self.result.shard_results = [
            old[inverse[new_id]]
            if new_id in inverse
            else SimulationResult(
                window=self.scheme.window,
                n_indexes=self.scheme.n_indexes,
                scheme_name=self.scheme.name,
                technique=self.technique.value,
            )
            for new_id in range(len(self.shards))
        ]
        self.result.retired_shard_results.extend(
            old[old_id] for old_id in range(len(old)) if old_id not in mapping
        )
        self.result.n_shards = len(self.shards)
        self.result.partitioner = self.partitioner.describe()
        self.scheme = self.shards[0].scheme

    # ------------------------------------------------------------------
    # Self-healing (re-replication)
    # ------------------------------------------------------------------

    def _make_spare(self) -> SimulatedDisk:
        """Provision a fresh device for a replica rebuild."""
        selfheal = self.config.selfheal
        ordinal = self._spares_created
        self._spares_created += 1
        if selfheal is not None and selfheal.spare_factory is not None:
            return selfheal.spare_factory(ordinal)
        if self._device_factory is not None:
            return self._device_factory(len(self.array))
        cache = None
        if self.config.page_cache_bytes is not None:
            cache = (
                PageCache(self.config.page_cache_bytes, self.config.page_size)
                if self.config.page_size is not None
                else PageCache(self.config.page_cache_bytes)
            )
        return SimulatedDisk(self._disk_params, page_cache=cache)

    def _run_healing(
        self,
        day: int,
        plans: list[list[Op]],
        replica_plans: dict[int, list[Op]] | None = None,
    ) -> tuple[list[float], list[RebuildReport], int]:
        """Re-replicate under-replicated shards (one rebuild each per day).

        Returns per-shard maintenance start delays (the donor's device is
        busy feeding the copy until then — rebuild I/O contends with the
        day's maintenance and serving), the completed rebuild reports,
        and the number of aborted attempts.
        """
        delays = [0.0] * len(self.shards)
        reports: list[RebuildReport] = []
        failed = 0
        monitor = self._monitor
        selfheal = self.config.selfheal
        if monitor is None or selfheal is None or not selfheal.rebuild:
            return delays, reports, failed
        target = selfheal.target_replication or self.config.replication
        for shard in self.shards:
            donor = shard.primary
            if donor is None or len(shard.alive_replicas()) >= target:
                continue
            acquired = self.spares.acquire(1)
            if acquired is None:
                # Spare budget spent (e.g. by a same-day topology change
                # that outran a kill landing later in the day): the
                # shard stays under-replicated and retries tomorrow.
                self.obs.counter("cluster.heal.rebuilds_deferred").inc()
                continue
            spare = acquired[0]
            device_index = self.array.add_device(spare)
            # A retuned donor clones under its *own* design: the rebuilt
            # twin copies the donor's constituents, catches up with the
            # donor's plan, and inherits its scheme and technique.
            donor_plan = plans[shard.shard_id]
            donor_technique = donor.executor.technique
            if donor.scheme is not None and replica_plans is not None:
                donor_plan = replica_plans[id(donor.scheme)]
            try:
                replica, report = rebuild_replica(
                    shard,
                    donor,
                    spare,
                    device_index,
                    plan=donor_plan,
                    day=day,
                    technique=donor_technique,
                    monitor=monitor,
                )
            except RebuildAborted:
                # The donor is intact and partial work was swept; the
                # dead/undersized spare stays in the array as a retired
                # member and a fresh one is provisioned next day.
                failed += 1
                self.obs.counter("cluster.heal.rebuilds_failed").inc()
                continue
            replica.scheme = donor.scheme
            shard.replicas.append(replica)
            reports.append(report)
            delays[shard.shard_id] = max(
                delays[shard.shard_id], report.copy_read_end
            )
            self.obs.counter("cluster.heal.rebuilds").inc()
            self.obs.counter("cluster.heal.rebuild_bytes").inc(
                report.bytes_copied
            )
        return delays, reports, failed

    # ------------------------------------------------------------------
    # Maintenance scheduling
    # ------------------------------------------------------------------

    def _run_maintenance(
        self,
        day: int,
        plans: list[list[Op]],
        delays: list[float],
        replica_plans: dict[int, list[Op]] | None = None,
    ) -> tuple[list[ExecutionReport], list[tuple[float, float]], float]:
        """Run every shard's plan under the staggering policy.

        ``delays`` pushes a shard's start past its batch start (a rebuild
        was reading the donor's device until then).  Replicas already
        caught up to ``day`` by a rebuild keep their rebuild timeline
        instead of re-running the plan.

        Returns per-shard reports (from the day's metrics replica), the
        per-shard ``(start, end)`` maintenance windows on the cluster
        timeline, and the cluster maintenance makespan.
        """
        batch_size = self.config.max_concurrent_shards
        reports: list[ExecutionReport] = [
            ExecutionReport() for _ in self.shards
        ]
        windows: list[tuple[float, float]] = [(0.0, 0.0)] * len(self.shards)
        batch_start = 0.0
        cluster_end = 0.0
        for first in range(0, len(self.shards), batch_size):
            batch = self.shards[first : first + batch_size]
            batch_end = batch_start
            for shard in batch:
                plan = plans[shard.shard_id]
                start = max(batch_start, delays[shard.shard_id])
                metrics_replica = shard.primary or shard.replicas[0]
                shard_end = start
                for replica in shard.replicas:
                    if replica.failed:
                        replica.intervals = []
                        replica.maintenance_start = start
                        replica.maintenance_end = start
                        continue
                    if replica.caught_up_day == day:
                        shard_end = max(shard_end, replica.maintenance_end)
                        continue
                    rplan = plan
                    if (
                        replica.scheme is not None
                        and replica_plans is not None
                    ):
                        rplan = replica_plans[id(replica.scheme)]
                    if self._monitor is None:
                        report = replica.run_maintenance(rplan, start)
                    else:
                        report = replica.run_maintenance(
                            rplan, start, monitor=self._monitor
                        )
                    if replica is metrics_replica:
                        reports[shard.shard_id] = report
                    shard_end = max(shard_end, replica.maintenance_end)
                windows[shard.shard_id] = (start, shard_end)
                batch_end = max(batch_end, shard_end)
            batch_start = batch_end
            cluster_end = batch_end
        return reports, windows, cluster_end

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _split_unit(self, unit: QueryUnit) -> list[tuple[int, QueryUnit]]:
        """Route one query unit to the shards that must serve it."""
        if isinstance(unit, ScanUnit):
            return [(s, unit) for s in range(len(self.shards))]
        assert isinstance(unit, ProbeUnit)
        if len(self.shards) == 1:
            return [(0, unit)]
        groups: dict[int, list[Any]] = {}
        shard_ids = self.partitioner.shards_for_many(unit.values)
        for value, shard_id in zip(unit.values, shard_ids):
            groups.setdefault(shard_id, []).append(value)
        routed: list[tuple[int, QueryUnit]] = []
        for shard_id in sorted(groups):
            values = groups[shard_id]
            if len(values) == len(unit.values):
                routed.append((shard_id, unit))
            else:
                routed.append(
                    (
                        shard_id,
                        ProbeUnit(
                            tuple(values), unit.t1, unit.t2, unit.batched
                        ),
                    )
                )
        return routed

    def _fail_replica(self, replica: ShardReplica, reason: str) -> None:
        """Retire a replica a serving-time fault killed (failover)."""
        if self._monitor is None:
            replica.failed = True
        else:
            self._monitor.retire(replica, reason=reason)
        self._day_failovers += 1
        self.obs.counter("cluster.failovers").inc()

    def _serve_on_shard(
        self,
        shard: Shard,
        unit: QueryUnit,
        arrival: float,
        avail_pre: list[float],
        avail_post: list[float],
    ) -> tuple[UnitOutcome, float, float, float, bool]:
        """Execute ``unit`` on ``shard`` with failover.

        Returns ``(outcome, end, service_seconds, wait, degraded)``; a
        dark shard yields a synthesized empty outcome whose missing days
        enumerate what the shard would have covered.

        With self-healing enabled, replica selection honours the circuit
        breakers (an open breaker is skipped, or its cooldown waited out
        and charged to latency when nothing else can serve) and escaped
        transients are retried on the same replica under the retry
        policy — backoff charged to its device clock — before the
        request fails over.  Aborted-attempt device time and breaker
        waits are carried into the request's latency.
        """
        wait_policy = self.config.policy is OverlapPolicy.WAIT
        monitor = self._monitor
        carried = 0.0
        attempts: dict[int, int] = {}
        exhausted: set[int] = set()
        force_degraded: set[int] = set()
        while True:
            if monitor is None:
                if self.router is not None:
                    replica = self.router.choose(
                        shard,
                        unit.t1,
                        unit.t2,
                        "scan" if isinstance(unit, ScanUnit) else "probe",
                    )
                else:
                    replica = shard.primary
            else:
                replica, breaker_wait = monitor.serving_replica(
                    shard,
                    now=self._clock_base + arrival + carried,
                    exclude=exhausted,
                )
                carried += breaker_wait
            if replica is None:
                # Dark shard — or every candidate retry-exhausted for
                # this request: an honest empty answer, days enumerated.
                missing = shard.window_days(unit.t1, unit.t2)
                outcome = UnitOutcome(
                    0.0, unit.requests, frozenset(missing)
                )
                return outcome, arrival + carried, 0.0, carried, True
            wave = replica.wave
            needed = unit.needed_constituents(wave)
            blocking = [iv for iv in replica.intervals if iv.blocking]
            blocked, release = _blocked_until(needed, arrival, blocking)
            if wait_policy:
                wait = release - arrival
                degraded_names: set[str] = set()
            else:
                wait = 0.0
                degraded_names = blocked
            pre_offline = frozenset(wave.offline)
            added_offline = degraded_names - wave.offline
            wave.offline |= added_offline
            degraded_call = (
                bool(degraded_names)
                or replica.replica_id in force_degraded
            )
            clock_before = replica.device.clock
            try:
                outcome = unit.execute(wave, degraded=degraded_call)
            except TransientIOError:
                carried += replica.device.clock - clock_before
                # A strict call marks the faulted constituent offline
                # before re-raising; the transient left the data intact,
                # so clear the mark before the retry.
                wave.offline &= pre_offline | added_offline
                if monitor is None:
                    self._fail_replica(replica, "serving-fault")
                    continue
                if self._retry_transient(
                    replica, attempts, exhausted,
                    now=self._clock_base + arrival + carried,
                ):
                    carried += monitor.retry.delay_before_retry(
                        attempts[replica.replica_id]
                    )
                continue
            except DegradedWindowError:
                # A strict call tripped on a constituent an earlier
                # swallowed fault left offline: re-serve degraded for an
                # honest labeled partial answer.
                carried += replica.device.clock - clock_before
                force_degraded.add(replica.replica_id)
                continue
            except FaultError:
                carried += replica.device.clock - clock_before
                self._fail_replica(replica, "serving-fault")
                continue
            finally:
                wave.offline -= added_offline
            newly_offline = wave.offline - pre_offline
            if newly_offline:
                # A degraded call swallows device faults into a partial
                # answer, but the wave retires the constituent it lost.
                injector = getattr(replica.device, "injector", None)
                device_dead = injector is not None and injector.device_failed
                if monitor is not None and not device_dead:
                    # Transient swallowed mid-degraded-call: the data is
                    # intact — bring the constituents back online and
                    # retry under the retry policy.
                    wave.offline -= newly_offline
                    carried += replica.device.clock - clock_before
                    if self._retry_transient(
                        replica, attempts, exhausted,
                        now=self._clock_base + arrival + carried,
                    ):
                        carried += monitor.retry.delay_before_retry(
                            attempts[replica.replica_id]
                        )
                    continue
                if len(shard.alive_replicas()) > 1:
                    # With another live replica, failover beats
                    # degradation — discard the partial answer and
                    # re-serve there.
                    carried += replica.device.clock - clock_before
                    self._fail_replica(replica, "serving-fault")
                    continue
            if monitor is not None:
                monitor.record_success(replica)
            delta = replica.device.clock - clock_before
            device = replica.device_index
            ready = arrival + wait + carried
            if arrival < replica.maintenance_start:
                # The shard's transition has not begun: serve from the
                # pre-transition window immediately (the staggering win).
                start = max(ready, avail_pre[device])
                avail_pre[device] = start + delta
            else:
                start = max(ready, avail_post[device])
                avail_post[device] = start + delta
            end = start + delta
            return outcome, end, delta, wait + carried, degraded_call

    def _retry_transient(
        self,
        replica: ShardReplica,
        attempts: dict[int, int],
        exhausted: set[int],
        *,
        now: float,
    ) -> bool:
        """Account one serving-time transient; return ``True`` to retry
        the same replica (backoff charged to its device), ``False`` once
        its per-request retry budget is spent (it joins ``exhausted``)."""
        monitor = self._monitor
        assert monitor is not None
        monitor.on_transient(replica, now=now)
        n = attempts.get(replica.replica_id, 0) + 1
        attempts[replica.replica_id] = n
        if n >= monitor.retry.max_attempts:
            exhausted.add(replica.replica_id)
            return False
        replica.device.advance(monitor.retry.delay_before_retry(n))
        monitor.note_retry(n)
        return True

    # ------------------------------------------------------------------
    # Day loop
    # ------------------------------------------------------------------

    def _run_day(
        self, day: int, plan_for: Callable[[WaveScheme], Any]
    ) -> ClusterDayStats:
        self._day_failovers = 0
        monitor = self._monitor
        if monitor is not None:
            monitor.now = self._clock_base
        heal_window = self.obs.window(
            "cluster.heal.retries", "cluster.heal.breaker_opens"
        )
        self.spares.new_day()
        # Topology changes run first: snapshots, plans, and serving all
        # see the post-swap shard list (children arrive caught up).
        reshard_reports, reshards_aborted, reshard_deferred = (
            self._run_elastic(day)
        )
        # Then queued retunes (decided at yesterday's boundary); healing
        # still outranks both for spares.
        retune_reports, retunes_aborted = self._run_advisor(day)
        snapshots = []
        for shard in self.shards:
            replica = shard.primary or shard.replicas[0]
            cache = replica.device.page_cache
            snapshots.append(
                (
                    replica,
                    replica.device.stats.snapshot(),
                    cache.snapshot() if cache is not None else None,
                )
            )

        plans = []
        for shard in self.shards:
            preplanned = self._preplanned.pop(id(shard.scheme), None)
            plans.append(
                preplanned
                if preplanned is not None
                else list(plan_for(shard.scheme))
            )
        # Replicas the advisor retuned run their own scheme's plan (one
        # plan per scheme instance, shared by every replica bound to it —
        # the same sharing rule as the shard-level plan).
        replica_plans: dict[int, list[Op]] = {}
        for shard in self.shards:
            for replica in shard.replicas:
                scheme = replica.scheme
                if scheme is None or replica.failed:
                    continue
                if id(scheme) in replica_plans:
                    continue
                preplanned = self._preplanned.pop(id(scheme), None)
                replica_plans[id(scheme)] = (
                    preplanned
                    if preplanned is not None
                    else list(plan_for(scheme))
                )
        delays, rebuild_reports, rebuilds_failed = self._run_healing(
            day, plans, replica_plans
        )
        reports, windows, cluster_end = self._run_maintenance(
            day, plans, delays, replica_plans
        )

        if self.on_serving_start is not None:
            self.on_serving_start(self, day)

        day_during = Histogram("cluster.latency.during")
        day_steady = Histogram("cluster.latency.steady")
        query_seconds = [0.0] * len(self.shards)
        shard_requests = [0] * len(self.shards)
        queries = waited = degraded_count = 0
        last_completion = 0.0
        missing_all: set[int] = set()
        if self.queries is not None:
            units = self.queries.day_requests(day, self.window)
            if units:
                horizon = cluster_end * self.config.arrival_stretch
                avail_pre = [0.0] * len(self.array)
                avail_post = [0.0] * len(self.array)
                for shard in self.shards:
                    for replica in shard.replicas:
                        avail_post[replica.device_index] = (
                            replica.maintenance_end
                        )
                for i, unit in enumerate(units):
                    arrival = horizon * i / len(units)
                    ends: list[float] = []
                    services: list[float] = []
                    unit_missing: set[int] = set()
                    unit_degraded = False
                    for shard_id, subunit in self._split_unit(unit):
                        if self._observer is not None:
                            self._observe_unit(shard_id, subunit)
                        (
                            outcome,
                            end,
                            service,
                            _wait,
                            was_degraded,
                        ) = self._serve_on_shard(
                            self.shards[shard_id],
                            subunit,
                            arrival,
                            avail_pre,
                            avail_post,
                        )
                        query_seconds[shard_id] += outcome.seconds
                        shard_requests[shard_id] += subunit.requests
                        ends.append(end)
                        services.append(service)
                        unit_missing |= outcome.missing_days
                        unit_degraded = unit_degraded or was_degraded
                    completion = max(ends) if ends else arrival
                    latency = completion - arrival
                    service_parallel = max(services, default=0.0)
                    queries += unit.requests
                    last_completion = max(last_completion, completion)
                    if latency > service_parallel + 1e-12:
                        waited += unit.requests
                    if unit_missing:
                        degraded_count += unit.requests
                        missing_all |= unit_missing
                    elif unit_degraded:
                        degraded_count += unit.requests
                    day_hist = (
                        day_during if arrival < cluster_end else day_steady
                    )
                    run_hist = (
                        self.latency_during
                        if arrival < cluster_end
                        else self.latency_steady
                    )
                    for _ in range(unit.requests):
                        day_hist.observe(latency)
                        run_hist.observe(latency)

        for shard_id, shard in enumerate(self.shards):
            replica, io_before, cache_before = snapshots[shard_id]
            io_delta = replica.device.stats.snapshot() - io_before
            cache = replica.device.page_cache
            cache_delta = (
                cache.snapshot() - cache_before
                if cache is not None and cache_before is not None
                else None
            )
            report = reports[shard_id]
            wave = replica.wave
            self.result.shard_results[shard_id].days.append(
                DayMetrics(
                    day=day,
                    seconds=report.seconds,
                    query_seconds=query_seconds[shard_id],
                    steady_bytes=replica.device.live_bytes,
                    constituent_bytes=wave.constituent_bytes,
                    peak_bytes=report.peak_bytes,
                    length_days=wave.total_length_days,
                    covered_days=frozenset(wave.covered_days()),
                    io=io_delta,
                    cache=cache_delta,
                )
            )

        decision: AutoscalerDecision | None = None
        if self._autoscaler is not None:
            decision = self._autoscaler.propose(
                day=day,
                busy_seconds=list(query_seconds),
                requests=list(shard_requests),
                under_replicated=self._under_replicated(),
                last_action_day=self._last_action_day,
            )
            if decision.queued is not None and self._pending_action is None:
                self._pending_action = decision.queued
                self.obs.counter("cluster.elastic.proposed").inc()

        # Day boundary: roll the observation window forward and queue
        # any retune decisions for execution at the start of tomorrow.
        if self._observer is not None:
            self._observer.end_day()
            self._plan_retunes(day)
        designs: dict[str, str] | None = None
        if self.config.advisor is not None:
            designs = {
                replica.name: (
                    f"{replica.scheme.name}/{replica.scheme.n_indexes}"
                )
                for shard in self.shards
                for replica in shard.replicas
                if replica.scheme is not None
            } or None

        makespan = max(cluster_end, last_completion)
        stats = ClusterDayStats(
            day=day,
            maintenance_makespan_seconds=cluster_end,
            makespan_seconds=makespan,
            shard_windows=tuple(windows),
            queries=queries,
            queries_waited=waited,
            queries_degraded=degraded_count,
            failovers=self._day_failovers,
            shards_unavailable=tuple(
                shard.shard_id
                for shard in self.shards
                if not shard.available
            ),
            missing_days=frozenset(missing_all),
            latency_during_transition=(
                day_during.summary() if day_during.count else None
            ),
            latency_steady_state=(
                day_steady.summary() if day_steady.count else None
            ),
            rebuilds=len(rebuild_reports),
            rebuilds_failed=rebuilds_failed,
            rebuild_seconds=sum(
                r.makespan_seconds for r in rebuild_reports
            ),
            rebuild_spans=tuple(
                r.makespan_seconds for r in rebuild_reports
            ),
            retries=int(heal_window.delta("cluster.heal.retries")),
            breaker_opens=int(
                heal_window.delta("cluster.heal.breaker_opens")
            ),
            reshards=len(reshard_reports),
            reshards_aborted=reshards_aborted,
            reshard_deferred=reshard_deferred,
            reshard_kinds=tuple(r.kind for r in reshard_reports),
            reshard_seconds=sum(
                r.makespan_seconds for r in reshard_reports
            ),
            retunes=len(retune_reports),
            retunes_aborted=retunes_aborted,
            retune_seconds=sum(r.seconds for r in retune_reports),
            designs=designs,
            topology_version=self.coordinator.topology_version,
            n_shards=len(self.shards),
            autoscaler=decision.describe() if decision is not None else None,
            query_seconds=tuple(query_seconds),
        )
        self.result.days.append(stats)
        self._clock_base += makespan
        self.obs.counter("cluster.days").inc()
        self.obs.counter("cluster.queries").inc(queries)
        self.obs.counter("cluster.queries_degraded").inc(degraded_count)
        self.obs.histogram("cluster.day.makespan_seconds").observe(makespan)
        return stats


def run_cluster_simulation(
    scheme_factory: Callable[[], WaveScheme],
    store: RecordStore,
    *,
    last_day: int,
    technique: UpdateTechnique = UpdateTechnique.SIMPLE_SHADOW,
    index_config: IndexConfig | None = None,
    disk_params: DiskParameters | None = None,
    queries: QueryWorkload | None = None,
    cluster: ClusterConfig | None = None,
    device_factory: Callable[[int], SimulatedDisk] | None = None,
) -> ClusterResult:
    """One-call convenience wrapper around :class:`ClusterSimulation`.

    The cluster analogue of :func:`repro.sim.driver.run_simulation`: the
    store is partitioned per the config, each shard runs its own scheme
    instance on its own device(s), and the day's query stream is served
    by the whole cluster on a shared timeline.
    """
    sim = ClusterSimulation(
        scheme_factory,
        store,
        technique=technique,
        index_config=index_config,
        disk_params=disk_params,
        queries=queries,
        cluster=cluster,
        device_factory=device_factory,
    )
    return sim.run(last_day)
