"""Scatter-gather query routing over the shard set.

The :class:`ClusterCoordinator` is the cluster's query front door.  It
speaks the same request shapes as the single wave index's batched
serving APIs (:meth:`~repro.core.wave.WaveIndex.probe_many` /
:meth:`~repro.core.wave.WaveIndex.scan_many`): probes are routed to the
one shard owning each value (scatter), scans fan out to every shard, and
per-shard answers are reassembled in request order (gather) with the
per-shard :class:`~repro.core.queries.BatchCostSummary`\\ s merged into a
cluster-level :class:`ClusterCostSummary`.

Failover semantics: a shard is served by its primary replica; if the
primary's device raises a :class:`~repro.errors.FaultError` mid-query the
replica is marked failed and the request is retried on the next replica.
When every replica of a shard is dead the coordinator does not guess —
it returns an *empty* answer for that shard with the shard's window days
enumerated in ``missing_days`` (a correct partial result, never a wrong
one), and lists the shard in the summary's ``shards_unavailable``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from ..core.queries import BatchCostSummary, ProbeResult, ScanResult
from ..errors import (
    ClusterError,
    DegradedWindowError,
    FaultError,
    TransientIOError,
)
from ..obs import MetricsRegistry
from .partitioner import Partitioner
from .shard import Shard, ShardReplica

if TYPE_CHECKING:
    from ..advisor.router import DesignRouter
    from .selfheal import ReplicaHealthMonitor


@dataclass(frozen=True)
class ClusterCostSummary:
    """Cluster-level accounting for one scatter-gather batch.

    ``serial_seconds`` sums every shard's device time (single-device
    equivalent work); ``elapsed_seconds`` is the slowest shard's time —
    shards read distinct devices, so the batch completes when the last
    one does.  Both include failover overhead: ``aborted_seconds`` is
    the device time the batch spent on attempts that died mid-answer
    (the dying replica's charged reads plus any retry backoff), which a
    real client waits through before the surviving replica's answer
    lands, so it counts toward the shard's elapsed contribution too.
    ``per_shard`` keeps each shard's own
    :class:`~repro.core.queries.BatchCostSummary` for drill-down.
    """

    requests: int
    serial_seconds: float
    elapsed_seconds: float
    seeks: float
    bytes_read: int
    failovers: int
    shards_queried: int
    shards_unavailable: tuple[int, ...]
    missing_days: frozenset[int]
    per_shard: tuple[tuple[int, BatchCostSummary], ...]
    aborted_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        """Return ``True`` when no shard's days were lost."""
        return not self.missing_days


@dataclass(frozen=True)
class ClusterBatchResult:
    """Per-request merged results plus the cluster cost summary."""

    results: tuple[Any, ...]
    summary: ClusterCostSummary

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int):
        return self.results[i]

    @property
    def seconds(self) -> float:
        """Return the batch's summed (serial-equivalent) seconds."""
        return self.summary.serial_seconds


class ClusterCoordinator:
    """Routes queries across shards and merges their answers.

    Args:
        shards: The cluster's shards, in shard-id order.
        partitioner: The same partitioner the stores were split with —
            probe routing must agree with data placement.
        metrics: Optional registry; the coordinator publishes
            ``cluster.probes`` / ``cluster.scans`` / ``cluster.failovers``
            / ``cluster.partial_answers`` counters into it.
        monitor: Optional :class:`~repro.cluster.selfheal.ReplicaHealthMonitor`.
            With one, replica selection honours the circuit breakers and
            escaped transients are retried under the monitor's retry
            policy instead of immediately retiring the replica.
        router: Optional :class:`~repro.advisor.router.DesignRouter`.
            With divergently tuned replicas it picks the replica whose
            design fits each batch (probes to the probe twin, scans to
            the scan twin); without one the primary serves, and with a
            ``monitor`` the breaker policy wins (health beats cost).
            Failover is unchanged either way: faults retire the chosen
            replica and the batch re-serves on any healthy one.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        partitioner: Partitioner,
        metrics: MetricsRegistry | None = None,
        *,
        monitor: "ReplicaHealthMonitor | None" = None,
        router: "DesignRouter | None" = None,
    ) -> None:
        if len(shards) != partitioner.n_shards:
            raise ClusterError(
                f"partitioner covers {partitioner.n_shards} shards, "
                f"got {len(shards)}"
            )
        self.shards = list(shards)
        self.partitioner = partitioner
        self.obs = metrics or MetricsRegistry()
        self.monitor = monitor
        self.router = router
        self.topology_version = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def swap_topology(
        self, shards: Sequence[Shard], partitioner: Partitioner
    ) -> int:
        """Atomically install a new shard list and routing table.

        The elastic engine's commit point: every query batch routed after
        this call sees the new partitioner and shard set together (the
        two are validated against each other first, so a torn swap —
        routing table for ``k+1`` shards over a ``k``-shard list — is
        impossible).  Returns the new :attr:`topology_version`; the
        version is monotonic, so bench reports can correlate per-day
        stats with the routing table that served them.
        """
        if len(shards) != partitioner.n_shards:
            raise ClusterError(
                f"partitioner covers {partitioner.n_shards} shards, "
                f"got {len(shards)}"
            )
        for i, shard in enumerate(shards):
            if shard.shard_id != i:
                raise ClusterError(
                    f"shard at position {i} carries id {shard.shard_id}; "
                    f"ids must be renumbered before the swap"
                )
        self.shards = list(shards)
        self.partitioner = partitioner
        self.topology_version += 1
        self.obs.counter("cluster.topology.swaps").inc()
        return self.topology_version

    # ------------------------------------------------------------------
    # Failover primitive
    # ------------------------------------------------------------------

    def _serve(
        self,
        shard: Shard,
        call,
        *,
        degraded: bool = True,
        route: tuple[int, int, str] | None = None,
    ):
        """Run ``call(replica, degraded)`` on the shard, failing over on
        faults.

        ``route`` — ``(t1, t2, kind)`` for the batch — lets an attached
        :class:`~repro.advisor.router.DesignRouter` pick among divergently
        tuned replicas; it only applies without a health monitor (an open
        breaker outranks a cost preference).

        Failover beats degradation: while the shard has *another* live
        replica, the call runs strict (``degraded=False``) so a device
        fault — which the wave index would otherwise swallow into a
        partial answer — propagates, retires the replica, and the next
        one serves the full window.  Only the last live replica serves
        with the caller's ``degraded`` flag; a partial answer is the
        end of the line, not a substitute for a healthy copy.

        Returns ``(outcome, replica, aborted_seconds)`` — the third item
        is the device time spent on attempts that died mid-answer (plus
        retry backoff and breaker waits), which the summary merge charges
        to both the serial and elapsed cost clocks — or
        ``(None, None, aborted_seconds)`` when every replica is dead.
        """
        monitor = self.monitor
        aborted = 0.0
        attempts: dict[int, int] = {}
        exhausted: set[int] = set()
        while True:
            if monitor is None:
                if self.router is not None and route is not None:
                    replica = self.router.choose(shard, *route)
                else:
                    replica = shard.primary
            else:
                replica, breaker_wait = monitor.serving_replica(
                    shard, now=monitor.now, exclude=exhausted
                )
                aborted += breaker_wait
            if replica is None:
                return None, None, aborted
            candidates = [
                r
                for r in shard.alive_replicas()
                if r.replica_id not in exhausted
            ]
            last = len(candidates) == 1
            before = replica.device.clock
            before_offline = frozenset(replica.wave.offline)
            try:
                outcome = call(replica, degraded and last)
            except TransientIOError:
                aborted += replica.device.clock - before
                # A strict call marks the faulted constituent offline
                # before re-raising; the transient left the data intact,
                # so clear the mark before the retry.
                replica.wave.offline &= before_offline
                if monitor is None:
                    self._fail_over(replica)
                    continue
                monitor.on_transient(replica, now=monitor.now)
                n = attempts.get(replica.replica_id, 0) + 1
                attempts[replica.replica_id] = n
                if n >= monitor.retry.max_attempts:
                    exhausted.add(replica.replica_id)
                else:
                    delay = monitor.retry.delay_before_retry(n)
                    replica.device.advance(delay)
                    aborted += delay
                    monitor.note_retry(n)
                continue
            except (DegradedWindowError, FaultError):
                aborted += replica.device.clock - before
                self._fail_over(replica)
                continue
            if monitor is not None:
                monitor.record_success(replica)
            return outcome, replica, aborted

    def _fail_over(self, replica: ShardReplica) -> None:
        """Retire a replica whose answer died; count the failover."""
        if self.monitor is None:
            replica.failed = True
        else:
            self.monitor.retire(replica, reason="query-fault")
        self.obs.counter("cluster.failovers").inc()
        self._failovers += 1

    # ------------------------------------------------------------------
    # Batched scatter-gather
    # ------------------------------------------------------------------

    def probe_many(
        self,
        requests: Sequence[tuple[Any, int, int]],
        *,
        degraded: bool = True,
    ) -> ClusterBatchResult:
        """Batched ``TimedIndexProbe`` across the cluster.

        Each ``(value, t1, t2)`` request is routed to the shard owning
        ``value``; requests sharing a shard form one
        :meth:`~repro.core.wave.WaveIndex.probe_many` batch there, so the
        per-shard amortization (value dedup, offset-ordered bucket reads)
        is preserved.  Results come back in request order; each is
        exactly what the owning shard's wave index answered, or an empty
        result with ``missing_days`` set when the shard is dark.
        """
        specs = list(requests)
        self.obs.counter("cluster.probes").inc(len(specs))
        by_shard: dict[int, list[int]] = {}
        shard_ids = self.partitioner.shards_for_many(
            [value for value, _t1, _t2 in specs]
        )
        for i, shard_id in enumerate(shard_ids):
            by_shard.setdefault(shard_id, []).append(i)

        self._failovers = 0
        results: list[ProbeResult | None] = [None] * len(specs)
        merge = _SummaryMerge()
        for shard_id in sorted(by_shard):
            shard = self.shards[shard_id]
            indices = by_shard[shard_id]
            shard_specs = [specs[i] for i in indices]
            batch, _replica, aborted = self._serve(
                shard,
                lambda r, d: r.wave.probe_many(shard_specs, degraded=d),
                degraded=degraded,
                route=(
                    min(t1 for _v, t1, _t2 in shard_specs),
                    max(t2 for _v, _t1, t2 in shard_specs),
                    "probe",
                ),
            )
            merge.charge_aborted(shard_id, aborted)
            if batch is None:
                merge.shard_dark(shard)
                for i in indices:
                    _value, t1, t2 = specs[i]
                    missing = frozenset(shard.window_days(t1, t2))
                    merge.missing |= missing
                    results[i] = ProbeResult((), 0.0, 0, frozenset(), missing)
                continue
            merge.add(shard_id, batch.summary)
            for i, result in zip(indices, batch.results):
                results[i] = result
                merge.missing |= result.missing_days
        if merge.missing:
            self.obs.counter("cluster.partial_answers").inc()
        return ClusterBatchResult(
            tuple(results), merge.finish(len(specs), self._failovers)
        )

    def scan_many(
        self,
        requests: Sequence[tuple[int, int]],
        *,
        degraded: bool = True,
    ) -> ClusterBatchResult:
        """Batched ``TimedSegmentScan`` across the cluster.

        Scans are value-oblivious, so every request fans out to every
        shard; each merged result concatenates the shards' entries in
        shard order, sums their seconds, and unions their coverage.
        """
        specs = list(requests)
        self.obs.counter("cluster.scans").inc(len(specs))
        self._failovers = 0
        merge = _SummaryMerge()
        parts: list[list[ScanResult]] = [[] for _ in specs]
        dark_missing: list[set[int]] = [set() for _ in specs]
        for shard in self.shards:
            batch, _replica, aborted = self._serve(
                shard,
                lambda r, d: r.wave.scan_many(specs, degraded=d),
                degraded=degraded,
                route=(
                    min(t1 for t1, _t2 in specs),
                    max(t2 for _t1, t2 in specs),
                    "scan",
                )
                if specs
                else None,
            )
            merge.charge_aborted(shard.shard_id, aborted)
            if batch is None:
                merge.shard_dark(shard)
                for i, (t1, t2) in enumerate(specs):
                    dark_missing[i] |= shard.window_days(t1, t2)
                continue
            merge.add(shard.shard_id, batch.summary)
            for i, result in zip(range(len(specs)), batch.results):
                parts[i].append(result)
        results = []
        for i in range(len(specs)):
            merged = _merge_scans(parts[i], dark_missing[i])
            merge.missing |= merged.missing_days
            results.append(merged)
        if merge.missing:
            self.obs.counter("cluster.partial_answers").inc()
        return ClusterBatchResult(
            tuple(results), merge.finish(len(specs), self._failovers)
        )

    # ------------------------------------------------------------------
    # Single-request conveniences
    # ------------------------------------------------------------------

    def probe(
        self, value: Any, t1: int, t2: int, *, degraded: bool = True
    ) -> ProbeResult:
        """Route one timed probe to its owning shard."""
        return self.probe_many([(value, t1, t2)], degraded=degraded).results[0]

    def scan(self, t1: int, t2: int, *, degraded: bool = True) -> ScanResult:
        """Fan one timed scan out to every shard and merge the answers."""
        return self.scan_many([(t1, t2)], degraded=degraded).results[0]


class _SummaryMerge:
    """Accumulates per-shard batch summaries into a cluster summary."""

    def __init__(self) -> None:
        self.per_shard: list[tuple[int, BatchCostSummary]] = []
        self.unavailable: list[int] = []
        self.missing: set[int] = set()
        self.aborted: dict[int, float] = {}

    def add(self, shard_id: int, summary: BatchCostSummary) -> None:
        self.per_shard.append((shard_id, summary))

    def shard_dark(self, shard: Shard) -> None:
        self.unavailable.append(shard.shard_id)

    def charge_aborted(self, shard_id: int, seconds: float) -> None:
        """Charge a shard's aborted-attempt device time to the batch."""
        if seconds > 0.0:
            self.aborted[shard_id] = (
                self.aborted.get(shard_id, 0.0) + seconds
            )

    def finish(self, requests: int, failovers: int) -> ClusterCostSummary:
        # Aborted attempts are sequential with the surviving replica's
        # answer on the same shard, so they stretch that shard's elapsed
        # contribution as well as the serial total; a dark shard's futile
        # attempts still occupy elapsed time.
        totals = [
            s.seconds + self.aborted.get(sid, 0.0)
            for sid, s in self.per_shard
        ]
        totals.extend(self.aborted.get(sid, 0.0) for sid in self.unavailable)
        aborted_total = sum(self.aborted.values())
        return ClusterCostSummary(
            requests=requests,
            serial_seconds=sum(s.seconds for _, s in self.per_shard)
            + aborted_total,
            elapsed_seconds=max(totals, default=0.0),
            seeks=sum(s.seeks for _, s in self.per_shard),
            bytes_read=sum(s.bytes_read for _, s in self.per_shard),
            failovers=failovers,
            shards_queried=len(self.per_shard),
            shards_unavailable=tuple(self.unavailable),
            missing_days=frozenset(self.missing),
            per_shard=tuple(self.per_shard),
            aborted_seconds=aborted_total,
        )


def _merge_scans(parts: list[ScanResult], dark_days: set[int]) -> ScanResult:
    """Merge per-shard scan answers for one request.

    Shards partition the *value* space, so every shard contributes to
    every day: a day any shard lost (degraded or dark) stays missing in
    the merged answer even when other shards covered it — their postings
    for that day are present, but the day's answer is incomplete.
    """
    entries: list = []
    covered: set[int] = set()
    missing: set[int] = set(dark_days)
    seconds = 0.0
    scanned = 0
    for part in parts:
        entries.extend(part.entries)
        covered |= part.covered_days
        missing |= part.missing_days
        seconds += part.seconds
        scanned += part.indexes_scanned
    return ScanResult(
        tuple(entries),
        seconds,
        scanned,
        frozenset(covered - missing),
        frozenset(missing),
    )


__all__ = [
    "ClusterBatchResult",
    "ClusterCoordinator",
    "ClusterCostSummary",
]
