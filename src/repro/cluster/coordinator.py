"""Scatter-gather query routing over the shard set.

The :class:`ClusterCoordinator` is the cluster's query front door.  It
speaks the same request shapes as the single wave index's batched
serving APIs (:meth:`~repro.core.wave.WaveIndex.probe_many` /
:meth:`~repro.core.wave.WaveIndex.scan_many`): probes are routed to the
one shard owning each value (scatter), scans fan out to every shard, and
per-shard answers are reassembled in request order (gather) with the
per-shard :class:`~repro.core.queries.BatchCostSummary`\\ s merged into a
cluster-level :class:`ClusterCostSummary`.

Failover semantics: a shard is served by its primary replica; if the
primary's device raises a :class:`~repro.errors.FaultError` mid-query the
replica is marked failed and the request is retried on the next replica.
When every replica of a shard is dead the coordinator does not guess —
it returns an *empty* answer for that shard with the shard's window days
enumerated in ``missing_days`` (a correct partial result, never a wrong
one), and lists the shard in the summary's ``shards_unavailable``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core.queries import BatchCostSummary, ProbeResult, ScanResult
from ..errors import ClusterError, DegradedWindowError, FaultError
from ..obs import MetricsRegistry
from .partitioner import Partitioner
from .shard import Shard, ShardReplica


@dataclass(frozen=True)
class ClusterCostSummary:
    """Cluster-level accounting for one scatter-gather batch.

    ``serial_seconds`` sums every shard's device time (single-device
    equivalent work); ``elapsed_seconds`` is the slowest shard's time —
    shards read distinct devices, so the batch completes when the last
    one does.  ``per_shard`` keeps each shard's own
    :class:`~repro.core.queries.BatchCostSummary` for drill-down.
    """

    requests: int
    serial_seconds: float
    elapsed_seconds: float
    seeks: float
    bytes_read: int
    failovers: int
    shards_queried: int
    shards_unavailable: tuple[int, ...]
    missing_days: frozenset[int]
    per_shard: tuple[tuple[int, BatchCostSummary], ...]

    @property
    def complete(self) -> bool:
        """Return ``True`` when no shard's days were lost."""
        return not self.missing_days


@dataclass(frozen=True)
class ClusterBatchResult:
    """Per-request merged results plus the cluster cost summary."""

    results: tuple[Any, ...]
    summary: ClusterCostSummary

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int):
        return self.results[i]

    @property
    def seconds(self) -> float:
        """Return the batch's summed (serial-equivalent) seconds."""
        return self.summary.serial_seconds


class ClusterCoordinator:
    """Routes queries across shards and merges their answers.

    Args:
        shards: The cluster's shards, in shard-id order.
        partitioner: The same partitioner the stores were split with —
            probe routing must agree with data placement.
        metrics: Optional registry; the coordinator publishes
            ``cluster.probes`` / ``cluster.scans`` / ``cluster.failovers``
            / ``cluster.partial_answers`` counters into it.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        partitioner: Partitioner,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if len(shards) != partitioner.n_shards:
            raise ClusterError(
                f"partitioner covers {partitioner.n_shards} shards, "
                f"got {len(shards)}"
            )
        self.shards = list(shards)
        self.partitioner = partitioner
        self.obs = metrics or MetricsRegistry()

    # ------------------------------------------------------------------
    # Failover primitive
    # ------------------------------------------------------------------

    def _serve(self, shard: Shard, call, *, degraded: bool = True):
        """Run ``call(replica, degraded)`` on the shard, failing over on
        faults.

        Failover beats degradation: while the shard has *another* live
        replica, the call runs strict (``degraded=False``) so a device
        fault — which the wave index would otherwise swallow into a
        partial answer — propagates, retires the replica, and the next
        one serves the full window.  Only the last live replica serves
        with the caller's ``degraded`` flag; a partial answer is the
        end of the line, not a substitute for a healthy copy.

        Returns ``(outcome, replica)`` or ``(None, None)`` when every
        replica is dead.
        """
        while True:
            replica = shard.primary
            if replica is None:
                return None, None
            last = len(shard.alive_replicas()) == 1
            try:
                return call(replica, degraded and last), replica
            except (DegradedWindowError, FaultError):
                replica.failed = True
                self.obs.counter("cluster.failovers").inc()
                self._failovers += 1

    # ------------------------------------------------------------------
    # Batched scatter-gather
    # ------------------------------------------------------------------

    def probe_many(
        self,
        requests: Sequence[tuple[Any, int, int]],
        *,
        degraded: bool = True,
    ) -> ClusterBatchResult:
        """Batched ``TimedIndexProbe`` across the cluster.

        Each ``(value, t1, t2)`` request is routed to the shard owning
        ``value``; requests sharing a shard form one
        :meth:`~repro.core.wave.WaveIndex.probe_many` batch there, so the
        per-shard amortization (value dedup, offset-ordered bucket reads)
        is preserved.  Results come back in request order; each is
        exactly what the owning shard's wave index answered, or an empty
        result with ``missing_days`` set when the shard is dark.
        """
        specs = list(requests)
        self.obs.counter("cluster.probes").inc(len(specs))
        by_shard: dict[int, list[int]] = {}
        for i, (value, _t1, _t2) in enumerate(specs):
            by_shard.setdefault(self.partitioner.shard_for(value), []).append(i)

        self._failovers = 0
        results: list[ProbeResult | None] = [None] * len(specs)
        merge = _SummaryMerge()
        for shard_id in sorted(by_shard):
            shard = self.shards[shard_id]
            indices = by_shard[shard_id]
            shard_specs = [specs[i] for i in indices]
            batch, _replica = self._serve(
                shard,
                lambda r, d: r.wave.probe_many(shard_specs, degraded=d),
                degraded=degraded,
            )
            if batch is None:
                merge.shard_dark(shard)
                for i in indices:
                    _value, t1, t2 = specs[i]
                    missing = frozenset(shard.window_days(t1, t2))
                    merge.missing |= missing
                    results[i] = ProbeResult((), 0.0, 0, frozenset(), missing)
                continue
            merge.add(shard_id, batch.summary)
            for i, result in zip(indices, batch.results):
                results[i] = result
                merge.missing |= result.missing_days
        if merge.missing:
            self.obs.counter("cluster.partial_answers").inc()
        return ClusterBatchResult(
            tuple(results), merge.finish(len(specs), self._failovers)
        )

    def scan_many(
        self,
        requests: Sequence[tuple[int, int]],
        *,
        degraded: bool = True,
    ) -> ClusterBatchResult:
        """Batched ``TimedSegmentScan`` across the cluster.

        Scans are value-oblivious, so every request fans out to every
        shard; each merged result concatenates the shards' entries in
        shard order, sums their seconds, and unions their coverage.
        """
        specs = list(requests)
        self.obs.counter("cluster.scans").inc(len(specs))
        self._failovers = 0
        merge = _SummaryMerge()
        parts: list[list[ScanResult]] = [[] for _ in specs]
        dark_missing: list[set[int]] = [set() for _ in specs]
        for shard in self.shards:
            batch, _replica = self._serve(
                shard,
                lambda r, d: r.wave.scan_many(specs, degraded=d),
                degraded=degraded,
            )
            if batch is None:
                merge.shard_dark(shard)
                for i, (t1, t2) in enumerate(specs):
                    dark_missing[i] |= shard.window_days(t1, t2)
                continue
            merge.add(shard.shard_id, batch.summary)
            for i, result in zip(range(len(specs)), batch.results):
                parts[i].append(result)
        results = []
        for i in range(len(specs)):
            merged = _merge_scans(parts[i], dark_missing[i])
            merge.missing |= merged.missing_days
            results.append(merged)
        if merge.missing:
            self.obs.counter("cluster.partial_answers").inc()
        return ClusterBatchResult(
            tuple(results), merge.finish(len(specs), self._failovers)
        )

    # ------------------------------------------------------------------
    # Single-request conveniences
    # ------------------------------------------------------------------

    def probe(
        self, value: Any, t1: int, t2: int, *, degraded: bool = True
    ) -> ProbeResult:
        """Route one timed probe to its owning shard."""
        return self.probe_many([(value, t1, t2)], degraded=degraded).results[0]

    def scan(self, t1: int, t2: int, *, degraded: bool = True) -> ScanResult:
        """Fan one timed scan out to every shard and merge the answers."""
        return self.scan_many([(t1, t2)], degraded=degraded).results[0]


class _SummaryMerge:
    """Accumulates per-shard batch summaries into a cluster summary."""

    def __init__(self) -> None:
        self.per_shard: list[tuple[int, BatchCostSummary]] = []
        self.unavailable: list[int] = []
        self.missing: set[int] = set()

    def add(self, shard_id: int, summary: BatchCostSummary) -> None:
        self.per_shard.append((shard_id, summary))

    def shard_dark(self, shard: Shard) -> None:
        self.unavailable.append(shard.shard_id)

    def finish(self, requests: int, failovers: int) -> ClusterCostSummary:
        seconds = [s.seconds for _, s in self.per_shard]
        return ClusterCostSummary(
            requests=requests,
            serial_seconds=sum(seconds),
            elapsed_seconds=max(seconds, default=0.0),
            seeks=sum(s.seeks for _, s in self.per_shard),
            bytes_read=sum(s.bytes_read for _, s in self.per_shard),
            failovers=failovers,
            shards_queried=len(self.per_shard),
            shards_unavailable=tuple(self.unavailable),
            missing_days=frozenset(self.missing),
            per_shard=tuple(self.per_shard),
        )


def _merge_scans(parts: list[ScanResult], dark_days: set[int]) -> ScanResult:
    """Merge per-shard scan answers for one request.

    Shards partition the *value* space, so every shard contributes to
    every day: a day any shard lost (degraded or dark) stays missing in
    the merged answer even when other shards covered it — their postings
    for that day are present, but the day's answer is incomplete.
    """
    entries: list = []
    covered: set[int] = set()
    missing: set[int] = set(dark_days)
    seconds = 0.0
    scanned = 0
    for part in parts:
        entries.extend(part.entries)
        covered |= part.covered_days
        missing |= part.missing_days
        seconds += part.seconds
        scanned += part.indexes_scanned
    return ScanResult(
        tuple(entries),
        seconds,
        scanned,
        frozenset(covered - missing),
        frozenset(missing),
    )


__all__ = [
    "ClusterBatchResult",
    "ClusterCoordinator",
    "ClusterCostSummary",
]
