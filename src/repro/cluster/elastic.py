"""Crash-consistent elastic resharding: online shard split/merge + autoscaling.

A cluster whose topology is frozen at construction cannot survive its own
workload: a hot partition range stays hot forever and a mis-sized cluster
never recovers.  This module makes the topology itself *evolve* — the
cluster-level analogue of the paper's wave transitions — while keeping
the window serving throughout:

* :class:`TopologyChangeEngine` — a journaled split/merge pipeline built
  from the proven PR 4/5 primitives.  A **split** of a hot shard plans
  the new partition boundary
  (:meth:`~repro.cluster.partitioner.RangePartitioner.split` /
  :meth:`~repro.cluster.partitioner.SlotHashPartitioner.split`),
  smart-copies the affected constituents onto freshly provisioned
  devices (:func:`~repro.cluster.rebalance.copy_index_to` with a
  child-ownership filter), replays the in-flight day plan through a
  :class:`~repro.core.recovery.JournaledExecutor` catch-up, and finally
  **atomically swaps** the coordinator's partitioner/routing table
  (:meth:`~repro.cluster.coordinator.ClusterCoordinator.swap_topology`).
  A **merge** of two cold neighbours runs the same pipeline with a
  merge-copy (:func:`~repro.cluster.rebalance.merge_indexes_to`).

* Every step is journaled in a :class:`~repro.core.recovery.ReshardJournal`.
  The swap record is the commit point: a
  :class:`~repro.errors.SimulatedCrash` (or kill, or space exhaustion) at
  any boundary **before** the swap aborts cleanly — partial children are
  dropped, orphan extents swept off the target devices, and the old
  topology keeps serving untouched (no dark shards from a failed split);
  a crash **at or after** the swap rolls forward (the new topology is
  already routing, recovery finishes the parents' cleanup).  The
  topology-chaos harness (:mod:`repro.bench.topology_chaos`) drives a
  fault into every step and byte-compares answers against a
  static-topology fault-free twin.

* :class:`Autoscaler` — watches per-shard routed requests, busy seconds,
  and under-replication each day and emits split/merge actions through
  the same engine, sequenced **one at a time** (Kimura et al.'s
  deploy-order concern applied to topology changes) with its proposals
  surfaced as an inspectable :class:`AutoscalerDecision` before anything
  executes (the semi-automatic tuning posture).

Elasticity is **off by default**: with ``ClusterConfig.elastic = None``
the simulation behaves bit-identically to PR 5 — the ``k=1, r=1``
serialized-driver equivalence suite rests on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..core.checkpoint import CHECKPOINT_VERSION, restore_scheme
from ..core.records import Record, RecordStore
from ..core.recovery import (
    JournaledExecutor,
    ReshardJournal,
    ReshardPhase,
    sweep_orphan_extents,
)
from ..core.wave import WaveIndex
from ..core.executor import PlanExecutor
from ..errors import (
    ClusterError,
    DeviceFailure,
    FaultError,
    OutOfSpaceError,
    SimulatedCrash,
    TransientIOError,
)
from ..storage.disk import SimulatedDisk
from ..storage.faults import RetryPolicy
from .partitioner import RangePartitioner, reshard_id_mapping
from .rebalance import copy_index_to, merge_indexes_to
from .selfheal import _disarm_crash, _discard_partial
from .shard import Shard, ShardReplica

#: Everything the reshard pipeline absorbs into an abort/roll-forward.
#: ``OutOfSpaceError`` is a :class:`~repro.errors.StorageError` sibling
#: of ``FaultError``, not a subclass — it must be listed explicitly.
_RESHARD_FAULTS = (FaultError, OutOfSpaceError, SimulatedCrash)

#: Device-level faults swallowed by best-effort cleanup paths.
_CLEANUP_FAULTS = (FaultError, OutOfSpaceError)

if TYPE_CHECKING:
    from .sim import ClusterSimulation


@dataclass(frozen=True)
class ElasticConfig:
    """Switchboard for elastic resharding and the autoscaler.

    Args:
        autoscale: Watch per-shard load each day and queue split/merge
            actions automatically.  With ``False`` the engine only runs
            actions requested explicitly
            (:meth:`~repro.cluster.sim.ClusterSimulation.request_split` /
            ``request_merge``).
        split_load_factor: A shard whose busy-seconds exceed this factor
            times the mean proposes a split.
        merge_load_factor: An adjacent pair whose *combined* busy-seconds
            fall below this factor times the mean proposes a merge.
        min_shards: Never merge below this shard count.
        max_shards: Never split above this shard count.
        cooldown_days: Days to wait after an applied action before
            proposing another (bounds churn; actions already run one at
            a time regardless).
        spare_budget_per_day: Optional cap on fresh spare devices
            provisioned per day, shared between replica rebuilds and
            resharding — the contention the self-heal interplay tests
            pin down.  ``None`` (default) is unlimited, preserving the
            PR 5 healing behaviour exactly.
    """

    autoscale: bool = True
    split_load_factor: float = 2.0
    merge_load_factor: float = 0.4
    min_shards: int = 2
    max_shards: int = 8
    cooldown_days: int = 1
    spare_budget_per_day: int | None = None

    def __post_init__(self) -> None:
        if self.split_load_factor <= 1.0:
            raise ClusterError(
                f"split_load_factor must be > 1, got {self.split_load_factor}"
            )
        if not 0.0 < self.merge_load_factor < 1.0:
            raise ClusterError(
                f"merge_load_factor must be in (0, 1), "
                f"got {self.merge_load_factor}"
            )
        if self.min_shards < 1:
            raise ClusterError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ClusterError(
                f"max_shards ({self.max_shards}) must be >= "
                f"min_shards ({self.min_shards})"
            )
        if self.cooldown_days < 0:
            raise ClusterError(
                f"cooldown_days must be >= 0, got {self.cooldown_days}"
            )
        if (
            self.spare_budget_per_day is not None
            and self.spare_budget_per_day < 0
        ):
            raise ClusterError(
                f"spare_budget_per_day must be >= 0, "
                f"got {self.spare_budget_per_day}"
            )


class ReshardAborted(ClusterError):
    """A topology change could not complete; the old topology still serves.

    Carries ``reason`` (``"no-spare"``, ``"under-replicated"``,
    ``"dark-source"``, ``"no-split-key"``, ``"crash"``, ``"flaky"``,
    ``"space"``, ``"device-failure"``) so day stats can say why.  The
    simulation keeps the action queued and retries on the next day.
    """

    def __init__(self, message: str, *, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class ScaleAction:
    """One proposed topology change (the autoscaler's unit of work)."""

    kind: str  # "split" | "merge"
    shard_id: int
    split_key: Any = None
    reason: str = ""

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly description (for day stats / reports)."""
        return {
            "kind": self.kind,
            "shard_id": self.shard_id,
            "split_key": None if self.split_key is None else str(self.split_key),
            "reason": self.reason,
        }


@dataclass(frozen=True)
class AutoscalerDecision:
    """What the autoscaler saw and decided on one day — the inspectable
    plan surfaced *before* anything executes."""

    day: int
    proposed: tuple[ScaleAction, ...]
    queued: ScaleAction | None
    deferred_reason: str | None

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly description."""
        return {
            "day": self.day,
            "proposed": [a.describe() for a in self.proposed],
            "queued": None if self.queued is None else self.queued.describe(),
            "deferred_reason": self.deferred_reason,
        }


@dataclass(frozen=True)
class ReshardStep:
    """One boundary of the reshard pipeline, exposed to the step hook.

    The topology-chaos harness counts steps on a fault-free dry run and
    then arms exactly one fault (crash / device kill / space exhaustion)
    per enumerated step; ``devices`` lists the devices the step is about
    to touch, target first.
    """

    name: str
    ordinal: int
    devices: tuple[SimulatedDisk, ...] = ()


@dataclass(frozen=True)
class ReshardReport:
    """Outcome of one completed topology change."""

    kind: str
    day: int
    source_shards: tuple[int, ...]
    child_shards: tuple[int, ...]
    n_shards_after: int
    split_key: Any
    indexes_copied: int
    bytes_copied: int
    copy_seconds: float
    catchup_seconds: float
    crash_recoveries: int
    topology_version: int
    makespan_seconds: float


class Autoscaler:
    """Per-day load watcher emitting split/merge proposals.

    Policy (deliberately simple and fully deterministic):

    1. An under-replicated shard defers everything — restoring
       redundancy (the healer's job) outranks rebalancing load, and the
       deterministic ordering is what keeps the healer and the engine
       from fighting over spares.
    2. Within ``cooldown_days`` of the last applied action, observe only.
    3. Otherwise, if the hottest shard's busy-seconds exceed
       ``split_load_factor x`` the mean (and it saw real traffic, and
       ``k < max_shards``), propose splitting it.
    4. Otherwise, if the coldest adjacent pair's *combined* busy-seconds
       fall below ``merge_load_factor x`` the mean (and
       ``k > min_shards``), propose merging the pair.

    Proposals are returned as an :class:`AutoscalerDecision`; the
    simulation queues at most the first one (one in-flight topology
    change at a time, Kimura-style) and records the whole decision in
    the day's stats.
    """

    def __init__(self, config: ElasticConfig) -> None:
        self.config = config
        self.decisions: list[AutoscalerDecision] = []

    def propose(
        self,
        *,
        day: int,
        busy_seconds: list[float],
        requests: list[int],
        under_replicated: bool,
        last_action_day: int | None,
    ) -> AutoscalerDecision:
        """Evaluate one day's per-shard load; return the decision."""
        cfg = self.config
        decision = self._decide(
            day=day,
            busy_seconds=busy_seconds,
            requests=requests,
            under_replicated=under_replicated,
            last_action_day=last_action_day,
        )
        self.decisions.append(decision)
        return decision

    def _decide(
        self,
        *,
        day: int,
        busy_seconds: list[float],
        requests: list[int],
        under_replicated: bool,
        last_action_day: int | None,
    ) -> AutoscalerDecision:
        cfg = self.config
        k = len(busy_seconds)
        if under_replicated:
            return AutoscalerDecision(day, (), None, "under-replicated")
        if (
            last_action_day is not None
            and day < last_action_day + cfg.cooldown_days
        ):
            return AutoscalerDecision(day, (), None, "cooldown")
        total = sum(busy_seconds)
        if total <= 0.0 or k == 0:
            return AutoscalerDecision(day, (), None, "no-load")
        mean = total / k
        hot = max(range(k), key=lambda s: (busy_seconds[s], -s))
        if (
            busy_seconds[hot] > cfg.split_load_factor * mean
            and requests[hot] > 0
            and k < cfg.max_shards
        ):
            action = ScaleAction(
                kind="split",
                shard_id=hot,
                reason=(
                    f"shard {hot} busy {busy_seconds[hot]:.3f}s > "
                    f"{cfg.split_load_factor}x mean {mean:.3f}s"
                ),
            )
            return AutoscalerDecision(day, (action,), action, None)
        if k > cfg.min_shards:
            cold = min(
                range(k - 1),
                key=lambda s: (busy_seconds[s] + busy_seconds[s + 1], s),
            )
            combined = busy_seconds[cold] + busy_seconds[cold + 1]
            if combined < cfg.merge_load_factor * mean:
                action = ScaleAction(
                    kind="merge",
                    shard_id=cold,
                    reason=(
                        f"shards {cold}+{cold + 1} combined busy "
                        f"{combined:.3f}s < {cfg.merge_load_factor}x "
                        f"mean {mean:.3f}s"
                    ),
                )
                return AutoscalerDecision(day, (action,), action, None)
        return AutoscalerDecision(day, (), None, None)


class TopologyChangeEngine:
    """Journaled online split/merge over a running :class:`ClusterSimulation`.

    One engine per simulation.  :meth:`execute` runs one
    :class:`ScaleAction` at the start of a day — before the day's plans
    are drawn — and either commits the new topology (children caught up
    to the day, coordinator swapped, parents cleaned up and their
    devices drained) or raises :class:`ReshardAborted` with the old
    topology fully intact.

    ``on_step`` is the chaos hook: called with a :class:`ReshardStep` at
    every pipeline boundary, it may raise
    :class:`~repro.errors.SimulatedCrash` or arm device faults; the
    engine classifies whatever escapes and resolves it per the journal's
    commit point.  ``journal_sink`` mirrors the executor's journal sink
    (a stand-in for durable journal storage); every journal is also kept
    on :attr:`journals`.
    """

    def __init__(self, sim: "ClusterSimulation") -> None:
        self.sim = sim
        self.on_step: Callable[[ReshardStep], None] | None = None
        self.journal_sink: Callable[[ReshardJournal], None] | None = None
        self.journals: list[ReshardJournal] = []
        self._ordinal = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _journal(self, journal: ReshardJournal) -> None:
        if self.journal_sink is not None:
            self.journal_sink(journal)

    def _step(self, name: str, devices: tuple[SimulatedDisk, ...] = ()) -> None:
        """Fire the step hook at one pipeline boundary."""
        step = ReshardStep(name=name, ordinal=self._ordinal, devices=devices)
        self._ordinal += 1
        if self.on_step is not None:
            self.on_step(step)

    @property
    def retry(self) -> RetryPolicy:
        monitor = self.sim._monitor
        return monitor.retry if monitor is not None else RetryPolicy()

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------

    def execute(self, action: ScaleAction, *, day: int) -> ReshardReport:
        """Run one topology change for ``day``; commit or abort cleanly."""
        self._ordinal = 0
        if action.kind == "split":
            return self._split(action.shard_id, day=day, split_key=action.split_key)
        if action.kind == "merge":
            return self._merge(action.shard_id, day=day)
        raise ClusterError(f"unknown scale action kind {action.kind!r}")

    # ------------------------------------------------------------------
    # Shared pipeline pieces
    # ------------------------------------------------------------------

    def _elastic_partitioner(self):
        part = self.sim.partitioner
        if not hasattr(part, "split") or not hasattr(part, "merge_with_next"):
            raise ClusterError(
                f"partitioner {part!r} does not support topology changes; "
                f"use kind 'slot-hash' or 'range'"
            )
        return part

    def _choose_split_key(self, parent: Shard, part, shard_id: int) -> Any:
        """Pick the median owned key strictly inside the shard's range."""
        if not isinstance(part, RangePartitioner):
            return None  # slot-hash splits deterministically, no key
        splits = part.split_points
        lo = splits[shard_id - 1] if shard_id > 0 else None
        hi = splits[shard_id] if shard_id < len(splits) else None
        values: set[Any] = set()
        for day in parent.store.days:
            for record in parent.store.batch(day).records:
                values.update(record.values)
        candidates = sorted(
            v
            for v in values
            if (lo is None or v > lo) and (hi is None or v < hi)
        )
        if not candidates:
            raise ReshardAborted(
                f"shard {shard_id} has no key strictly inside its range "
                f"(single-value or empty range) — cannot split",
                reason="no-split-key",
            )
        return candidates[len(candidates) // 2]

    def _route_store(
        self, stores: list[RecordStore], partitioner, child_ids: tuple[int, ...]
    ) -> dict[int, RecordStore]:
        """Re-partition the parents' records among the child shard ids.

        Same value-subset / proportional-``nbytes`` rule as
        :func:`~repro.cluster.partitioner.partition_store`; the child
        partitioner only ever routes a parent's keys to the child ids
        (the split/merge locality property), so nothing is lost.
        """
        out = {gid: RecordStore() for gid in child_ids}
        days = sorted({day for store in stores for day in store.days})
        for day in days:
            per: dict[int, list[Record]] = {gid: [] for gid in child_ids}
            for store in stores:
                if not store.has_day(day):
                    continue
                for record in store.batch(day).records:
                    owned: dict[int, list[Any]] = {}
                    for value in record.values:
                        gid = partitioner.shard_for(value)
                        if gid in per:
                            owned.setdefault(gid, []).append(value)
                    for gid, values in owned.items():
                        per[gid].append(
                            Record(
                                record_id=record.record_id,
                                day=record.day,
                                values=tuple(values),
                                nbytes=record.nbytes
                                * len(values)
                                // len(record.values),
                                info=record.info,
                            )
                        )
            for gid in child_ids:
                out[gid].add_records(day, per[gid])
        return out

    def _acquire_targets(
        self, journal: ReshardJournal, n: int
    ) -> list[tuple[int, SimulatedDisk]]:
        """Provision ``n`` fresh devices through the shared spare pool."""
        sim = self.sim
        spares = sim.spares.acquire(n)
        if spares is None:
            journal.advance(ReshardPhase.ABORTED)
            self._journal(journal)
            sim.obs.counter("cluster.elastic.no_spare").inc()
            raise ReshardAborted(
                f"spare budget exhausted: needed {n} device(s)",
                reason="no-spare",
            )
        targets = [(sim.array.add_device(s), s) for s in spares]
        journal.target_devices = [i for i, _ in targets]
        return targets

    def _copy_with_retry(
        self,
        source_indexes,
        target: SimulatedDisk,
        name: str,
        *,
        keep: Callable[[Any], bool] | None,
        scratch_wave: WaveIndex,
    ):
        """One constituent copy (split filter or merge union) with the
        cluster retry policy for escaped transients."""
        retry = self.retry
        attempts = 0
        while True:
            try:
                if len(source_indexes) == 1:
                    return copy_index_to(
                        source_indexes[0], target, name=name, keep=keep
                    )
                return merge_indexes_to(source_indexes, target, name=name)
            except TransientIOError:
                attempts += 1
                if attempts >= retry.max_attempts:
                    raise
                target.advance(retry.delay_before_retry(attempts))
                monitor = self.sim._monitor
                if monitor is not None:
                    monitor.note_retry(attempts)
                sweep_orphan_extents(scratch_wave)

    def _abort(
        self,
        journal: ReshardJournal,
        *,
        reason: str,
        message: str,
        child_waves: list[WaveIndex],
        donors: list[ShardReplica],
        targets: list[tuple[int, SimulatedDisk]],
        cause: BaseException | None = None,
    ) -> ReshardAborted:
        """Discard all partial child state; leave the old topology intact.

        The reverse of commit: disarm any surviving crash points (the
        reshard 'process' is dead), drop every binding the children
        accumulated, and mark-and-sweep the target devices so no orphan
        extents outlive the attempt.  The parents were never mutated —
        copies only *read* them — so the old topology serves on,
        unchanged.  The provisioned devices stay in the array as retired
        members (same convention as aborted rebuilds); a retry
        provisions fresh ones.
        """
        devices = [d for _, d in targets] + [r.device for r in donors]
        _disarm_crash(*devices)
        for wave in child_waves:
            _discard_partial(wave)
        if donors:
            try:
                sweep_orphan_extents(
                    donors[0].wave, extra_disks=tuple(d for _, d in targets)
                )
            except _CLEANUP_FAULTS:
                pass
        if not journal.terminal:
            journal.advance(ReshardPhase.ABORTED)
            self._journal(journal)
        self.sim.obs.counter("cluster.elastic.aborted").inc()
        error = ReshardAborted(
            f"{journal.kind} of shard(s) {journal.source_shards} aborted: "
            f"{message}",
            reason=reason,
        )
        if cause is not None:
            error.__cause__ = cause
        return error

    @staticmethod
    def _classify(exc: BaseException) -> tuple[str, str]:
        """Map an escaped fault to an abort reason."""
        if isinstance(exc, SimulatedCrash):
            return "crash", str(exc)
        if isinstance(exc, OutOfSpaceError):
            return "space", str(exc)
        if isinstance(exc, DeviceFailure):
            return "device-failure", str(exc)
        if isinstance(exc, TransientIOError):
            return "flaky", str(exc)
        raise exc  # not a fault: bookkeeping bug, propagate loudly

    def _clone_scheme(self, parent: Shard):
        """Clone the parent's planner pre-planning (planning mutates it)."""
        return restore_scheme(
            {"version": CHECKPOINT_VERSION, "scheme": parent.scheme.get_state()}
        )

    def _cleanup_parents(
        self, parents: list[Shard], journal: ReshardJournal
    ) -> None:
        """Drop the parents' indexes and drain their devices (idempotent)."""
        sim = self.sim
        for parent in parents:
            for replica in parent.replicas:
                for name in list(replica.wave.bindings):
                    index = replica.wave.unbind(name)
                    try:
                        index.drop()
                    except _CLEANUP_FAULTS:
                        pass
                try:
                    sweep_orphan_extents(replica.wave)
                except _CLEANUP_FAULTS:
                    pass
                if not sim.array.is_drained(replica.device_index):
                    sim.array.drain_device(replica.device_index)
                    sim.obs.counter("cluster.elastic.devices_drained").inc()

    def _commit_swap(
        self,
        *,
        kind: str,
        shard_id: int,
        new_partitioner,
        children: list[Shard],
        journal: ReshardJournal,
    ) -> tuple[int, dict[int, int]]:
        """Install the new shard list + routing table atomically."""
        sim = self.sim
        old = sim.shards
        mapping = reshard_id_mapping(kind, shard_id, len(old))
        removed = 2 if kind == "merge" else 1
        new_shards = old[:shard_id] + children + old[shard_id + removed:]
        for new_id, shard in enumerate(new_shards):
            shard.shard_id = new_id
            for replica in shard.replicas:
                replica.shard_id = new_id
        if sim._monitor is not None:
            sim._monitor.remap_shards(mapping)
        sim.shards = new_shards
        sim.partitioner = new_partitioner
        version = sim.coordinator.swap_topology(new_shards, new_partitioner)
        sim._on_topology_changed(mapping)
        return version, mapping

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def _split(
        self, shard_id: int, *, day: int, split_key: Any = None
    ) -> ReshardReport:
        sim = self.sim
        if not 0 <= shard_id < len(sim.shards):
            raise ClusterError(f"no shard {shard_id}")
        part = self._elastic_partitioner()
        parent = sim.shards[shard_id]
        donor = parent.primary
        if donor is None:
            raise ReshardAborted(
                f"shard {shard_id} is dark — nothing to copy from",
                reason="dark-source",
            )
        if split_key is None:
            split_key = self._choose_split_key(parent, part, shard_id)
        new_part = part.split(shard_id, key=split_key)
        journal = ReshardJournal(
            kind="split",
            day=day,
            source_shards=[shard_id],
            partitioner_before=part.describe(),
            partitioner_after=new_part.describe(),
            split_key=None if split_key is None else str(split_key),
        )
        self.journals.append(journal)
        self._journal(journal)
        try:
            self._step("plan", devices=(donor.device,))
        except _RESHARD_FAULTS as exc:
            reason, message = self._classify(exc)
            raise self._abort(
                journal, reason=reason, message=message,
                child_waves=[], donors=[donor], targets=[], cause=exc,
            ) from None

        child_ids = (shard_id, shard_id + 1)
        child_stores = self._route_store([parent.store], new_part, child_ids)
        repl = sim.config.replication
        targets = self._acquire_targets(journal, 2 * repl)

        return self._build_children(
            journal=journal,
            day=day,
            parents=[parent],
            donors=[donor],
            child_specs=[
                {
                    "gid": gid,
                    "store": child_stores[gid],
                    "sources": lambda name, g=gid: [donor.wave.bindings[name]],
                    "keep": (lambda v, g=gid: new_part.shard_for(v) == g),
                    "targets": targets[i * repl: (i + 1) * repl],
                }
                for i, gid in enumerate(child_ids)
            ],
            new_partitioner=new_part,
            kind="split",
            shard_id=shard_id,
            split_key=split_key,
        )

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def _merge(self, shard_id: int, *, day: int) -> ReshardReport:
        sim = self.sim
        if not 0 <= shard_id < len(sim.shards) - 1:
            raise ClusterError(
                f"shard {shard_id} has no next neighbour to merge with"
            )
        part = self._elastic_partitioner()
        left, right = sim.shards[shard_id], sim.shards[shard_id + 1]
        donor_left, donor_right = left.primary, right.primary
        if donor_left is None or donor_right is None:
            raise ReshardAborted(
                f"merge of shards {shard_id}+{shard_id + 1}: a source "
                f"shard is dark",
                reason="dark-source",
            )
        new_part = part.merge_with_next(shard_id)
        journal = ReshardJournal(
            kind="merge",
            day=day,
            source_shards=[shard_id, shard_id + 1],
            partitioner_before=part.describe(),
            partitioner_after=new_part.describe(),
        )
        self.journals.append(journal)
        self._journal(journal)
        try:
            self._step(
                "plan", devices=(donor_left.device, donor_right.device)
            )
        except _RESHARD_FAULTS as exc:
            reason, message = self._classify(exc)
            raise self._abort(
                journal, reason=reason, message=message,
                child_waves=[], donors=[donor_left, donor_right],
                targets=[], cause=exc,
            ) from None

        child_stores = self._route_store(
            [left.store, right.store], new_part, (shard_id,)
        )
        repl = sim.config.replication
        targets = self._acquire_targets(journal, repl)

        def sources(name: str):
            out = [donor_left.wave.bindings[name]]
            other = donor_right.wave.bindings.get(name)
            if other is not None:
                out.append(other)
            return out

        return self._build_children(
            journal=journal,
            day=day,
            parents=[left, right],
            donors=[donor_left, donor_right],
            child_specs=[
                {
                    "gid": shard_id,
                    "store": child_stores[shard_id],
                    "sources": sources,
                    "keep": None,
                    "targets": targets,
                }
            ],
            new_partitioner=new_part,
            kind="merge",
            shard_id=shard_id,
            split_key=None,
        )

    # ------------------------------------------------------------------
    # The shared copy → catch-up → swap → cleanup pipeline
    # ------------------------------------------------------------------

    def _build_children(
        self,
        *,
        journal: ReshardJournal,
        day: int,
        parents: list[Shard],
        donors: list[ShardReplica],
        child_specs: list[dict],
        new_partitioner,
        kind: str,
        shard_id: int,
        split_key: Any,
    ) -> ReshardReport:
        sim = self.sim
        all_targets = [t for spec in child_specs for t in spec["targets"]]
        donor_before = sum(d.device.clock for d in donors)
        target_before = {i: dev.clock for i, dev in all_targets}
        child_waves: list[WaveIndex] = []
        children: list[Shard] = []
        bytes_copied = 0
        indexes_copied = 0
        catchup_seconds = 0.0
        crash_recoveries = 0

        def abort(exc: BaseException) -> ReshardAborted:
            reason, message = self._classify(exc)
            return self._abort(
                journal,
                reason=reason,
                message=message,
                child_waves=child_waves,
                donors=donors,
                targets=all_targets,
                cause=exc,
            )

        # -- copy phase -------------------------------------------------
        journal.advance(ReshardPhase.COPYING)
        self._journal(journal)
        try:
            binding_names = list(donors[0].wave.bindings)
            child_replicas: list[list[ShardReplica]] = []
            child_schemes = []
            for spec in child_specs:
                gid = spec["gid"]
                scheme = self._clone_scheme(parents[0])
                child_schemes.append(scheme)
                replicas: list[ShardReplica] = []
                for ri, (device_index, device) in enumerate(spec["targets"]):
                    wave = WaveIndex(
                        device,
                        donors[0].wave.config,
                        len(donors[0].wave.constituents),
                    )
                    child_waves.append(wave)
                    for name in binding_names:
                        self._step(
                            f"copy:s{gid}/r{ri}:{name}",
                            devices=(device, *[d.device for d in donors]),
                        )
                        clone = self._copy_with_retry(
                            spec["sources"](name),
                            device,
                            name,
                            keep=spec["keep"],
                            scratch_wave=wave,
                        )
                        wave.bind(name, clone)
                        bytes_copied += clone.allocated_bytes
                        indexes_copied += 1
                        journal.copies_done += 1
                        self._journal(journal)
                    replicas.append(
                        ShardReplica(
                            shard_id=gid,
                            replica_id=ri,
                            device_index=device_index,
                            device=device,
                            wave=wave,
                            executor=PlanExecutor(
                                wave, spec["store"], sim.technique
                            ),
                            caught_up_day=day,
                        )
                    )
                child_replicas.append(replicas)
            journal.advance(ReshardPhase.COPIED)
            self._journal(journal)

            # -- catch-up phase -----------------------------------------
            journal.advance(ReshardPhase.CATCHUP)
            self._journal(journal)
            catchup_before = {i: dev.clock for i, dev in all_targets}
            for spec, scheme, replicas in zip(
                child_specs, child_schemes, child_replicas
            ):
                plan = list(scheme.transition_ops(day))
                state = scheme.get_state()
                for replica in replicas:
                    self._step(
                        f"catchup:s{spec['gid']}/r{replica.replica_id}",
                        devices=(replica.device,),
                    )
                    executor = JournaledExecutor(
                        replica.wave, spec["store"], sim.technique
                    )
                    executor.execute_journaled(
                        plan, day=day, scheme_state=state
                    )
                    journal.catchup.append(executor.journal.to_dict())
                    self._journal(journal)
                    replica.executor = PlanExecutor(
                        replica.wave, spec["store"], sim.technique
                    )
            catchup_seconds = sum(
                dev.clock - catchup_before[i] for i, dev in all_targets
            )

            # -- swap (the commit point) --------------------------------
            self._step("swap")
        except _RESHARD_FAULTS as exc:
            raise abort(exc) from None

        journal.advance(ReshardPhase.SWAPPED)
        self._journal(journal)
        for spec, scheme, replicas in zip(
            child_specs, child_schemes, child_replicas
        ):
            shard = Shard(spec["gid"], scheme, spec["store"], replicas)
            children.append(shard)
            sim._preplanned[id(scheme)] = []  # day's plan already applied
        version, _mapping = self._commit_swap(
            kind=kind,
            shard_id=shard_id,
            new_partitioner=new_partitioner,
            children=children,
            journal=journal,
        )

        # -- cleanup (roll-forward territory) ---------------------------
        try:
            self._step(
                "cleanup",
                devices=tuple(d.device for d in donors),
            )
            self._cleanup_parents(parents, journal)
        except _RESHARD_FAULTS:
            # Past the commit point every fault rolls *forward*: disarm
            # the dead process's crash points and finish the idempotent
            # cleanup under the already-swapped topology.
            _disarm_crash(*[d.device for d in donors])
            crash_recoveries += 1
            sim.obs.counter("cluster.elastic.crash_recoveries").inc()
            self._cleanup_parents(parents, journal)
        journal.advance(ReshardPhase.DONE)
        self._journal(journal)

        # -- timeline + report ------------------------------------------
        donor_read = sum(d.device.clock for d in donors) - donor_before
        copy_seconds = 0.0
        makespan = 0.0
        for shard in children:
            for replica in shard.replicas:
                delta = replica.device.clock - target_before[replica.device_index]
                span = donor_read + delta
                replica.maintenance_start = 0.0
                replica.maintenance_end = span
                makespan = max(makespan, span)
        copy_seconds = (
            sum(dev.clock - target_before[i] for i, dev in all_targets)
            - catchup_seconds
            + donor_read
        )
        counter = "cluster.elastic.splits" if kind == "split" else "cluster.elastic.merges"
        sim.obs.counter(counter).inc()
        sim.obs.counter("cluster.elastic.bytes_copied").inc(bytes_copied)
        return ReshardReport(
            kind=kind,
            day=day,
            source_shards=tuple(journal.source_shards),
            child_shards=tuple(s.shard_id for s in children),
            n_shards_after=len(sim.shards),
            split_key=split_key,
            indexes_copied=indexes_copied,
            bytes_copied=bytes_copied,
            copy_seconds=copy_seconds,
            catchup_seconds=catchup_seconds,
            crash_recoveries=crash_recoveries,
            topology_version=version,
            makespan_seconds=makespan,
        )


__all__ = [
    "Autoscaler",
    "AutoscalerDecision",
    "ElasticConfig",
    "ReshardAborted",
    "ReshardReport",
    "ReshardStep",
    "ScaleAction",
    "TopologyChangeEngine",
]
