"""Shards and shard replicas: one wave index per key-space slice.

A :class:`Shard` owns one slice of the partitioned key space: its own
record store (the slice's daily batches), its own scheme instance, and
``r`` :class:`ShardReplica`\\ s — identical wave indexes on distinct
devices of the cluster's :class:`~repro.storage.array.DiskArray`.  Every
replica executes the same maintenance plan against its own device, so
any replica can serve the shard's queries; the first non-failed replica
is the *primary*, and the coordinator fails over down the replica list
when a device dies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..core.executor import ExecutionReport, PlanExecutor
from ..core.ops import AddOp, DeleteOp, Op, UpdateOp
from ..core.records import RecordStore
from ..core.recovery import restore_op_target, sweep_orphan_extents
from ..core.schemes.base import WaveScheme
from ..core.wave import WaveIndex
from ..errors import DeviceFailure, FaultError, TransientIOError
from ..index.updates import UpdateTechnique
from ..sim.scheduler import OpInterval
from ..storage.disk import SimulatedDisk

if TYPE_CHECKING:
    from .selfheal import ReplicaHealthMonitor


@dataclass
class ShardReplica:
    """One copy of a shard's wave index on one device of the array.

    ``intervals`` / ``maintenance_start`` / ``maintenance_end`` describe
    the replica's most recent maintenance run on the cluster's shared
    day timeline (absolute seconds); the serving pass consults them to
    decide whether a query waits, degrades, or is served from the
    pre-transition state.
    """

    shard_id: int
    replica_id: int
    device_index: int
    device: SimulatedDisk
    wave: WaveIndex
    executor: PlanExecutor
    failed: bool = False
    intervals: list[OpInterval] = field(default_factory=list)
    maintenance_start: float = 0.0
    maintenance_end: float = 0.0
    #: Day a rebuilt replica already incorporated via catch-up replay
    #: (its rebuild included the day's plan); the maintenance pass skips
    #: it for that day.  ``None`` for replicas built the normal way.
    caught_up_day: int | None = None
    #: A replica the advisor retuned carries its *own* scheme instance —
    #: a divergent (scheme, n) design of the same shard data — and runs
    #: that scheme's plans instead of the shard-level plan.  ``None``
    #: (every replica built the normal way) means the shard's scheme.
    scheme: WaveScheme | None = None

    @property
    def name(self) -> str:
        """Return a display name (``s0/r1``)."""
        return f"s{self.shard_id}/r{self.replica_id}"

    def _op_blocks_queries(self, op: Op) -> bool:
        """Mirror the scheduler's rule: only in-place mutation of a live
        constituent makes its target unreadable mid-op."""
        if self.executor.technique is not UpdateTechnique.IN_PLACE:
            return False
        return isinstance(
            op, (AddOp, DeleteOp, UpdateOp)
        ) and self.wave.is_constituent(op.target)

    def run_maintenance(
        self,
        plan: list[Op],
        start: float,
        *,
        monitor: "ReplicaHealthMonitor | None" = None,
    ) -> ExecutionReport:
        """Execute ``plan`` on this replica's device, starting at ``start``.

        Op for op this performs exactly what
        :meth:`~repro.core.executor.PlanExecutor.execute` performs (reset
        high-water, run ops in order, read the peak afterwards) — that
        identity is what makes the ``k=1`` cluster bit-identical to the
        serialized driver — while additionally laying each op on the
        cluster timeline as an :class:`~repro.sim.scheduler.OpInterval`.

        Without a ``monitor``, any :class:`~repro.errors.FaultError` (the
        device died mid-plan) marks the replica failed and stops its
        plan; surviving replicas of the shard keep the shard serving.
        With one, faults are classified: escaped transients are retried
        under the monitor's retry policy (the op's partially-mutated
        target is first restored from the record store so the re-run is
        idempotent, with repair I/O and backoff charged to this device's
        clock); exhaustion or a :class:`~repro.errors.DeviceFailure`
        retires the replica through the monitor.
        """
        report = ExecutionReport()
        self.intervals = []
        self.maintenance_start = start
        cursor = start
        self.device.reset_high_water()
        for op in plan:
            before = self.device.clock
            blocking = self._op_blocks_queries(op)
            if monitor is None:
                try:
                    self.executor.execute_op(op, report)
                except FaultError:
                    self.failed = True
                    break
            else:
                if not self._execute_op_healed(
                    op, report, monitor, now=monitor.now + cursor
                ):
                    break
            duration = self.device.clock - before
            self.intervals.append(
                OpInterval(
                    op=op,
                    target=getattr(op, "target", ""),
                    devices=(self.device_index,),
                    start=cursor,
                    end=cursor + duration,
                    blocking=blocking,
                )
            )
            cursor += duration
        report.peak_bytes = self.device.high_water_bytes
        self.maintenance_end = cursor
        return report

    def _execute_op_healed(
        self,
        op: Op,
        report: ExecutionReport,
        monitor: "ReplicaHealthMonitor",
        *,
        now: float,
    ) -> bool:
        """Run one op with cluster-level retry; return ``False`` if the
        replica was retired.

        Maintenance ops are not idempotent, so a blind re-run after a
        mid-op transient would double-apply: each retry first sweeps any
        orphaned partial work and restores the op's target from the
        record store over its pre-op day-set (the same repair rule
        journal recovery uses), making the re-run safe.
        """
        retry = monitor.retry
        pre_days = self.wave.days_by_name()
        attempts = 0
        while True:
            try:
                self.executor.execute_op(op, report)
                monitor.record_success(self)
                return True
            except TransientIOError:
                attempts += 1
                monitor.on_transient(self, now=now)
                if attempts >= retry.max_attempts:
                    monitor.retire(self, reason="flaky-maintenance")
                    return False
                self.device.advance(retry.delay_before_retry(attempts))
                monitor.note_retry(attempts)
                try:
                    sweep_orphan_extents(self.wave)
                    restore_op_target(
                        self.wave, self.executor.store, op, pre_days
                    )
                except FaultError:
                    monitor.retire(self, reason="repair-failed")
                    return False
            except DeviceFailure:
                monitor.retire(self, reason="device-failure")
                return False


class Shard:
    """One key-space slice: its store, its scheme, and its replicas."""

    def __init__(
        self,
        shard_id: int,
        scheme: WaveScheme,
        store: RecordStore,
        replicas: list[ShardReplica],
    ) -> None:
        if not replicas:
            raise ValueError(f"shard {shard_id} needs at least one replica")
        self.shard_id = shard_id
        self.scheme = scheme
        self.store = store
        self.replicas = replicas

    def alive_replicas(self) -> list[ShardReplica]:
        """Return the replicas still able to serve, primary first."""
        return [r for r in self.replicas if not r.failed]

    @property
    def primary(self) -> ShardReplica | None:
        """Return the serving replica (``None`` when the shard is dark)."""
        for replica in self.replicas:
            if not replica.failed:
                return replica
        return None

    @property
    def available(self) -> bool:
        """Return ``True`` while at least one replica can serve."""
        return self.primary is not None

    def window_days(self, t1: int, t2: int) -> set[int]:
        """Return the days in ``[t1, t2]`` this shard's window covers.

        Computed from the replicas' in-memory time-set metadata, which
        survives device failure — a dark shard can still *enumerate* the
        days its answers would have covered, which is what turns a dead
        device into a correct partial result instead of a wrong one.
        """
        days: set[int] = set()
        for replica in self.replicas:
            for index in replica.wave.live_constituents():
                days.update(d for d in index.time_set if t1 <= d <= t2)
            if days:
                break
        return days
