"""Shards and shard replicas: one wave index per key-space slice.

A :class:`Shard` owns one slice of the partitioned key space: its own
record store (the slice's daily batches), its own scheme instance, and
``r`` :class:`ShardReplica`\\ s — identical wave indexes on distinct
devices of the cluster's :class:`~repro.storage.array.DiskArray`.  Every
replica executes the same maintenance plan against its own device, so
any replica can serve the shard's queries; the first non-failed replica
is the *primary*, and the coordinator fails over down the replica list
when a device dies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.executor import ExecutionReport, PlanExecutor
from ..core.ops import AddOp, DeleteOp, Op, UpdateOp
from ..core.records import RecordStore
from ..core.schemes.base import WaveScheme
from ..core.wave import WaveIndex
from ..errors import FaultError
from ..index.updates import UpdateTechnique
from ..sim.scheduler import OpInterval
from ..storage.disk import SimulatedDisk


@dataclass
class ShardReplica:
    """One copy of a shard's wave index on one device of the array.

    ``intervals`` / ``maintenance_start`` / ``maintenance_end`` describe
    the replica's most recent maintenance run on the cluster's shared
    day timeline (absolute seconds); the serving pass consults them to
    decide whether a query waits, degrades, or is served from the
    pre-transition state.
    """

    shard_id: int
    replica_id: int
    device_index: int
    device: SimulatedDisk
    wave: WaveIndex
    executor: PlanExecutor
    failed: bool = False
    intervals: list[OpInterval] = field(default_factory=list)
    maintenance_start: float = 0.0
    maintenance_end: float = 0.0

    @property
    def name(self) -> str:
        """Return a display name (``s0/r1``)."""
        return f"s{self.shard_id}/r{self.replica_id}"

    def _op_blocks_queries(self, op: Op) -> bool:
        """Mirror the scheduler's rule: only in-place mutation of a live
        constituent makes its target unreadable mid-op."""
        if self.executor.technique is not UpdateTechnique.IN_PLACE:
            return False
        return isinstance(
            op, (AddOp, DeleteOp, UpdateOp)
        ) and self.wave.is_constituent(op.target)

    def run_maintenance(
        self, plan: list[Op], start: float
    ) -> ExecutionReport:
        """Execute ``plan`` on this replica's device, starting at ``start``.

        Op for op this performs exactly what
        :meth:`~repro.core.executor.PlanExecutor.execute` performs (reset
        high-water, run ops in order, read the peak afterwards) — that
        identity is what makes the ``k=1`` cluster bit-identical to the
        serialized driver — while additionally laying each op on the
        cluster timeline as an :class:`~repro.sim.scheduler.OpInterval`.

        A :class:`~repro.errors.FaultError` (the device died mid-plan)
        marks the replica failed and stops its plan; surviving replicas
        of the shard keep the shard serving.
        """
        report = ExecutionReport()
        self.intervals = []
        self.maintenance_start = start
        cursor = start
        self.device.reset_high_water()
        for op in plan:
            before = self.device.clock
            blocking = self._op_blocks_queries(op)
            try:
                self.executor.execute_op(op, report)
            except FaultError:
                self.failed = True
                break
            duration = self.device.clock - before
            self.intervals.append(
                OpInterval(
                    op=op,
                    target=getattr(op, "target", ""),
                    devices=(self.device_index,),
                    start=cursor,
                    end=cursor + duration,
                    blocking=blocking,
                )
            )
            cursor += duration
        report.peak_bytes = self.device.high_water_bytes
        self.maintenance_end = cursor
        return report


class Shard:
    """One key-space slice: its store, its scheme, and its replicas."""

    def __init__(
        self,
        shard_id: int,
        scheme: WaveScheme,
        store: RecordStore,
        replicas: list[ShardReplica],
    ) -> None:
        if not replicas:
            raise ValueError(f"shard {shard_id} needs at least one replica")
        self.shard_id = shard_id
        self.scheme = scheme
        self.store = store
        self.replicas = replicas

    def alive_replicas(self) -> list[ShardReplica]:
        """Return the replicas still able to serve, primary first."""
        return [r for r in self.replicas if not r.failed]

    @property
    def primary(self) -> ShardReplica | None:
        """Return the serving replica (``None`` when the shard is dark)."""
        for replica in self.replicas:
            if not replica.failed:
                return replica
        return None

    @property
    def available(self) -> bool:
        """Return ``True`` while at least one replica can serve."""
        return self.primary is not None

    def window_days(self, t1: int, t2: int) -> set[int]:
        """Return the days in ``[t1, t2]`` this shard's window covers.

        Computed from the replicas' in-memory time-set metadata, which
        survives device failure — a dark shard can still *enumerate* the
        days its answers would have covered, which is what turns a dead
        device into a correct partial result instead of a wrong one.
        """
        days: set[int] = set()
        for replica in self.replicas:
            for index in replica.wave.live_constituents():
                days.update(d for d in index.time_set if t1 <= d <= t2)
            if days:
                break
        return days
