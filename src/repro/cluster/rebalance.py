"""Shard rebalancing: move a shard's window between devices.

A cluster that lives long enough needs to move shards — a device fills
up, runs hot, or is being drained.  The move is a *packed-shadow-style*
copy (the paper's ``SMCP`` applied across devices): the source index is
streamed off its device, written to the target as one contiguous packed
extent, and swapped into the wave index binding — at which point the old
extents are freed, which is exactly the moment the source device's page
cache must drop any pages it still holds for them (covered by the
rebalance tests).

All I/O is charged to the simulated cost clocks: one sequential read of
the source's allocated bytes on the source device, one write of the
packed result on the target device — so rebalances show up in the same
per-device accounting as maintenance and serving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.recovery import sweep_orphan_extents
from ..errors import ClusterError, FaultError
from ..index.bucket import Bucket
from ..index.constituent import ConstituentIndex
from ..index.updates import _ordered
from ..storage.disk import SimulatedDisk
from .shard import ShardReplica


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of moving one replica's indexes to another device."""

    shard_id: int
    replica_id: int
    from_device: int
    to_device: int
    indexes_moved: int
    bytes_moved: int
    source_read_seconds: float
    target_write_seconds: float

    @property
    def seconds(self) -> float:
        """Return the move's total charged device time."""
        return self.source_read_seconds + self.target_write_seconds


def _lay_out_packed(
    clone: ConstituentIndex,
    target: SimulatedDisk,
    grouped: dict[Any, list],
    time_set: set[int],
) -> ConstituentIndex:
    """Write ``grouped`` onto ``target`` as one packed extent of ``clone``."""
    entry_size = clone.config.entry_size_bytes
    total_entries = sum(len(entries) for entries in grouped.values())
    if total_entries == 0:
        # Nothing to lay out (an empty, fully-expired, or fully-filtered
        # index): the copy is just the metadata.
        clone.time_set = set(time_set)
        clone.packed = False
        return clone
    total_bytes = total_entries * entry_size
    extent = target.allocate(total_bytes)
    buckets = []
    offset = 0
    for value in _ordered(grouped):
        entries = grouped[value]
        buckets.append(
            Bucket(
                value=value,
                entries=entries,
                extent=extent,
                shared=True,
                capacity_entries=len(entries),
                offset_in_extent=offset,
            )
        )
        offset += len(entries) * entry_size
    target.write(extent, total_bytes)
    clone._adopt_packed(extent, buckets, time_set)
    return clone


def copy_index_to(
    index: ConstituentIndex,
    target: SimulatedDisk,
    *,
    name: str | None = None,
    keep: Callable[[Any], bool] | None = None,
) -> ConstituentIndex:
    """Smart-copy ``index`` onto ``target``; return the new index.

    Cross-device variant of :func:`repro.index.updates.packed_rewrite`
    with no inserts or deletes: the source is read sequentially on its
    own device, and the copy lands on ``target`` as a single packed
    extent (bucket slack is squeezed out in flight, like any smart
    copy).  The source index is left untouched — the caller swaps it out
    and drops it, preserving the shadow ordering every scheme relies on.

    ``keep`` optionally filters by search value: only buckets whose value
    satisfies the predicate land on the target (the elastic engine's
    shard split passes the child's ownership test here).  The full source
    is still read — a split streams the parent once per child — but only
    the kept bytes are written.  The clone keeps the source's *complete*
    ``time_set`` either way: a shard covers every day of the window, even
    days where it happens to own no postings.
    """
    source = index.disk

    source.stream_read(index.allocated_bytes)
    clone = ConstituentIndex(target, index.config, name=name or index.name)
    grouped = {
        b.value: list(b.entries)
        for b in index.buckets()
        if keep is None or keep(b.value)
    }
    return _lay_out_packed(clone, target, grouped, set(index.time_set))


def merge_indexes_to(
    indexes: Sequence[ConstituentIndex],
    target: SimulatedDisk,
    *,
    name: str,
) -> ConstituentIndex:
    """Merge-copy several source indexes into one packed index on ``target``.

    The shard-merge counterpart of :func:`copy_index_to`: each source is
    read sequentially on its own device, buckets for the same value are
    concatenated in source order, and the union lands on ``target`` as a
    single packed extent.  Sources are disjoint by construction (each
    shard owns a disjoint key slice), so concatenation is a true merge.
    The merged ``time_set`` is the union of the sources'.
    """
    if not indexes:
        raise ClusterError("merge_indexes_to needs >= 1 source index")
    config = indexes[0].config
    clone = ConstituentIndex(target, config, name=name)
    grouped: dict[Any, list] = {}
    time_set: set[int] = set()
    for index in indexes:
        index.disk.stream_read(index.allocated_bytes)
        for bucket in index.buckets():
            grouped.setdefault(bucket.value, []).extend(bucket.entries)
        time_set.update(index.time_set)
    return _lay_out_packed(clone, target, grouped, time_set)


def move_replica(
    replica: ShardReplica,
    target: SimulatedDisk,
    target_device_index: int,
) -> RebalanceReport:
    """Move every binding of ``replica`` onto ``target``.

    Two phases, so the move is fault-safe: first every index is
    smart-copied to the target device; only once *all* copies have landed
    are they swapped into the wave index (swap-then-drop, so the old
    version serves until the new one is bound; the drop frees the source
    extents and invalidates any cached pages of them).  A fault anywhere
    in the copy phase leaves the source replica fully intact — the
    completed clones are dropped, any half-written extent of the
    interrupted copy is swept off the target, and the fault propagates.
    Afterwards the replica's wave index, executor placement, and device
    bookkeeping all point at the target, so future maintenance ops land
    there.
    """
    wave = replica.wave
    from_device = replica.device_index
    source_before = replica.device.clock
    target_before = target.clock
    clones: dict[str, ConstituentIndex] = {}
    try:
        for name in list(wave.bindings):
            clones[name] = copy_index_to(wave.bindings[name], target, name=name)
    except BaseException:
        for clone in clones.values():
            try:
                clone.drop()
            except FaultError:
                pass
        try:
            sweep_orphan_extents(wave, extra_disks=(target,))
        except FaultError:
            pass
        raise
    bytes_moved = 0
    moved = 0
    for name, clone in clones.items():
        bytes_moved += clone.allocated_bytes
        wave.bind(name, clone)
        moved += 1
    source_read = replica.device.clock - source_before
    target_write = target.clock - target_before
    wave.disk = target
    replica.device = target
    replica.device_index = target_device_index
    return RebalanceReport(
        shard_id=replica.shard_id,
        replica_id=replica.replica_id,
        from_device=from_device,
        to_device=target_device_index,
        indexes_moved=moved,
        bytes_moved=bytes_moved,
        source_read_seconds=source_read,
        target_write_seconds=target_write,
    )
