"""Sharded wave-index cluster: partitioned shards, scatter-gather
serving, staggered maintenance, and replica failover.

The paper scales one wave index in *time* (spread window maintenance
over ``n`` constituents); this package scales it in *space*: the key
space is split across ``k`` shards, each running its own wave index on
its own device of a :class:`~repro.storage.array.DiskArray`, optionally
replicated ``r`` ways.  The topology itself can evolve online — shard
splits and merges under traffic via :mod:`repro.cluster.elastic`.  See
:mod:`repro.cluster.sim` for the timeline model and ``DESIGN.md`` for
the architecture discussion.
"""

from .coordinator import (
    ClusterBatchResult,
    ClusterCoordinator,
    ClusterCostSummary,
)
from .elastic import (
    Autoscaler,
    AutoscalerDecision,
    ElasticConfig,
    ReshardAborted,
    ReshardReport,
    ReshardStep,
    ScaleAction,
    TopologyChangeEngine,
)
from .partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    SlotHashPartitioner,
    make_partitioner,
    partition_store,
    reshard_id_mapping,
)
from .rebalance import (
    RebalanceReport,
    copy_index_to,
    merge_indexes_to,
    move_replica,
)
from .selfheal import (
    BreakerConfig,
    BreakerState,
    RebuildAborted,
    RebuildReport,
    ReplicaHealth,
    ReplicaHealthMonitor,
    SelfHealConfig,
    rebuild_replica,
)
from .shard import Shard, ShardReplica
from .sim import (
    MAINTENANCE_POLICIES,
    ClusterConfig,
    ClusterDayStats,
    ClusterResult,
    ClusterSimulation,
    SparePool,
    run_cluster_simulation,
)

__all__ = [
    "MAINTENANCE_POLICIES",
    "Autoscaler",
    "AutoscalerDecision",
    "BreakerConfig",
    "BreakerState",
    "ClusterBatchResult",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterCostSummary",
    "ClusterDayStats",
    "ClusterResult",
    "ClusterSimulation",
    "ElasticConfig",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "RebalanceReport",
    "RebuildAborted",
    "RebuildReport",
    "ReplicaHealth",
    "ReplicaHealthMonitor",
    "ReshardAborted",
    "ReshardReport",
    "ReshardStep",
    "ScaleAction",
    "SelfHealConfig",
    "Shard",
    "ShardReplica",
    "SlotHashPartitioner",
    "SparePool",
    "TopologyChangeEngine",
    "copy_index_to",
    "make_partitioner",
    "merge_indexes_to",
    "move_replica",
    "partition_store",
    "rebuild_replica",
    "reshard_id_mapping",
    "run_cluster_simulation",
]
