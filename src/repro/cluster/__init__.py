"""Sharded wave-index cluster: partitioned shards, scatter-gather
serving, staggered maintenance, and replica failover.

The paper scales one wave index in *time* (spread window maintenance
over ``n`` constituents); this package scales it in *space*: the key
space is split across ``k`` shards, each running its own wave index on
its own device of a :class:`~repro.storage.array.DiskArray`, optionally
replicated ``r`` ways.  See :mod:`repro.cluster.sim` for the timeline
model and ``DESIGN.md`` for the architecture discussion.
"""

from .coordinator import (
    ClusterBatchResult,
    ClusterCoordinator,
    ClusterCostSummary,
)
from .partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
    partition_store,
)
from .rebalance import RebalanceReport, copy_index_to, move_replica
from .selfheal import (
    BreakerConfig,
    BreakerState,
    RebuildAborted,
    RebuildReport,
    ReplicaHealth,
    ReplicaHealthMonitor,
    SelfHealConfig,
    rebuild_replica,
)
from .shard import Shard, ShardReplica
from .sim import (
    MAINTENANCE_POLICIES,
    ClusterConfig,
    ClusterDayStats,
    ClusterResult,
    ClusterSimulation,
    run_cluster_simulation,
)

__all__ = [
    "MAINTENANCE_POLICIES",
    "BreakerConfig",
    "BreakerState",
    "ClusterBatchResult",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterCostSummary",
    "ClusterDayStats",
    "ClusterResult",
    "ClusterSimulation",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "RebalanceReport",
    "RebuildAborted",
    "RebuildReport",
    "ReplicaHealth",
    "ReplicaHealthMonitor",
    "SelfHealConfig",
    "Shard",
    "ShardReplica",
    "copy_index_to",
    "make_partitioner",
    "move_replica",
    "partition_store",
    "rebuild_replica",
    "run_cluster_simulation",
]
