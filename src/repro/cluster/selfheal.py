"""Cluster self-healing: health monitoring, circuit breakers, re-replication.

PR 4's cluster honors the paper's "index always available" requirement
only until the first permanent replica loss: after failover the shard
runs unreplicated forever, and a second fault turns it dark.  This
module closes that gap with three pieces:

* :class:`ReplicaHealthMonitor` — classifies faults per replica.
  :class:`~repro.errors.TransientIOError`\\ s that escape the device's own
  retry loop are retried at the *cluster* level under the same
  :class:`~repro.storage.faults.RetryPolicy`, with backoff charged to the
  replica's simulated clock; a per-replica **circuit breaker**
  (live → suspect → open after ``failure_threshold`` consecutive
  failures → half-open probe after a clocked cooldown → live/retired)
  stops the router from hammering a flaky device; and
  :class:`~repro.errors.DeviceFailure` retires the replica outright.

* :func:`rebuild_replica` — the re-replication pipeline.  When a shard
  drops below its replication target the simulation provisions a fresh
  spare device, smart-copies the donor's bindings onto it with
  :func:`~repro.cluster.rebalance.copy_index_to` (packed extents, all
  I/O charged to both devices' clocks), then **catches up** the day's
  arrivals by running the day plan through a
  :class:`~repro.core.recovery.JournaledExecutor` — so a simulated crash
  mid-rebuild rolls forward (orphan sweep + journal recovery) instead of
  corrupting the copy, and a dead or undersized spare aborts cleanly,
  leaving the donor untouched for a retry on the next day.

* The configuration surface (:class:`SelfHealConfig` /
  :class:`BreakerConfig`) hung off
  :class:`~repro.cluster.sim.ClusterConfig`.  Self-healing is **off by
  default**: with no config the cluster behaves bit-identically to PR 4
  (the ``k=1`` serialized-driver equivalence suite rests on that).

Healing activity is published as ``cluster.heal.*`` counters on the
simulation's metrics registry — breaker opens, cluster-level retries,
retired replicas, rebuilds and their bytes — which is what the chaos
soak harness (:mod:`repro.bench.chaos`) asserts against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..core.ops import Op
from ..core.recovery import (
    JournaledExecutor,
    recover_transition,
    sweep_orphan_extents,
)
from ..core.wave import WaveIndex
from ..errors import (
    ClusterError,
    DeviceFailure,
    FaultError,
    OutOfSpaceError,
    SimulatedCrash,
    TransientIOError,
)
from ..index.updates import UpdateTechnique
from ..obs import MetricsRegistry
from ..storage.disk import SimulatedDisk
from ..storage.faults import RetryPolicy
from .rebalance import copy_index_to
from .shard import Shard, ShardReplica


class BreakerState(enum.Enum):
    """Per-replica circuit-breaker states (see DESIGN.md for the diagram)."""

    LIVE = "live"
    SUSPECT = "suspect"
    OPEN = "open"
    HALF_OPEN = "half_open"
    RETIRED = "retired"


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning.

    Args:
        failure_threshold: Consecutive failures before the breaker opens.
        cooldown_s: Simulated seconds an open breaker refuses traffic
            before allowing one half-open probe.
        cooldown_multiplier: Escalation factor applied when a half-open
            probe fails (the breaker reopens with a longer cooldown).
        max_cooldown_s: Cap on the escalated cooldown.
    """

    failure_threshold: int = 3
    cooldown_s: float = 0.5
    cooldown_multiplier: float = 2.0
    max_cooldown_s: float = 8.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ClusterError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0.0:
            raise ClusterError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.cooldown_multiplier < 1.0:
            raise ClusterError(
                f"cooldown_multiplier must be >= 1, "
                f"got {self.cooldown_multiplier}"
            )
        if self.max_cooldown_s < self.cooldown_s:
            raise ClusterError(
                f"max_cooldown_s ({self.max_cooldown_s}) must be >= "
                f"cooldown_s ({self.cooldown_s})"
            )


@dataclass(frozen=True)
class SelfHealConfig:
    """Switchboard for the cluster's self-healing behaviour.

    Args:
        breaker: Per-replica circuit-breaker tuning.
        retry: Cluster-level retry/backoff policy for transients that
            escape the device's own retry loop.  Backoff is charged to
            the replica's device clock, same as device-level retries.
        rebuild: Re-replicate under-replicated shards automatically
            (one rebuild per shard per day).
        target_replication: Replicas per shard the healer restores to;
            defaults to the cluster's configured ``replication``.
        spare_factory: Optional ``ordinal -> device`` factory for rebuild
            targets (the chaos harness's hook for arming faults on
            spares).  Defaults to the simulation's device factory.
    """

    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    rebuild: bool = True
    target_replication: int | None = None
    spare_factory: Callable[[int], SimulatedDisk] | None = None

    def __post_init__(self) -> None:
        if (
            self.target_replication is not None
            and self.target_replication < 1
        ):
            raise ClusterError(
                f"target_replication must be >= 1, "
                f"got {self.target_replication}"
            )


class RebuildAborted(ClusterError):
    """A replica rebuild could not complete; the donor is untouched.

    Carries ``reason`` (``"device-failure"``, ``"space"``, ``"flaky"``,
    ``"flaky-catchup"``) so the simulation's day stats can say why.  The
    healer retries with a fresh spare on the next day.
    """

    def __init__(self, message: str, *, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass
class ReplicaHealth:
    """One replica's breaker state and failure bookkeeping."""

    state: BreakerState = BreakerState.LIVE
    consecutive_failures: int = 0
    opened_at: float = 0.0
    cooldown_s: float = 0.0
    opens: int = 0
    transients: int = 0

    def reopen_at(self) -> float:
        """Return the simulated time an open breaker half-opens."""
        return self.opened_at + self.cooldown_s


@dataclass(frozen=True)
class RebuildReport:
    """Outcome of one replica rebuild (copy + catch-up replay)."""

    shard_id: int
    replica_id: int
    donor_replica_id: int
    device_index: int
    day: int
    indexes_copied: int
    bytes_copied: int
    copy_read_seconds: float
    copy_write_seconds: float
    catchup_seconds: float
    crash_recoveries: int
    start: float
    copy_read_end: float
    end: float

    @property
    def makespan_seconds(self) -> float:
        """Return the rebuild's span on the cluster timeline."""
        return self.end - self.start


class ReplicaHealthMonitor:
    """Classifies per-replica faults and drives the circuit breakers.

    One monitor per :class:`~repro.cluster.sim.ClusterSimulation`, keyed
    by ``(shard_id, replica_id)`` so rebuilt replicas (which get fresh
    replica ids) start with clean health.  ``now`` is the cluster clock
    base — the simulation advances it by each day's makespan, so breaker
    cooldowns are measured on the same simulated timeline as everything
    else.
    """

    def __init__(
        self, config: SelfHealConfig, obs: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self.retry = config.retry
        self.breaker = config.breaker
        self.obs = obs or MetricsRegistry()
        self.now = 0.0
        #: High-water mark of cluster-level retries charged to any
        #: single operation — the chaos harness asserts it never exceeds
        #: ``retry.max_attempts - 1``.
        self.max_op_retries = 0
        self._health: dict[tuple[int, int], ReplicaHealth] = {}

    def health_of(self, replica: ShardReplica) -> ReplicaHealth:
        """Return (creating if needed) the replica's health record."""
        key = (replica.shard_id, replica.replica_id)
        health = self._health.get(key)
        if health is None:
            health = ReplicaHealth(cooldown_s=self.breaker.cooldown_s)
            self._health[key] = health
        return health

    # ------------------------------------------------------------------
    # Fault classification
    # ------------------------------------------------------------------

    def on_transient(self, replica: ShardReplica, *, now: float) -> None:
        """Record one escaped transient against the replica's breaker."""
        health = self.health_of(replica)
        health.transients += 1
        self.obs.counter("cluster.heal.transients").inc()
        if health.state is BreakerState.RETIRED:
            return
        if health.state is BreakerState.HALF_OPEN:
            # The probe failed: reopen with an escalated cooldown.
            health.cooldown_s = min(
                health.cooldown_s * self.breaker.cooldown_multiplier,
                self.breaker.max_cooldown_s,
            )
            self._open(health, now)
            return
        health.consecutive_failures += 1
        if health.consecutive_failures >= self.breaker.failure_threshold:
            self._open(health, now)
        else:
            health.state = BreakerState.SUSPECT

    def _open(self, health: ReplicaHealth, now: float) -> None:
        health.state = BreakerState.OPEN
        health.opened_at = now
        health.opens += 1
        health.consecutive_failures = 0
        self.obs.counter("cluster.heal.breaker_opens").inc()

    def record_success(self, replica: ShardReplica) -> None:
        """A call on the replica succeeded: close suspect/half-open state."""
        health = self.health_of(replica)
        if health.state is BreakerState.RETIRED:
            return
        if health.state is BreakerState.HALF_OPEN:
            health.cooldown_s = self.breaker.cooldown_s
            self.obs.counter("cluster.heal.breaker_closes").inc()
        health.state = BreakerState.LIVE
        health.consecutive_failures = 0

    def retire(self, replica: ShardReplica, *, reason: str) -> None:
        """Permanently remove the replica from service."""
        health = self.health_of(replica)
        if replica.failed and health.state is BreakerState.RETIRED:
            return
        replica.failed = True
        health.state = BreakerState.RETIRED
        self.obs.counter("cluster.heal.retired").inc()
        self.obs.counter(f"cluster.heal.retired.{reason}").inc()

    def note_retry(self, attempt: int) -> None:
        """Record one cluster-level retry (the ``attempt``-th for its op)."""
        self.obs.counter("cluster.heal.retries").inc()
        self.max_op_retries = max(self.max_op_retries, attempt)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def serving_replica(
        self,
        shard: Shard,
        *,
        now: float,
        exclude: set[int] = frozenset(),
    ) -> tuple[ShardReplica | None, float]:
        """Pick the replica a request should run on.

        Returns ``(replica, wait_seconds)``.  Replicas whose breakers are
        closed (live/suspect) or already half-open are preferred, in
        replica order; an open breaker past its cooldown half-opens and
        serves as the probe.  When every candidate's breaker is open, the
        request *waits out* the soonest cooldown (the wait is returned so
        the caller charges it to request latency, not to any device) and
        probes that replica.  ``None`` when no replica can serve —
        everything failed or is in ``exclude`` (retry-exhausted for this
        request).
        """
        best: ShardReplica | None = None
        best_ready = float("inf")
        for replica in shard.replicas:
            if replica.failed or replica.replica_id in exclude:
                continue
            health = self.health_of(replica)
            if health.state in (
                BreakerState.LIVE,
                BreakerState.SUSPECT,
                BreakerState.HALF_OPEN,
            ):
                return replica, 0.0
            if health.state is BreakerState.OPEN:
                ready = health.reopen_at()
                if ready <= now:
                    health.state = BreakerState.HALF_OPEN
                    self.obs.counter("cluster.heal.breaker_half_opens").inc()
                    return replica, 0.0
                if ready < best_ready:
                    best, best_ready = replica, ready
        if best is not None:
            health = self.health_of(best)
            health.state = BreakerState.HALF_OPEN
            self.obs.counter("cluster.heal.breaker_half_opens").inc()
            return best, best_ready - now
        return None, 0.0

    def breaker_state(self, replica: ShardReplica) -> BreakerState:
        """Return the replica's current breaker state."""
        return self.health_of(replica).state

    def remap_shards(self, mapping: dict[int, int]) -> None:
        """Renumber health records after a topology change.

        ``mapping`` is old-to-new shard ids for the shards that *survive*
        a split or merge (:func:`~repro.cluster.partitioner.reshard_id_mapping`);
        their breaker state — open cooldowns, retirement, failure counts —
        must follow them across the renumbering.  Records for shards
        absent from the mapping (the replaced parents) are dropped;
        the reshard's children start with fresh health, same as rebuilt
        replicas.
        """
        remapped: dict[tuple[int, int], ReplicaHealth] = {}
        for (shard_id, replica_id), health in self._health.items():
            new_shard = mapping.get(shard_id)
            if new_shard is not None:
                remapped[(new_shard, replica_id)] = health
        self._health = remapped


# ----------------------------------------------------------------------
# Re-replication pipeline
# ----------------------------------------------------------------------


def _disarm_crash(*devices: SimulatedDisk) -> None:
    """Disarm any crash points on the devices (the process 'restarted')."""
    for device in devices:
        injector = getattr(device, "injector", None)
        if injector is not None:
            injector.disarm()


def _discard_partial(wave: WaveIndex) -> None:
    """Drop everything a failed rebuild left on the spare."""
    for name in list(wave.bindings):
        index = wave.unbind(name)
        try:
            index.drop()
        except FaultError:
            pass
    try:
        sweep_orphan_extents(wave)
    except FaultError:
        pass


def rebuild_replica(
    shard: Shard,
    donor: ShardReplica,
    spare: SimulatedDisk,
    device_index: int,
    *,
    plan: list[Op],
    day: int,
    technique: UpdateTechnique,
    monitor: ReplicaHealthMonitor,
    start: float = 0.0,
) -> tuple[ShardReplica, RebuildReport]:
    """Rebuild one replica of ``shard`` from ``donor`` onto ``spare``.

    Two phases, both on the simulated cost clocks:

    1. **Copy** — every binding of the donor's wave index is smart-copied
       onto the spare (:func:`~repro.cluster.rebalance.copy_index_to`:
       sequential read on the donor's device, one packed extent written
       on the spare).  The donor's pre-transition state is what gets
       copied — the donor has not run today's plan yet.
    2. **Catch-up** — the new replica replays today's plan through a
       :class:`~repro.core.recovery.JournaledExecutor`, bringing it to
       the same post-transition state every other replica reaches via
       normal maintenance.

    Fault handling: a :class:`~repro.errors.SimulatedCrash` in either
    phase rolls forward (orphan sweep + re-copy, or journal recovery);
    escaped transients are retried under the monitor's
    :class:`~repro.storage.faults.RetryPolicy` with backoff charged to
    the spare's clock; a dead donor is retired and a dead or undersized
    spare aborts the rebuild — in every abort case the donor is left
    intact and partial work on the spare is swept, so the healer can try
    again with a fresh spare next day.

    Raises:
        RebuildAborted: The rebuild could not complete.
    """
    retry = monitor.retry
    new_wave = WaveIndex(
        spare, donor.wave.config, len(donor.wave.constituents)
    )
    donor_before = donor.device.clock
    spare_before = spare.clock
    crash_recoveries = 0
    bytes_copied = 0
    copied = 0

    def abort(reason: str, message: str) -> RebuildAborted:
        _discard_partial(new_wave)
        return RebuildAborted(
            f"rebuild of shard {shard.shard_id} aborted: {message}",
            reason=reason,
        )

    for name in list(donor.wave.bindings):
        index = donor.wave.bindings[name]
        attempts = 0
        while True:
            try:
                clone = copy_index_to(index, spare, name=name)
                new_wave.bind(name, clone)
                bytes_copied += clone.allocated_bytes
                copied += 1
                break
            except SimulatedCrash:
                # Disk state survives a process crash; roll the copy
                # forward: sweep the half-written clone, re-copy.
                _disarm_crash(spare, donor.device)
                sweep_orphan_extents(new_wave)
                crash_recoveries += 1
                monitor.obs.counter(
                    "cluster.heal.rebuild_crash_recoveries"
                ).inc()
            except TransientIOError as exc:
                attempts += 1
                if attempts >= retry.max_attempts:
                    raise abort("flaky", str(exc)) from exc
                spare.advance(retry.delay_before_retry(attempts))
                monitor.note_retry(attempts)
                sweep_orphan_extents(new_wave)
            except OutOfSpaceError as exc:
                raise abort("space", str(exc)) from exc
            except DeviceFailure as exc:
                donor_injector = getattr(donor.device, "injector", None)
                if donor_injector is not None and donor_injector.device_failed:
                    monitor.retire(donor, reason="died-during-rebuild")
                raise abort("device-failure", str(exc)) from exc

    copy_read = donor.device.clock - donor_before
    copy_write = spare.clock - spare_before

    executor = JournaledExecutor(new_wave, shard.store, technique)
    try:
        executor.execute_journaled(plan, day=day)
    except SimulatedCrash:
        _disarm_crash(spare)
        crash_recoveries += 1
        monitor.obs.counter("cluster.heal.rebuild_crash_recoveries").inc()
        try:
            recover_transition(
                executor.journal, new_wave, shard.store, technique
            )
        except FaultError as exc:
            raise abort("device-failure", str(exc)) from exc
    except TransientIOError as exc:
        raise abort("flaky-catchup", str(exc)) from exc
    except OutOfSpaceError as exc:
        raise abort("space", str(exc)) from exc
    except DeviceFailure as exc:
        raise abort("device-failure", str(exc)) from exc

    # The rebuild process exits here: any crash point armed against it
    # that never fired dies with it instead of ambushing the replica's
    # first normal maintenance pass.
    _disarm_crash(spare)
    catchup = spare.clock - spare_before - copy_write
    end = start + copy_read + (spare.clock - spare_before)
    replica_id = max(r.replica_id for r in shard.replicas) + 1
    replica = ShardReplica(
        shard_id=shard.shard_id,
        replica_id=replica_id,
        device_index=device_index,
        device=spare,
        wave=new_wave,
        executor=executor,
        caught_up_day=day,
        maintenance_start=start,
        maintenance_end=end,
    )
    report = RebuildReport(
        shard_id=shard.shard_id,
        replica_id=replica_id,
        donor_replica_id=donor.replica_id,
        device_index=device_index,
        day=day,
        indexes_copied=copied,
        bytes_copied=bytes_copied,
        copy_read_seconds=copy_read,
        copy_write_seconds=copy_write,
        catchup_seconds=catchup,
        crash_recoveries=crash_recoveries,
        start=start,
        copy_read_end=start + copy_read,
        end=end,
    )
    return replica, report


__all__ = [
    "BreakerConfig",
    "BreakerState",
    "RebuildAborted",
    "RebuildReport",
    "ReplicaHealth",
    "ReplicaHealthMonitor",
    "SelfHealConfig",
    "rebuild_replica",
]
