"""Setup shim.

Kept alongside pyproject.toml so ``pip install -e .`` works on offline
machines whose setuptools predates PEP-660 editable wheels.
"""
from setuptools import setup

setup()
