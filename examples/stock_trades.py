#!/usr/bin/env python3
"""Stock trades: a 7-day hard window with aggregates and crash recovery.

The introduction's financial example: trades of the past week must be
queryable by ticker, with analysts running aggregate sweeps.  Uses RATA* —
hard windows without deletion code — plus the aggregate-scan helpers and a
checkpoint/restore cycle simulating an overnight crash.

Run:  python examples/stock_trades.py
"""

from repro import (
    IndexConfig,
    PlanExecutor,
    RataStarScheme,
    SimulatedDisk,
    UpdateTechnique,
    WaveIndex,
)
from repro.core import aggregates, restore, take_checkpoint
from repro.workloads import TradeGenerator, TradesConfig
from repro.core.records import RecordStore

WINDOW, N = 7, 3
CRASH_DAY, LAST_DAY = 11, 14


def main() -> None:
    config = TradesConfig(trades_per_day=300, seed=2024)
    store = RecordStore()
    TradeGenerator(config).populate(store, 1, LAST_DAY)

    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = RataStarScheme(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, CRASH_DAY + 1):
        executor.execute(scheme.transition_ops(day))
    print(f"Maintained days {CRASH_DAY - WINDOW + 1}..{CRASH_DAY} "
          f"with RATA* (hard window, no deletes)")

    # --- Analyst queries before the crash.
    lo, hi = CRASH_DAY - WINDOW + 1, CRASH_DAY
    volume = aggregates.total(wave, lo, hi)
    print(f"\nWeekly notional volume: ${volume.value:,.0f} "
          f"({volume.entries_scanned} trades, "
          f"{volume.seconds * 1e3:.1f} ms scan)")
    biggest = aggregates.maximum(wave, lo, hi)
    print(f"Largest single trade:   ${biggest.value:,.0f}")
    by_symbol, _ = aggregates.group_totals(wave, lo, hi)
    top3 = sorted(by_symbol.items(), key=lambda kv: -kv[1])[:3]
    print("Top tickers by volume: "
          + ", ".join(f"{s} ${v:,.0f}" for s, v in top3))
    probe = wave.timed_index_probe(top3[0][0], lo, hi)
    print(f"{top3[0][0]} trade count this week: {len(probe.entries)} "
          f"({probe.seconds * 1e3:.2f} ms probe)")

    # --- Overnight crash: checkpoint survives, indexes do not.
    checkpoint = take_checkpoint(scheme)
    print(f"\n-- crash after day {CRASH_DAY}; recovering from checkpoint --")
    new_disk = SimulatedDisk()
    scheme2, wave2 = restore(checkpoint, store, new_disk, IndexConfig())
    executor2 = PlanExecutor(wave2, store, UpdateTechnique.SIMPLE_SHADOW)
    for day in range(CRASH_DAY + 1, LAST_DAY + 1):
        executor2.execute(scheme2.transition_ops(day))
    lo, hi = LAST_DAY - WINDOW + 1, LAST_DAY
    print(f"Recovered and rolled forward to day {LAST_DAY}; window "
          f"{lo}..{hi}, covered {sorted(wave2.covered_days())[:3]}..."
          f"{sorted(wave2.covered_days())[-1]}")

    volume2 = aggregates.total(wave2, lo, hi)
    direct = sum(
        r.info
        for day in range(lo, hi + 1)
        for r in store.batch(day).records
    )
    assert abs(volume2.value - direct) < 1e-6
    print(f"Post-recovery weekly volume: ${volume2.value:,.0f} "
          "(matches direct recomputation)")


if __name__ == "__main__":
    main()
