#!/usr/bin/env python3
"""SCAM: copy detection over a one-week window of Netnews articles.

Reproduces the paper's first case study end to end on the simulated
substrate: a week of Zipfian documents is maintained with REINDEX (n = 4,
the paper's recommendation), a "registration check" scans the newest day,
and a copy-detection query probes the window for a suspicious document's
words.  Finishes by asking the advisor what it would pick for the published
Table-12 parameters.

Run:  python examples/scam_copy_detection.py
"""

from repro import (
    IndexConfig,
    PlanExecutor,
    ReindexScheme,
    SCAM_PARAMETERS,
    SimulatedDisk,
    UpdateTechnique,
    WaveIndex,
    recommend,
)
from repro.workloads import NetnewsGenerator, TextWorkloadConfig

WINDOW, N = 7, 4
LAST_DAY = 12


def overlap_score(query_words, candidate_hits, total_words):
    """Fraction of the query document's words found for a candidate."""
    return candidate_hits / max(total_words, 1)


def main() -> None:
    config = TextWorkloadConfig(
        docs_per_day=60, words_per_doc=25, vocabulary=1200, seed=97
    )
    generator = NetnewsGenerator(config)
    from repro import RecordStore

    store = RecordStore()
    generator.populate(store, 1, LAST_DAY)

    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = ReindexScheme(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, LAST_DAY + 1):
        executor.execute(scheme.transition_ops(day))
    lo, hi = LAST_DAY - WINDOW + 1, LAST_DAY
    print(f"Indexed days {lo}..{hi} across {N} constituent indexes "
          f"({disk.live_bytes / 1e3:.1f} KB simulated)")

    # --- Copy detection: a "plagiarised" version of a day-10 article.
    original = store.batch(10).records[3]
    suspicious_words = original.values[: int(len(original.values) * 0.8)]
    print(f"\nQuerying {len(suspicious_words)} words of a suspicious document")
    hits: dict[int, int] = {}
    probe_seconds = 0.0
    for word in suspicious_words:
        result = wave.timed_index_probe(word, lo, hi)
        probe_seconds += result.seconds
        for rid in result.record_ids:
            hits[rid] = hits.get(rid, 0) + 1
    ranked = sorted(hits.items(), key=lambda kv: -kv[1])[:3]
    print(f"  simulated probe time: {probe_seconds * 1e3:.1f} ms")
    print("  top candidates (record id, matched words, overlap):")
    for rid, count in ranked:
        score = overlap_score(suspicious_words, count, len(suspicious_words))
        flag = "  <-- the original" if rid == original.record_id else ""
        print(f"    record {rid:5d}  {count:3d} words  {score:5.0%}{flag}")
    assert ranked[0][0] == original.record_id

    # --- Registration check: scan only the newest day's index.
    scan = wave.timed_segment_scan(hi, hi)
    print(f"\nRegistration-check scan of day {hi}: "
          f"{len(scan.entries)} postings in {scan.seconds * 1e3:.1f} ms "
          f"across {scan.indexes_scanned} index(es)")

    # --- What does the paper-scale model recommend?
    print("\nAdvisor on the published SCAM parameters (Table 12):")
    for rec in recommend(
        SCAM_PARAMETERS, candidate_n=(1, 2, 4, 7), max_candidates=3
    ):
        print(
            f"  {rec.scheme:<9} n={rec.n_indexes}  {rec.technique:<14} "
            f"work {rec.total_work_s:8,.0f} s/day   "
            f"transition {rec.transition_s:7,.0f} s"
        )


if __name__ == "__main__":
    main()
