#!/usr/bin/env python3
"""Non-uniform daily volumes: WATA*'s space overhead on a Usenet trace.

Daily Usenet volume swings 3-4x across the week (Figure 2), so index
*size* and index *length* diverge (Section 3.3).  This example runs WATA*
symbolically over the 200-day synthetic Jun-Dec 1997 trace, reports the
index-size ratio per n (Figure 11), checks Theorem 3's 2-competitiveness
against the true offline optimum, and shows the known-horizon online
algorithm beating WATA*'s guarantee when the max window size is known.

Run:  python examples/usenet_sliding_window.py
"""

from repro.casestudies.sizing import (
    figure11_ratios,
    hard_window_sizes,
    scheme_daily_sizes,
)
from repro.core import WataStarScheme
from repro.extensions import KnownHorizonOnlineWata, offline_optimal_plan
from repro.workloads import day_weights, june_december_1997_volume

WINDOW = 7


def main() -> None:
    volumes = june_december_1997_volume()
    weights = day_weights(volumes)
    print(f"Trace: {len(volumes)} days, {min(volumes):,}..{max(volumes):,} "
          "posts/day (synthetic Jun-Dec 1997)")

    eager_max = max(hard_window_sizes(weights, WINDOW, len(weights)))
    print(f"Hard-window max size: {eager_max:.2f} day-equivalents "
          "(what an eager scheme like REINDEX ever needs)\n")

    print("Figure 11 — WATA* index-size ratio (lazy max / eager max):")
    ratios = figure11_ratios(weights, window=WINDOW)
    for n, ratio in sorted(ratios.items()):
        bar = "#" * round(ratio * 20)
        print(f"  n={n}:  {ratio:5.3f}  {bar}")

    # Theorem 3: <= 2x the offline optimum (computed exactly for n = 2).
    n = 2
    scheme = WataStarScheme(WINDOW, n)
    lazy_max = max(scheme_daily_sizes(scheme, weights, len(weights)))
    opt = offline_optimal_plan(weights, WINDOW, n)
    print(f"\nTheorem 3 check (n={n}):")
    print(f"  WATA* max size     {lazy_max:7.2f}")
    print(f"  offline optimum    {opt.max_size:7.2f} "
          f"({len(opt.boundaries)} segments)")
    print(f"  competitive ratio  {lazy_max / opt.max_size:7.3f}  (bound: 2.0)")

    # Kleinberg-style online with known max window size M.
    m = eager_max
    for n in (2, 3, 5):
        online = KnownHorizonOnlineWata(WINDOW, n, m)
        for w in weights:
            online.feed(w)
        plan = online.finish()
        print(
            f"\nKnown-horizon online (n={n}): max size {plan.max_size:6.2f}, "
            f"guaranteed <= M*n/(n-1) = {online.competitive_bound():6.2f}"
        )


if __name__ == "__main__":
    main()
