#!/usr/bin/env python3
"""A Netnews search engine with a 35-day window (the paper's WSE study).

Shows the query-dominated regime: user keyword searches vastly outnumber
maintenance work, so the right design minimises per-query cost — DEL with a
single index, packed shadowing.  Runs a scaled-down live simulation with a
daily query stream, then prints the Figure-6 analysis at paper scale.

Run:  python examples/web_search_engine.py
"""

from repro import (
    DelScheme,
    QueryWorkload,
    UpdateTechnique,
    WSE_PARAMETERS,
    run_simulation,
)
from repro.casestudies import wse
from repro.sim import zipf_value_picker
from repro.workloads import TextWorkloadConfig, build_store

WINDOW, LAST_DAY = 14, 24  # scaled-down live run


def main() -> None:
    # --- Live mini-run: 14-day window, one index, daily user queries.
    store = build_store(
        LAST_DAY,
        TextWorkloadConfig(
            docs_per_day=40, words_per_doc=15, vocabulary=800, seed=7
        ),
    )
    result = run_simulation(
        lambda: DelScheme(WINDOW, 1),
        store,
        last_day=LAST_DAY,
        technique=UpdateTechnique.PACKED_SHADOW,
        queries=QueryWorkload(
            probes_per_day=200,  # two keyword probes per user query
            value_picker=zipf_value_picker(800),
            seed=3,
        ),
    )
    print(f"Live mini-run: DEL n=1, packed shadowing, W={WINDOW}")
    print(f"  avg transition  {result.avg_transition_seconds() * 1e3:8.2f} ms/day")
    print(f"  avg query time  "
          f"{sum(d.query_seconds for d in result.steady_days()) / len(result.steady_days()) * 1e3:8.2f} ms/day")
    print(f"  peak space      {result.max_peak_bytes() / 1e3:8.1f} KB")

    # --- Paper-scale analysis: Figure 6 and the recommendation.
    n_values = (1, 2, 5, 10, 35)
    curves = wse.figure6_work(n_values=n_values)
    print("\nFigure 6 at paper scale (seconds of total work per day):")
    print(f"  {'scheme':<10}" + "".join(f"{f'n={n}':>10}" for n in n_values))
    for scheme, ys in curves.items():
        cells = "".join(
            f"{'-' if y is None else format(y, ',.0f'):>10}" for y in ys
        )
        print(f"  {scheme:<10}{cells}")

    best_scheme = min(
        (
            (ys[i], scheme, n)
            for scheme, ys in curves.items()
            for i, n in enumerate(n_values)
            if ys[i] is not None
        ),
    )
    print(
        f"\nBest configuration: {best_scheme[1]} with n={best_scheme[2]} "
        f"({best_scheme[0]:,.0f} s/day) — the paper's recommendation "
        f"(DEL, n=1, packed shadowing)."
    )
    print(f"(Probe volume: {WSE_PARAMETERS.application.probe_num:,.0f} "
          "timed probes per day drives everything.)")


if __name__ == "__main__":
    main()
