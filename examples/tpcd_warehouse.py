#!/usr/bin/env python3
"""TPC-D: a warehouse wave index on LINEITEM.SUPPKEY with daily Q1.

Reproduces the paper's third case study at laptop scale: LINEITEM batches
arrive daily, a wave index on SUPPKEY is maintained with WATA* under simple
shadowing (the paper's legacy-system recommendation), and the Q1 Pricing
Summary Report runs as a TimedSegmentScan over the window — verified
against a direct computation.

Run:  python examples/tpcd_warehouse.py
"""

from repro import (
    IndexConfig,
    ContiguousPolicy,
    PlanExecutor,
    RecordStore,
    SimulatedDisk,
    TPCD_PARAMETERS,
    UpdateTechnique,
    WataStarScheme,
    WaveIndex,
    recommend,
)
from repro.workloads import (
    TpcdConfig,
    TpcdGenerator,
    q1_pricing_summary,
    q1_rows_equal,
)

WINDOW, N = 20, 4
LAST_DAY = 30


def main() -> None:
    config = TpcdConfig(rows_per_day=150, suppliers=50, seed=42)
    generator = TpcdGenerator(config)

    store = RecordStore()
    all_items = {}
    for day in range(1, LAST_DAY + 1):
        _, items = generator.generate_day(day)
        for item in items:
            all_items[item.orderkey * 10 + item.linenumber] = item
    # Regenerate deterministically for the indexable batches.
    TpcdGenerator(config).populate(store, 1, LAST_DAY)

    disk = SimulatedDisk()
    # Uniform SUPPKEYs: the paper calibrates CONTIGUOUS to g = 1.08.
    index_config = IndexConfig(contiguous=ContiguousPolicy(growth_factor=1.08))
    wave = WaveIndex(disk, index_config, N)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)

    scheme = WataStarScheme(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, LAST_DAY + 1):
        executor.execute(scheme.transition_ops(day))
    lo, hi = LAST_DAY - WINDOW + 1, LAST_DAY
    covered = sorted(wave.covered_days())
    print(f"WATA* soft window: days {covered[0]}..{covered[-1]} indexed "
          f"(required window {lo}..{hi}, length {wave.total_length_days})")

    # --- Q1 over the wave index: timed scan + aggregate.
    scan = wave.timed_segment_scan(lo, hi)
    scanned_items = [all_items[e.record_id] for e in scan.entries]
    via_index = q1_pricing_summary(scanned_items)
    direct = q1_pricing_summary(
        [i for i in all_items.values() if lo <= i.shipdate <= hi]
    )
    assert q1_rows_equal(via_index, direct)
    print(f"\nQ1 Pricing Summary (via {scan.indexes_scanned}-index scan, "
          f"{scan.seconds * 1e3:.1f} ms simulated):")
    print(f"  {'fl':<3}{'st':<3}{'sum_qty':>9}{'sum_base':>14}"
          f"{'sum_disc':>14}{'count':>7}")
    for row in via_index:
        print(
            f"  {row.returnflag:<3}{row.linestatus:<3}{row.sum_qty:>9,.0f}"
            f"{row.sum_base_price:>14,.0f}{row.sum_disc_price:>14,.0f}"
            f"{row.count_order:>7}"
        )

    # --- Supplier drill-down: a TimedIndexProbe.
    probe = wave.timed_index_probe(7, lo, hi)
    print(f"\nSupplier 7: {len(probe.entries)} line items in the window "
          f"({probe.seconds * 1e3:.2f} ms across {probe.indexes_probed} indexes)")

    # --- What the paper-scale model recommends for a legacy system.
    print("\nAdvisor on published TPC-D parameters, packed shadowing "
          "unavailable:")
    for rec in recommend(
        TPCD_PARAMETERS,
        candidate_n=(1, 2, 10),
        packed_shadow_available=False,
        max_candidates=3,
    ):
        print(
            f"  {rec.scheme:<9} n={rec.n_indexes:<3} {rec.technique:<14} "
            f"work {rec.total_work_s:9,.0f} s/day"
        )


if __name__ == "__main__":
    main()
