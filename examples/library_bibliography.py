#!/usr/bin/env python3
"""Library bibliography: a 5-year window with yearly intervals.

The introduction's third motivation: Stanford's library kept only the past
5 years of Inspec indexed — a sliding-window cache of the most-accessed
papers.  The paper notes its "days" are any time interval; here each
interval is a *year*.  REINDEX fits naturally (the index package for a
bibliography rarely supports deletes), and cluster-aligned probes show the
Section-2.2 trick: year-granular queries need no per-entry timestamps.

Run:  python examples/library_bibliography.py
"""

import random

from repro import (
    IndexConfig,
    PlanExecutor,
    Record,
    RecordStore,
    ReindexScheme,
    SimulatedDisk,
    UpdateTechnique,
    WaveIndex,
)

WINDOW_YEARS, N = 5, 5
FIRST_YEAR, LAST_YEAR = 1988, 1997  # "interval 1" = 1988

KEYWORDS = [
    "databases", "indexing", "networks", "compilers", "graphics",
    "learning", "circuits", "optics", "robotics", "theory",
]


def year_to_interval(year: int) -> int:
    return year - FIRST_YEAR + 1


def interval_to_year(interval: int) -> int:
    return interval + FIRST_YEAR - 1


def build_catalog() -> RecordStore:
    rng = random.Random(1988)
    store = RecordStore()
    paper_id = 0
    for year in range(FIRST_YEAR, LAST_YEAR + 1):
        records = []
        for _ in range(rng.randint(40, 60)):
            paper_id += 1
            topics = tuple(rng.sample(KEYWORDS, rng.randint(1, 3)))
            records.append(
                Record(paper_id, year_to_interval(year), topics, nbytes=300)
            )
        store.add_records(year_to_interval(year), records)
    return store


def main() -> None:
    store = build_catalog()
    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = ReindexScheme(WINDOW_YEARS, N)

    executor.execute(scheme.start_ops())  # 1988-1992 indexed
    for year in range(FIRST_YEAR + WINDOW_YEARS, LAST_YEAR + 1):
        executor.execute(scheme.transition_ops(year_to_interval(year)))
        covered = sorted(interval_to_year(i) for i in wave.covered_days())
        print(f"after {year} ingest: window covers {covered[0]}-{covered[-1]}")

    lo = year_to_interval(LAST_YEAR - WINDOW_YEARS + 1)
    hi = year_to_interval(LAST_YEAR)

    print("\n'databases' papers in the current 5-year window:")
    result = wave.timed_index_probe("databases", lo, hi)
    by_year: dict[int, int] = {}
    for entry in result.entries:
        by_year[interval_to_year(entry.day)] = (
            by_year.get(interval_to_year(entry.day), 0) + 1
        )
    for year in sorted(by_year):
        print(f"  {year}: {by_year[year]:3d} papers")

    # Year-granular query, cluster-aligned: one index per year with
    # REINDEX(n=W), so no per-entry timestamps would be needed at all.
    one_year = year_to_interval(1995)
    aligned, exact = wave.cluster_aligned_probe("indexing", one_year, one_year)
    print(f"\n'indexing' papers published in 1995: {len(aligned.entries)} "
          f"(cluster-aligned probe, exact={exact}, "
          f"{aligned.indexes_probed} index touched)")
    assert exact  # n = W: every cluster is exactly one year

    # A paper older than the window is served "from the stacks", not the index.
    stale = store.batch(year_to_interval(1989)).records[0]
    found = set()
    for topic in stale.values:
        found.update(wave.timed_index_probe(topic, lo, hi).record_ids)
    print(f"\n1989 paper #{stale.record_id} in the fast index? "
          f"{stale.record_id in found} (look through the stacks instead)")


if __name__ == "__main__":
    main()
