#!/usr/bin/env python3
"""Interactive-style advisor: which wave index fits *your* workload?

Walks three custom scenarios through the Section-6 selection process —
the advisor ranks (scheme, n, technique) configurations by predicted total
daily work and annotates each with the paper's qualitative caveats
(deletion code, concurrency control, soft windows, temp space).

Run:  python examples/choose_a_scheme.py
"""

from repro import (
    ApplicationParameters,
    CostParameters,
    HardwareParameters,
    ImplementationParameters,
    recommend,
)

MB = 1_000_000


def scenario(name, window, s_mb, probes, scans, scan_target, g, build, add):
    s_prime = s_mb * (1.4 if g >= 2.0 else 1.05)
    return CostParameters(
        name=name,
        window=window,
        hardware=HardwareParameters(),
        application=ApplicationParameters(
            s_bytes=s_mb * MB,
            probe_num=probes,
            scan_num=scans,
            scan_target=scan_target,
        ),
        implementation=ImplementationParameters(
            g=g, build_s=build, add_s=add, del_s=add, s_prime_bytes=s_prime * MB
        ),
    )


SCENARIOS = [
    (
        "credit-card disputes (90-day hard window, few queries)",
        scenario("disputes", 90, 40, probes=2_000, scans=0,
                 scan_target="all", g=1.08, build=400, add=700),
        dict(hard_window_required=True, candidate_n=(1, 3, 9, 30)),
    ),
    (
        "stock trades (7-day window, answers needed minutes after close)",
        scenario("trades", 7, 200, probes=50_000, scans=5,
                 scan_target="all", g=1.08, build=2_000, add=3_500),
        dict(candidate_n=(1, 2, 4, 7)),
    ),
    (
        "netnews archive on a legacy WAIS engine (no deletes, no repack)",
        scenario("archive", 30, 80, probes=20_000, scans=0,
                 scan_target="all", g=2.0, build=1_500, add=3_000),
        dict(packed_shadow_available=False, candidate_n=(2, 5, 10, 15)),
    ),
]


def main() -> None:
    for title, params, kwargs in SCENARIOS:
        print(f"\n=== {title} ===")
        recs = recommend(params, max_candidates=3, **kwargs)
        for rank, rec in enumerate(recs, start=1):
            window_kind = "hard" if rec.hard_window else "soft"
            print(
                f"  {rank}. {rec.scheme:<9} n={rec.n_indexes:<3} "
                f"{rec.technique:<14} {window_kind} window   "
                f"work {rec.total_work_s:9,.0f} s/day   "
                f"transition {rec.transition_s:7,.0f} s"
            )
            for note in rec.notes:
                print(f"       - {note}")


if __name__ == "__main__":
    main()
