#!/usr/bin/env python3
"""Quickstart: maintain a 10-day wave index and query it.

Builds a tiny record store (think: daily event logs), maintains a sliding
window with the DEL scheme under simple shadowing, and runs the four access
operations of the paper's Section 2.2.

Run:  python examples/quickstart.py
"""

from repro import (
    DelScheme,
    IndexConfig,
    PlanExecutor,
    Record,
    RecordStore,
    SimulatedDisk,
    UpdateTechnique,
    WaveIndex,
)

WINDOW = 10
N_INDEXES = 2


def build_store(last_day: int) -> RecordStore:
    """Each day: a handful of events, keyed by user name."""
    users = ["alice", "bob", "carol", "dave"]
    store = RecordStore()
    record_id = 0
    for day in range(1, last_day + 1):
        records = []
        for i, user in enumerate(users):
            if (day + i) % 3 == 0:  # not every user acts every day
                continue
            record_id += 1
            records.append(
                Record(record_id, day, values=(user,), nbytes=120)
            )
        store.add_records(day, records)
    return store


def main() -> None:
    last_day = 16
    store = build_store(last_day)

    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), N_INDEXES)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)

    # Day W: build the initial window; then one transition per day.
    scheme = DelScheme(WINDOW, N_INDEXES)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, last_day + 1):
        report = executor.execute(scheme.transition_ops(day))
        print(
            f"day {day}: transition {report.seconds.transition * 1e3:6.2f} ms, "
            f"precompute {report.seconds.precomputation * 1e3:6.2f} ms, "
            f"window = {min(wave.covered_days())}..{max(wave.covered_days())}"
        )

    lo, hi = last_day - WINDOW + 1, last_day

    print("\nIndexProbe('alice') over the whole window:")
    probe = wave.timed_index_probe("alice", lo, hi)
    print(f"  {len(probe.entries)} events, records {list(probe.record_ids)}")
    print(f"  touched {probe.indexes_probed} constituent indexes, "
          f"{probe.seconds * 1e3:.2f} ms simulated I/O")

    print("\nTimedIndexProbe('alice') over the last 3 days:")
    recent = wave.timed_index_probe("alice", hi - 2, hi)
    print(f"  {len(recent.entries)} events, days "
          f"{sorted({e.day for e in recent.entries})}")

    print("\nTimedSegmentScan over the last 5 days:")
    scan = wave.timed_segment_scan(hi - 4, hi)
    by_user: dict[str, int] = {}
    for entry in scan.entries:
        day_batch = store.batch(entry.day)
        user = next(
            r.values[0] for r in day_batch.records if r.record_id == entry.record_id
        )
        by_user[user] = by_user.get(user, 0) + 1
    print(f"  events per user: {dict(sorted(by_user.items()))}")

    print(f"\nDisk: {disk.live_bytes} bytes live, "
          f"{disk.high_water_bytes} peak, clock {disk.clock:.3f} s")


if __name__ == "__main__":
    main()
