"""Tests for the Section-6 scheme advisor."""


from repro.analysis.parameters import (
    SCAM_PARAMETERS,
    TPCD_PARAMETERS,
    WSE_PARAMETERS,
)
from repro.core.advisor import recommend


class TestRecommendations:
    def test_returns_ranked_list(self):
        recs = recommend(SCAM_PARAMETERS, candidate_n=(1, 2, 4, 7))
        assert len(recs) == 5
        works = [r.total_work_s for r in recs]
        assert works == sorted(works)

    def test_wse_prefers_del_n1_with_packed_shadow(self):
        """The paper's Figure 6 recommendation."""
        recs = recommend(WSE_PARAMETERS, candidate_n=(1, 2, 5, 10))
        best = recs[0]
        assert best.scheme == "DEL"
        assert best.n_indexes == 1
        assert best.technique == "packed_shadow"

    def test_tpcd_without_packed_shadow_prefers_wata(self):
        """The paper's Figure 8 recommendation (legacy system)."""
        recs = recommend(
            TPCD_PARAMETERS,
            candidate_n=(1, 2, 10),
            packed_shadow_available=False,
        )
        assert recs[0].scheme == "WATA*"
        assert all(r.technique == "simple_shadow" for r in recs)

    def test_hard_window_requirement_excludes_wata(self):
        recs = recommend(
            TPCD_PARAMETERS,
            candidate_n=(1, 2, 10),
            packed_shadow_available=False,
            hard_window_required=True,
        )
        assert all(r.hard_window for r in recs)
        assert all(r.scheme != "WATA*" for r in recs)

    def test_notes_flag_soft_windows(self):
        recs = recommend(TPCD_PARAMETERS, candidate_n=(2,), max_candidates=20)
        wata = [r for r in recs if r.scheme == "WATA*"]
        assert wata
        assert any("soft window" in note for note in wata[0].notes)

    def test_notes_flag_deletion_code_for_del(self):
        recs = recommend(SCAM_PARAMETERS, candidate_n=(1,), max_candidates=20)
        del_recs = [r for r in recs if r.scheme == "DEL"]
        assert del_recs
        assert any("deletion code" in n for n in del_recs[0].notes)

    def test_max_candidates_respected(self):
        recs = recommend(SCAM_PARAMETERS, candidate_n=(1, 2), max_candidates=3)
        assert len(recs) == 3

    def test_illegal_n_skipped_silently(self):
        # n = 10 > window = 7 must simply not appear.
        recs = recommend(SCAM_PARAMETERS, candidate_n=(10,), max_candidates=50)
        assert recs == []
