"""Tests for degraded-window queries under constituent failures."""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.schemes import DelScheme
from repro.core.wave import WaveIndex
from repro.errors import DegradedWindowError, WaveIndexError
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.faults import FaultInjector, FaultyDisk
from tests.conftest import make_store

WINDOW, N, LAST = 6, 3, 12


@pytest.fixture
def setup():
    """A DEL wave at day 12 on a faultable disk; W=6, n=3 (2 days each)."""
    store = make_store(LAST, seed=13)
    disk = FaultyDisk(injector=FaultInjector())
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = DelScheme(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, LAST + 1):
        executor.execute(scheme.transition_ops(day))
    return store, disk, wave


class TestOfflineMarking:
    def test_only_constituents_can_be_marked(self, setup):
        _, _, wave = setup
        with pytest.raises(WaveIndexError):
            wave.mark_offline("Temp")
        wave.mark_offline("I2")
        assert wave.is_offline("I2")
        wave.mark_online("I2")
        assert not wave.is_offline("I2")


class TestDegradedQueries:
    def test_default_query_refuses_partial_window(self, setup):
        _, _, wave = setup
        wave.mark_offline("I1")
        lo, hi = LAST - WINDOW + 1, LAST
        with pytest.raises(DegradedWindowError):
            wave.timed_index_probe("a", lo, hi)
        with pytest.raises(DegradedWindowError):
            wave.timed_segment_scan(lo, hi)

    def test_degraded_probe_serves_exactly_surviving_days(self, setup):
        store, _, wave = setup
        offline_days = set(wave.get("I1").time_set)
        wave.mark_offline("I1")
        lo, hi = LAST - WINDOW + 1, LAST
        surviving = set(range(lo, hi + 1)) - offline_days
        for value in "abcdefgh":
            result = wave.timed_index_probe(value, lo, hi, degraded=True)
            assert result.missing_days == offline_days
            assert result.covered_days == surviving
            assert not result.complete
            want = sorted(
                e.record_id
                for e in store.brute_probe(value, lo, hi)
                if e.day in surviving
            )
            assert sorted(result.record_ids) == want

    def test_degraded_scan_reports_coverage(self, setup):
        store, _, wave = setup
        offline_days = set(wave.get("I3").time_set)
        wave.mark_offline("I3")
        lo, hi = LAST - WINDOW + 1, LAST
        result = wave.timed_segment_scan(lo, hi, degraded=True)
        assert result.missing_days == offline_days
        assert result.covered_days == set(range(lo, hi + 1)) - offline_days
        want = sorted(
            e.record_id
            for e in store.brute_scan(lo, hi)
            if e.day not in offline_days
        )
        assert sorted(result.record_ids) == want

    def test_offline_outside_range_does_not_degrade(self, setup):
        _, _, wave = setup
        wave.mark_offline("I1")  # oldest days
        newest = max(wave.get("I3").time_set)
        result = wave.timed_index_probe("a", newest, newest, degraded=True)
        assert result.complete
        # And the strict form works too: I1 is irrelevant to this range.
        wave.timed_index_probe("a", newest, newest)

    def test_healthy_wave_results_are_complete(self, setup):
        _, _, wave = setup
        lo, hi = LAST - WINDOW + 1, LAST
        result = wave.timed_segment_scan(lo, hi)
        assert result.complete
        assert result.covered_days == set(range(lo, hi + 1))
        assert result.missing_days == frozenset()


class TestDeviceFailureDuringQuery:
    def test_failure_mid_query_marks_offline_and_degrades(self, setup):
        _, disk, wave = setup
        lo, hi = LAST - WINDOW + 1, LAST
        disk.injector.fail_device()
        # Strict query: the fault escalates.
        with pytest.raises(Exception) as exc_info:
            wave.timed_index_probe("a", lo, hi)
        assert "failed" in str(exc_info.value)
        # The failing constituent is now remembered as offline.
        assert wave.offline
        # Degraded query: every constituent is on the dead device, so the
        # whole window is reported missing rather than raising.
        result = wave.timed_index_probe("a", lo, hi, degraded=True)
        assert result.record_ids == ()
        assert result.missing_days == set(range(lo, hi + 1))
        assert result.covered_days == frozenset()
