"""Tests for time-set partitioning helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timeset import (
    cluster_lengths,
    is_contiguous,
    partition_days,
    validate_window,
    window_days,
)
from repro.errors import SchemeError


class TestPartitionDays:
    def test_even_split(self):
        clusters = partition_days(1, 10, 2)
        assert clusters == [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]]

    def test_uneven_split_first_clusters_get_ceiling(self):
        # Appendix A: first (W mod n) clusters have ceil(W/n) days.
        clusters = partition_days(1, 10, 3)
        assert [len(c) for c in clusters] == [4, 3, 3]
        assert clusters[0] == [1, 2, 3, 4]

    def test_offset_start(self):
        clusters = partition_days(5, 4, 2)
        assert clusters == [[5, 6], [7, 8]]

    def test_single_cluster(self):
        assert partition_days(1, 7, 1) == [[1, 2, 3, 4, 5, 6, 7]]

    def test_one_day_per_cluster(self):
        assert partition_days(1, 3, 3) == [[1], [2], [3]]

    def test_too_many_clusters_rejected(self):
        with pytest.raises(SchemeError):
            partition_days(1, 2, 3)

    def test_zero_clusters_rejected(self):
        with pytest.raises(SchemeError):
            partition_days(1, 5, 0)

    @given(st.integers(1, 200), st.integers(1, 50))
    def test_partition_properties(self, total, n):
        if n > total:
            with pytest.raises(SchemeError):
                partition_days(1, total, n)
            return
        clusters = partition_days(1, total, n)
        # Covers exactly 1..total, disjoint, contiguous, ordered.
        flattened = [d for c in clusters for d in c]
        assert flattened == list(range(1, total + 1))
        assert len(clusters) == n
        sizes = [len(c) for c in clusters]
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) == math.ceil(total / n)
        assert sizes.count(math.ceil(total / n)) >= total % n


class TestValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(SchemeError):
            validate_window(0, 1)

    def test_minimum_indexes(self):
        with pytest.raises(SchemeError):
            validate_window(10, 1, minimum_indexes=2)
        validate_window(10, 2, minimum_indexes=2)

    def test_n_cannot_exceed_window(self):
        with pytest.raises(SchemeError):
            validate_window(3, 4)


class TestHelpers:
    def test_cluster_lengths(self):
        assert cluster_lengths(10, 4) == [3, 3, 2, 2]

    @pytest.mark.parametrize(
        "days,expected",
        [
            (set(), True),
            ({5}, True),
            ({3, 4, 5}, True),
            ({3, 5}, False),
            ({1, 2, 4, 5}, False),
        ],
    )
    def test_is_contiguous(self, days, expected):
        assert is_contiguous(days) is expected

    def test_window_days(self):
        assert window_days(10, 3) == {8, 9, 10}
        assert window_days(5, 5) == {1, 2, 3, 4, 5}
