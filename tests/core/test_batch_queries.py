"""Tests for batched serving: WaveIndex.probe_many / scan_many."""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.schemes import DelScheme
from repro.core.wave import WaveIndex
from repro.errors import DegradedWindowError, WaveIndexError
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from repro.storage.pagecache import PageCache
from tests.conftest import make_store

WINDOW, N, LAST = 6, 3, 12


def build_wave(disk):
    """A DEL wave at day 12 (W=6, n=3): mixed packed/incremental layout."""
    store = make_store(LAST, seed=13)
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = DelScheme(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, LAST + 1):
        executor.execute(scheme.transition_ops(day))
    return wave


@pytest.fixture
def wave():
    return build_wave(SimulatedDisk())


LO, HI = LAST - WINDOW + 1, LAST


class TestProbeMany:
    def test_results_match_individual_probes(self, wave):
        requests = [
            ("a", LO, HI),
            ("b", LO, HI - 2),
            ("c", LO + 3, HI),
            ("z", LO, HI),  # absent value
        ]
        batch = wave.probe_many(requests)
        assert len(batch) == len(requests)
        for (value, t1, t2), result in zip(requests, batch):
            solo = wave.timed_index_probe(value, t1, t2)
            assert sorted(result.record_ids) == sorted(solo.record_ids)
            assert result.covered_days == solo.covered_days
            assert result.missing_days == solo.missing_days

    def test_per_request_seconds_sum_to_batch_total(self, wave):
        requests = [("a", LO, HI), ("a", LO, HI), ("b", LO, HI)]
        batch = wave.probe_many(requests)
        assert sum(r.seconds for r in batch) == pytest.approx(batch.seconds)
        assert batch.summary.seconds == batch.seconds

    def test_duplicates_are_served_once(self, wave):
        k = 5
        batch = wave.probe_many([("a", LO, HI)] * k)
        solo = wave.timed_index_probe("a", LO, HI)
        assert batch.summary.duplicate_hits > 0
        # The whole batch costs what one probe costs: k-1 requests ride along.
        assert batch.seconds == pytest.approx(solo.seconds)
        for result in batch:
            assert sorted(result.record_ids) == sorted(solo.record_ids)

    def test_batch_cheaper_than_individual_serving(self, wave):
        requests = [(v, LO, HI) for v in "ababcdcd"]
        batch = wave.probe_many(requests)
        individual = sum(
            wave.timed_index_probe(v, t1, t2).seconds for v, t1, t2 in requests
        )
        assert batch.seconds < individual

    def test_summary_counts_device_work(self, wave):
        batch = wave.probe_many([("a", LO, HI), ("b", LO, HI)])
        s = batch.summary
        assert s.requests == 2
        assert s.constituents_touched >= 1
        assert s.buckets_read >= 1
        assert s.seeks > 0
        assert s.bytes_read > 0
        assert s.seconds_per_request == pytest.approx(s.seconds / 2)

    def test_empty_batch(self, wave):
        batch = wave.probe_many([])
        assert len(batch) == 0
        assert batch.seconds == 0.0
        assert batch.summary.requests == 0

    def test_empty_range_rejected(self, wave):
        with pytest.raises(WaveIndexError):
            wave.probe_many([("a", HI, LO)])

    def test_cache_counters_flow_into_summary(self):
        disk = SimulatedDisk(page_cache=PageCache(1 << 20))
        wave = build_wave(disk)
        wave.probe_many([("a", LO, HI)])  # warm
        batch = wave.probe_many([("a", LO, HI)])
        assert batch.summary.cache_hits > 0


class TestScanMany:
    def test_results_match_individual_scans(self, wave):
        requests = [(LO, HI), (LO, LO + 1), (HI, HI)]
        batch = wave.scan_many(requests)
        for (t1, t2), result in zip(requests, batch):
            solo = wave.timed_segment_scan(t1, t2)
            assert sorted(result.record_ids) == sorted(solo.record_ids)
            assert result.covered_days == solo.covered_days

    def test_shared_sweep_cheaper_than_individual(self, wave):
        batch = wave.scan_many([(LO, HI)] * 4)
        solo = wave.timed_segment_scan(LO, HI)
        # Four full-window scans cost one sweep, split four ways.
        assert batch.seconds == pytest.approx(solo.seconds)
        assert batch.results[0].seconds == pytest.approx(solo.seconds / 4)

    def test_per_request_seconds_sum_to_batch_total(self, wave):
        batch = wave.scan_many([(LO, HI), (HI, HI)])
        assert sum(r.seconds for r in batch) == pytest.approx(batch.seconds)

    def test_empty_range_rejected(self, wave):
        with pytest.raises(WaveIndexError):
            wave.scan_many([(HI, LO)])


class TestDegradedBatches:
    def test_default_refuses_offline_constituent(self, wave):
        wave.mark_offline("I1")
        with pytest.raises(DegradedWindowError):
            wave.probe_many([("a", LO, HI)])
        with pytest.raises(DegradedWindowError):
            wave.scan_many([(LO, HI)])

    def test_degraded_probe_reports_missing_days(self, wave):
        offline_days = set(wave.get("I1").time_set)
        wave.mark_offline("I1")
        batch = wave.probe_many([("a", LO, HI)], degraded=True)
        assert set(batch.results[0].missing_days) == offline_days
        solo = wave.timed_index_probe("a", LO, HI, degraded=True)
        assert sorted(batch.results[0].record_ids) == sorted(solo.record_ids)

    def test_degraded_scan_reports_missing_days(self, wave):
        offline_days = set(wave.get("I2").time_set)
        wave.mark_offline("I2")
        batch = wave.scan_many([(LO, HI)], degraded=True)
        assert set(batch.results[0].missing_days) == offline_days

    def test_unaffected_requests_stay_complete(self, wave):
        offline_days = set(wave.get("I1").time_set)
        wave.mark_offline("I1")
        clear = [d for d in range(LO, HI + 1) if d not in offline_days]
        t1, t2 = max(clear), max(clear)
        batch = wave.probe_many(
            [("a", LO, HI), ("a", t1, t2)], degraded=True
        )
        assert batch.results[0].missing_days
        assert not batch.results[1].missing_days


class TestQueryWorkloadBatching:
    def test_batched_workload_runs_and_is_cheaper(self):
        from repro.sim.querygen import QueryWorkload, uniform_key_picker

        disk = SimulatedDisk()
        wave = build_wave(disk)
        picker = uniform_key_picker(8)

        def cost(batch_size):
            workload = QueryWorkload(
                probes_per_day=32,
                scans_per_day=4,
                value_picker=lambda rng: f"w{picker(rng)}",
                seed=3,
                batch_size=batch_size,
            )
            return workload.run_day(wave, LAST, WINDOW)

        assert cost(16) < cost(1)

    def test_batch_size_validated(self):
        from repro.errors import WorkloadError
        from repro.sim.querygen import QueryWorkload

        with pytest.raises(WorkloadError):
            QueryWorkload(batch_size=0)
