"""Checkpoint round-trips at every mid-cycle day, for every scheme.

Complements ``test_checkpoint.py``'s resume-equivalence suite: here the
focus is the *round trip itself* — take a checkpoint at each day of a full
maintenance cycle (so temporaries like REINDEX+'s ``Temp`` and RATA*'s
``T0``/``T1`` are captured mid-build), restore onto a fresh disk, and
verify the rebuilt wave index is binding-for-binding identical, invariant-
clean, and query-equivalent to the original.
"""

import pytest

from repro.core.checkpoint import (
    checkpoint_from_json,
    checkpoint_to_json,
    restore,
    take_checkpoint,
)
from repro.core.executor import PlanExecutor
from repro.core.invariants import check_wave_invariants
from repro.core.schemes import ALL_SCHEMES, BatchedDelScheme, RataStarScheme
from repro.core.wave import WaveIndex
from repro.errors import SchemeError
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

WINDOW, N = 6, 3

#: The seven schemes of the PR's checklist: the paper's six plus BatchedDEL.
SCHEME_FACTORIES = [
    pytest.param(lambda cls=cls: cls(WINDOW, max(N, cls.min_indexes)), id=cls.name)
    for cls in ALL_SCHEMES
] + [
    pytest.param(
        lambda: BatchedDelScheme(WINDOW, N, batch_days=3), id="DEL(batched)"
    )
]


def _run_to(day, store, scheme, technique=UpdateTechnique.SIMPLE_SHADOW):
    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), scheme.n_indexes)
    executor = PlanExecutor(wave, store, technique)
    executor.execute(scheme.start_ops())
    for d in range(scheme.window + 1, day + 1):
        executor.execute(scheme.transition_ops(d))
    return wave, executor


@pytest.mark.parametrize("scheme_factory", SCHEME_FACTORIES)
class TestRoundTripEveryMidCycleDay:
    def test_restore_is_binding_identical_and_invariant_clean(
        self, scheme_factory
    ):
        scheme = scheme_factory()
        period = scheme.maintenance_period
        last = WINDOW + 2 * period
        store = make_store(last, seed=7)
        # Checkpoint at *every* day of the second cycle — this sweeps every
        # mid-cycle phase, including days where temporaries are half-built.
        for day in range(WINDOW + period + 1, WINDOW + 2 * period + 1):
            scheme = scheme_factory()
            wave, _ = _run_to(day, store, scheme)
            blob = checkpoint_to_json(take_checkpoint(scheme))
            restored_scheme, restored_wave = restore(
                checkpoint_from_json(blob), store, SimulatedDisk(), IndexConfig()
            )
            # Same bindings — temporaries included — with the same day-sets.
            assert restored_wave.days_by_name() == wave.days_by_name(), day
            check_wave_invariants(restored_wave, restored_scheme)

    def test_restored_run_continues_query_equivalent(self, scheme_factory):
        scheme = scheme_factory()
        period = scheme.maintenance_period
        mid = WINDOW + period + period // 2  # a genuinely mid-cycle day
        last = WINDOW + 3 * period
        store = make_store(last, seed=19)

        straight = scheme_factory()
        wave_a, ex_a = _run_to(last, store, straight)

        interrupted = scheme_factory()
        _, _ = _run_to(mid, store, interrupted)
        checkpoint = take_checkpoint(interrupted)
        resumed, wave_b = restore(
            checkpoint, store, SimulatedDisk(), IndexConfig()
        )
        ex_b = PlanExecutor(wave_b, store, UpdateTechnique.SIMPLE_SHADOW)
        for day in range(mid + 1, last + 1):
            ex_b.execute(resumed.transition_ops(day))

        assert wave_b.days_by_name() == wave_a.days_by_name()
        lo, hi = last - WINDOW + 1, last
        for value in "abcdefgh":
            assert sorted(
                wave_b.timed_index_probe(value, lo, hi).record_ids
            ) == sorted(wave_a.timed_index_probe(value, lo, hi).record_ids)


class TestMissingBatchDiagnostics:
    def test_restore_without_batches_raises_scheme_error(self):
        """A store missing checkpointed days fails fast with SchemeError."""
        full = make_store(12, seed=3)
        scheme = RataStarScheme(WINDOW, N)
        _run_to(10, full, scheme)
        checkpoint = take_checkpoint(scheme)

        truncated = make_store(4, seed=3)  # lacks days 5..10
        with pytest.raises(SchemeError, match="no batch for day"):
            restore(checkpoint, truncated, SimulatedDisk(), IndexConfig())
