"""Tests for aggregate scans over wave indexes."""

import pytest

from repro.core import aggregates
from repro.core.executor import PlanExecutor
from repro.core.records import Record, RecordStore
from repro.core.schemes import DelScheme
from repro.core.wave import WaveIndex
from repro.errors import WaveIndexError
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def sales_wave():
    """A 6-day window of per-salesperson sale amounts."""
    store = RecordStore()
    amounts = {}
    rid = 0
    for day in range(1, 9):
        records = []
        for person, amount in (("sue", 10.0 * day), ("lee", 5.0), ("kim", 2.5)):
            rid += 1
            records.append(
                Record(rid, day, values=(person,), nbytes=40, info=amount)
            )
            amounts.setdefault(person, {})[day] = amount
        store.add_records(day, records)

    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), 2)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = DelScheme(6, 2)
    executor.execute(scheme.start_ops())
    for day in (7, 8):
        executor.execute(scheme.transition_ops(day))
    return wave, amounts  # window now covers days 3..8


class TestScalars:
    def test_count(self, sales_wave):
        wave, _ = sales_wave
        result = aggregates.count(wave, 3, 8)
        assert result.value == 18  # 3 people x 6 days
        assert result.entries_scanned == 18
        assert result.seconds > 0

    def test_total(self, sales_wave):
        wave, _ = sales_wave
        result = aggregates.total(wave, 3, 8)
        expected = sum(10.0 * d + 5.0 + 2.5 for d in range(3, 9))
        assert result.value == pytest.approx(expected)

    def test_total_subrange(self, sales_wave):
        wave, _ = sales_wave
        result = aggregates.total(wave, 7, 8)
        assert result.value == pytest.approx(10.0 * 7 + 10.0 * 8 + 2 * 7.5)

    def test_min_max(self, sales_wave):
        wave, _ = sales_wave
        assert aggregates.minimum(wave, 3, 8).value == 2.5
        assert aggregates.maximum(wave, 3, 8).value == 80.0

    def test_mean(self, sales_wave):
        wave, _ = sales_wave
        result = aggregates.mean(wave, 3, 8)
        assert result.value == pytest.approx(
            aggregates.total(wave, 3, 8).value / 18
        )

    def test_empty_range_values(self, sales_wave):
        wave, _ = sales_wave
        assert aggregates.count(wave, 100, 200).value == 0
        assert aggregates.minimum(wave, 100, 200).value is None
        assert aggregates.mean(wave, 100, 200).value is None
        assert aggregates.total(wave, 100, 200).value == 0.0


class TestGroupTotals:
    def test_by_salesperson(self, sales_wave):
        wave, _ = sales_wave
        totals, seconds = aggregates.group_totals(wave, 3, 8)
        assert totals["lee"] == pytest.approx(6 * 5.0)
        assert totals["kim"] == pytest.approx(6 * 2.5)
        assert totals["sue"] == pytest.approx(sum(10.0 * d for d in range(3, 9)))
        assert seconds > 0

    def test_invalid_range(self, sales_wave):
        wave, _ = sales_wave
        with pytest.raises(WaveIndexError):
            aggregates.group_totals(wave, 5, 4)


class TestErrors:
    def test_non_numeric_info_rejected(self):
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ("x",), info="not-a-number")])
        store.add_records(2, [Record(2, 2, ("x",), info=1.0)])
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 1)
        executor = PlanExecutor(wave, store, UpdateTechnique.IN_PLACE)
        scheme = DelScheme(2, 1)
        executor.execute(scheme.start_ops())
        with pytest.raises(WaveIndexError):
            aggregates.total(wave, 1, 2)
