"""Tests for op-level journaling and crash recovery.

The defining property mirrors the checkpoint suite's, one level down: a
transition that crashes at *any* point and is rolled forward must be
binding-for-binding and query-for-query identical to one that never
crashed, with zero leaked extents.
"""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.invariants import check_wave_invariants
from repro.core.recovery import (
    JournaledExecutor,
    TransitionJournal,
    op_from_dict,
    op_to_dict,
    recover_transition,
    resume_scheme,
    sweep_orphan_extents,
)
from repro.core.schemes import DelScheme, RataStarScheme, ReindexPlusScheme
from repro.core.wave import WaveIndex
from repro.errors import RecoveryError, SimulatedCrash
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.faults import CrashPoint, FaultInjector, FaultyDisk
from tests.conftest import make_store

WINDOW, N, LAST = 6, 3, 18


def _fresh(store, scheme_factory, technique=UpdateTechnique.SIMPLE_SHADOW):
    disk = FaultyDisk(injector=FaultInjector())
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = JournaledExecutor(wave, store, technique)
    scheme = scheme_factory()
    executor.execute(scheme.start_ops())
    return disk, wave, executor, scheme


def _twin_days(store, scheme_factory, last_day):
    _, wave, executor, scheme = _fresh(store, scheme_factory)
    for day in range(WINDOW + 1, last_day + 1):
        executor.execute(scheme.transition_ops(day))
    return wave


def _assert_query_equivalent(wave_a, wave_b, day):
    lo, hi = day - WINDOW + 1, day
    assert sorted(wave_a.timed_segment_scan(lo, hi).record_ids) == sorted(
        wave_b.timed_segment_scan(lo, hi).record_ids
    )
    for value in "abcdefgh":
        assert sorted(
            wave_a.timed_index_probe(value, lo, hi).record_ids
        ) == sorted(wave_b.timed_index_probe(value, lo, hi).record_ids)


class TestJournalSerialisation:
    def test_ops_round_trip(self):
        scheme = ReindexPlusScheme(WINDOW, N)
        plan = list(scheme.start_ops())
        for day in range(WINDOW + 1, WINDOW + 5):
            plan.extend(scheme.transition_ops(day))
        for op in plan:
            assert op_from_dict(op_to_dict(op)) == op

    def test_journal_json_round_trip(self):
        scheme = DelScheme(WINDOW, N)
        scheme.start_ops()
        plan = scheme.transition_ops(WINDOW + 1)
        journal = TransitionJournal.begin(
            day=WINDOW + 1,
            plan=plan,
            pre_days={"I1": {1, 2, 3}, "I2": {4, 5, 6}},
            scheme_state=scheme.get_state(),
        )
        journal.completed = 1
        journal.in_flight = 1
        back = TransitionJournal.from_json(journal.to_json())
        assert back == journal

    def test_unknown_op_type_rejected(self):
        with pytest.raises(RecoveryError):
            op_from_dict({"type": "ExplodeOp", "phase": "transition"})

    def test_version_checked(self):
        with pytest.raises(RecoveryError):
            TransitionJournal.from_dict({"version": 99})


@pytest.mark.parametrize(
    "scheme_factory",
    [
        lambda: DelScheme(WINDOW, N),
        lambda: ReindexPlusScheme(WINDOW, N),
        lambda: RataStarScheme(WINDOW, N),
    ],
    ids=["DEL", "REINDEX+", "RATA*"],
)
class TestCrashRecovery:
    def test_boundary_crash_recovers_to_twin(self, scheme_factory):
        store = make_store(LAST, seed=5)
        crash_day = WINDOW + 2
        disk, wave, executor, scheme = _fresh(store, scheme_factory)
        for day in range(WINDOW + 1, crash_day):
            executor.execute(scheme.transition_ops(day))
        plan = scheme.transition_ops(crash_day)
        disk.injector.arm_crash(CrashPoint(after_ops=max(len(plan) - 1, 0)))
        with pytest.raises(SimulatedCrash):
            executor.execute_journaled(
                plan, day=crash_day, scheme_state=scheme.get_state()
            )
        disk.injector.disarm()
        journal = executor.journal
        assert journal.in_flight is None  # boundary crash: between ops
        recover_transition(journal, wave, store)

        twin = _twin_days(store, scheme_factory, crash_day)
        assert wave.days_by_name() == twin.days_by_name()
        _assert_query_equivalent(wave, twin, crash_day)
        check_wave_invariants(wave)

    def test_mid_op_crash_recovers_to_twin(self, scheme_factory):
        store = make_store(LAST, seed=5)
        crash_day = WINDOW + 1
        disk, wave, executor, scheme = _fresh(store, scheme_factory)
        plan = scheme.transition_ops(crash_day)
        disk.injector.arm_crash(CrashPoint(after_ios=1))
        with pytest.raises(SimulatedCrash):
            executor.execute_journaled(
                plan, day=crash_day, scheme_state=scheme.get_state()
            )
        disk.injector.disarm()
        recover_transition(executor.journal, wave, store)

        twin = _twin_days(store, scheme_factory, crash_day)
        assert wave.days_by_name() == twin.days_by_name()
        _assert_query_equivalent(wave, twin, crash_day)
        check_wave_invariants(wave)

    def test_resumed_scheme_continues_the_run(self, scheme_factory):
        store = make_store(LAST, seed=9)
        crash_day = WINDOW + 3
        disk, wave, executor, scheme = _fresh(store, scheme_factory)
        for day in range(WINDOW + 1, crash_day):
            executor.execute(scheme.transition_ops(day))
        plan = scheme.transition_ops(crash_day)
        disk.injector.arm_crash(CrashPoint(after_ops=0))
        with pytest.raises(SimulatedCrash):
            executor.execute_journaled(
                plan, day=crash_day, scheme_state=scheme.get_state()
            )
        disk.injector.disarm()
        journal = executor.journal
        # The executor and scheme objects "died"; only journal + disk live.
        resumed = resume_scheme(journal)
        recover_transition(journal, wave, store)
        executor2 = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        for day in range(crash_day + 1, LAST + 1):
            executor2.execute(resumed.transition_ops(day))

        twin = _twin_days(store, scheme_factory, LAST)
        assert wave.days_by_name() == twin.days_by_name()
        _assert_query_equivalent(wave, twin, LAST)
        check_wave_invariants(wave, resumed)


class TestRecoveryEdges:
    def test_recovering_finished_journal_is_noop(self):
        store = make_store(WINDOW + 2, seed=1)
        disk, wave, executor, scheme = _fresh(store, lambda: DelScheme(WINDOW, N))
        plan = scheme.transition_ops(WINDOW + 1)
        executor.execute_journaled(plan, day=WINDOW + 1)
        before = wave.days_by_name()
        report = recover_transition(executor.journal, wave, store)
        assert report.ops_executed == 0
        assert wave.days_by_name() == before

    def test_resume_without_scheme_state_rejected(self):
        journal = TransitionJournal(day=8, plan=[])
        with pytest.raises(RecoveryError, match="no scheme state"):
            resume_scheme(journal)

    def test_corrupt_completed_count_rejected(self):
        store = make_store(WINDOW + 1, seed=1)
        _, wave, _, _ = _fresh(store, lambda: DelScheme(WINDOW, N))
        journal = TransitionJournal(day=8, plan=[], completed=3)
        with pytest.raises(RecoveryError):
            recover_transition(journal, wave, store)

    def test_sweep_frees_only_unreferenced_extents(self):
        store = make_store(WINDOW, seed=1)
        disk, wave, _, _ = _fresh(store, lambda: DelScheme(WINDOW, N))
        live_before = disk.live_bytes
        orphan = disk.allocate(4096)  # simulated partial work
        assert sweep_orphan_extents(wave) == 1
        assert disk.live_bytes == live_before
        assert orphan.extent_id not in {
            e.extent_id for e in disk.live_extent_list()
        }
        # A second sweep finds nothing.
        assert sweep_orphan_extents(wave) == 0

    def test_journal_sink_sees_every_mutation(self):
        store = make_store(WINDOW + 1, seed=1)
        snapshots = []
        disk = FaultyDisk(injector=FaultInjector())
        wave = WaveIndex(disk, IndexConfig(), N)
        executor = JournaledExecutor(
            wave,
            store,
            UpdateTechnique.SIMPLE_SHADOW,
            journal_sink=lambda j: snapshots.append(j.to_json()),
        )
        scheme = DelScheme(WINDOW, N)
        executor.execute(scheme.start_ops())
        plan = scheme.transition_ops(WINDOW + 1)
        executor.execute_journaled(plan, day=WINDOW + 1)
        # begin + (in-flight + completed) per op.
        assert len(snapshots) == 1 + 2 * len(plan)
        final = TransitionJournal.from_json(snapshots[-1])
        assert final.finished
        assert final.in_flight is None


class TestRetuneJournal:
    def _journal(self):
        from repro.core.recovery import ReshardPhase, RetuneJournal

        return RetuneJournal(
            shard_id=0,
            replica_id=1,
            day=9,
            scheme_before="DEL/6/simple_shadow",
            scheme_after="REINDEX+/3/simple_shadow",
            technique_after="simple_shadow",
        ), ReshardPhase

    def test_roundtrips_through_json(self):
        journal, phase = self._journal()
        journal.advance(phase.COPYING)
        journal.builds_done = 2
        journal.target_device = 4
        from repro.core.recovery import RetuneJournal

        restored = RetuneJournal.from_json(journal.to_json())
        assert restored.to_dict() == journal.to_dict()

    def test_swap_is_the_commit_point(self):
        journal, phase = self._journal()
        for step in (phase.COPYING, phase.COPIED, phase.CATCHUP):
            journal.advance(step)
            assert not journal.committed
        journal.advance(phase.SWAPPED)
        assert journal.committed
        assert not journal.terminal
        journal.advance(phase.DONE)
        assert journal.committed
        assert journal.terminal

    def test_phases_are_forward_only(self):
        journal, phase = self._journal()
        journal.advance(phase.CATCHUP)
        with pytest.raises(RecoveryError):
            journal.advance(phase.COPYING)

    def test_abort_is_reachable_from_anywhere_but_terminal(self):
        journal, phase = self._journal()
        journal.advance(phase.CATCHUP)
        journal.advance(phase.ABORTED)
        assert journal.terminal
        assert not journal.committed
        with pytest.raises(RecoveryError):
            journal.advance(phase.DONE)

    def test_unknown_version_is_rejected(self):
        journal, _ = self._journal()
        payload = journal.to_dict()
        payload["version"] = 999
        from repro.core.recovery import RetuneJournal

        with pytest.raises(RecoveryError):
            RetuneJournal.from_dict(payload)
