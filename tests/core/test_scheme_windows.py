"""Property tests: window invariants for every scheme over arbitrary (W, n).

The paper's central correctness claims, asserted after every transition:

* hard-window schemes index exactly the last W days;
* soft-window schemes index a superset of the last W days and respect the
  Theorem-2 length bound;
* constituents' time-sets are pairwise disjoint and contiguous;
* schemes reject invalid configurations and non-sequential driving.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schemes import (
    ALL_SCHEMES,
    DelScheme,
    RataStarScheme,
    ReindexPlusPlusScheme,
    ReindexPlusScheme,
    WataStarScheme,
    WataTable4Scheme,
)
from repro.core.symbolic import SymbolicState
from repro.core.timeset import is_contiguous
from repro.errors import SchemeError

configs = st.tuples(st.integers(1, 24), st.integers(1, 8)).filter(
    lambda wn: wn[1] <= wn[0]
)


def drive_symbolically(scheme, last_day):
    state = SymbolicState(scheme.index_names)
    state.apply_plan(scheme.start_ops())
    yield scheme.window, state
    for day in range(scheme.window + 1, last_day + 1):
        state.apply_plan(scheme.transition_ops(day))
        yield day, state


def is_cyclic_block(days, window):
    """True if ``days`` occupies one contiguous arc of the window cycle.

    DEL-family clusters are rotations like ``{4, 5, 11, 12, 13}`` (Table 1):
    contiguous modulo W, not on the integer line.
    """
    if len(days) <= 1:
        return True
    positions = sorted((d - 1) % window for d in days)
    if len(set(positions)) != len(positions):
        return False
    gaps = sum(
        1
        for a, b in zip(positions, positions[1:] + positions[:1])
        if (b - a) % window != 1
    )
    return gaps <= 1


@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES, ids=lambda c: c.name)
class TestWindowInvariants:
    @given(config=configs, extra=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_every_transition(self, scheme_cls, config, extra):
        window, n = config
        if n < scheme_cls.min_indexes:
            n = scheme_cls.min_indexes
            if n > window:
                return  # not representable
        scheme = scheme_cls(window, n)
        for day, state in drive_symbolically(scheme, window + extra):
            expected = set(range(day - window + 1, day + 1))
            covered = state.covered_days()
            if scheme_cls.hard_window:
                assert covered == expected, (
                    f"{scheme_cls.name} W={window} n={n} day={day}"
                )
            else:
                assert covered >= expected
                assert max(covered) == day
            per_index = state.constituent_days()
            seen: set[int] = set()
            for days in per_index.values():
                if scheme_cls.hard_window:
                    # DEL-family clusters rotate through the window cycle.
                    assert is_cyclic_block(days, window)
                else:
                    # WATA-family clusters are plain consecutive runs.
                    assert is_contiguous(days)
                assert not (seen & days), "clusters must be disjoint"
                seen |= days
            # Scheme bookkeeping mirrors the executed state.
            assert scheme.covered_days() == covered


class TestValidation:
    def test_wata_needs_two_indexes(self):
        with pytest.raises(SchemeError):
            WataStarScheme(10, 1)
        with pytest.raises(SchemeError):
            RataStarScheme(10, 1)

    def test_window_at_least_n(self):
        with pytest.raises(SchemeError):
            DelScheme(3, 4)

    def test_nonpositive_window(self):
        with pytest.raises(SchemeError):
            DelScheme(0, 1)

    def test_wata_needs_two_days(self):
        with pytest.raises(SchemeError):
            scheme = WataStarScheme(1, 1)  # n >= 2 already fails
        # W == n == 2 is the smallest legal WATA*.
        scheme = WataStarScheme(2, 2)
        scheme.start_ops()
        scheme.transition_ops(3)


class TestDrivingProtocol:
    def test_double_start_rejected(self):
        scheme = DelScheme(5, 1)
        scheme.start_ops()
        with pytest.raises(SchemeError):
            scheme.start_ops()

    def test_transition_before_start_rejected(self):
        with pytest.raises(SchemeError):
            DelScheme(5, 1).transition_ops(6)

    def test_skipping_days_rejected(self):
        scheme = DelScheme(5, 1)
        scheme.start_ops()
        with pytest.raises(SchemeError):
            scheme.transition_ops(7)

    def test_replaying_days_rejected(self):
        scheme = DelScheme(5, 1)
        scheme.start_ops()
        scheme.transition_ops(6)
        with pytest.raises(SchemeError):
            scheme.transition_ops(6)

    def test_current_day_tracks(self):
        scheme = DelScheme(5, 1)
        assert scheme.current_day is None
        scheme.start_ops()
        assert scheme.current_day == 5
        scheme.transition_ops(6)
        assert scheme.current_day == 6


class TestEdgeConfigurations:
    """Configurations the pseudocode handles awkwardly (see DESIGN.md)."""

    @pytest.mark.parametrize(
        "scheme_cls",
        [ReindexPlusScheme, ReindexPlusPlusScheme],
        ids=lambda c: c.name,
    )
    def test_one_day_clusters(self, scheme_cls):
        """W == n: every cluster has one day (REINDEX+ degenerates)."""
        scheme = scheme_cls(5, 5)
        state = SymbolicState(scheme.index_names)
        state.apply_plan(scheme.start_ops())
        for day in range(6, 20):
            state.apply_plan(scheme.transition_ops(day))
            assert state.covered_days() == set(range(day - 4, day + 1))

    def test_mixed_cluster_sizes(self):
        """W not divisible by n mixes big and size-1 clusters."""
        scheme = ReindexPlusScheme(5, 3)  # clusters 2, 2, 1
        state = SymbolicState(scheme.index_names)
        state.apply_plan(scheme.start_ops())
        for day in range(6, 25):
            state.apply_plan(scheme.transition_ops(day))
            assert state.covered_days() == set(range(day - 4, day + 1))

    def test_wata_table4_variant_covers_window(self):
        scheme = WataTable4Scheme(10, 4)
        state = SymbolicState(scheme.index_names)
        state.apply_plan(scheme.start_ops())
        for day in range(11, 60):
            state.apply_plan(scheme.transition_ops(day))
            assert state.covered_days() >= set(range(day - 9, day + 1))
