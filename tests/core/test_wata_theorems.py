"""Property tests for the paper's WATA* theorems (Appendix B).

* Theorem 2: WATA*'s maximum length is exactly ``W + ceil((W-1)/(n-1)) - 1``.
* Theorem 1: no WATA-family algorithm can do better (checked against the
  Table 4 variant, which the paper shows is worse).
* Theorem 3: WATA* is 2-competitive on index *size* for arbitrary day sizes.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudies.sizing import hard_window_sizes, scheme_daily_sizes
from repro.core.schemes.wata import WataStarScheme, WataTable4Scheme
from repro.core.symbolic import SymbolicState

wata_configs = st.tuples(st.integers(2, 30), st.integers(2, 10)).filter(
    lambda wn: wn[1] <= wn[0]
)


def run_lengths(scheme, last_day):
    state = SymbolicState(scheme.index_names)
    state.apply_plan(scheme.start_ops())
    lengths = [state.total_constituent_days()]
    for day in range(scheme.window + 1, last_day + 1):
        state.apply_plan(scheme.transition_ops(day))
        lengths.append(state.total_constituent_days())
    return lengths


class TestTheorem2MaxLength:
    @given(config=wata_configs)
    @settings(max_examples=60, deadline=None)
    def test_length_never_exceeds_bound(self, config):
        window, n = config
        scheme = WataStarScheme(window, n)
        bound = window + math.ceil((window - 1) / (n - 1)) - 1
        assert scheme.max_length_bound() == bound
        lengths = run_lengths(scheme, window + 4 * window)
        assert max(lengths) <= bound

    @given(config=wata_configs)
    @settings(max_examples=30, deadline=None)
    def test_bound_is_attained(self, config):
        """The bound is tight: the max length is achieved, not just bounded."""
        window, n = config
        scheme = WataStarScheme(window, n)
        bound = scheme.max_length_bound()
        lengths = run_lengths(scheme, window + 4 * window)
        assert max(lengths) == bound

    def test_paper_example_w10_n4(self):
        # Section 3.3: the Table 3 scheme has length 12 (not Table 4's 13).
        scheme = WataStarScheme(10, 4)
        assert scheme.max_length_bound() == 12
        assert max(run_lengths(scheme, 50)) == 12

    def test_variant_is_no_better(self):
        """Theorem 1: WATA* is optimal; the eager-split variant can't beat it."""
        for window, n in [(10, 4), (12, 3), (9, 2), (14, 5)]:
            star = max(run_lengths(WataStarScheme(window, n), 5 * window))
            variant = max(
                run_lengths(WataTable4Scheme(window, n), 5 * window)
            )
            assert variant >= star


class TestTheorem3CompetitiveSize:
    @given(
        config=wata_configs,
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_competitive_on_random_sizes(self, config, seed):
        window, n = config
        rng = random.Random(seed)
        num_days = window + 3 * window
        weights = [rng.uniform(0.1, 5.0) for _ in range(num_days)]
        scheme = WataStarScheme(window, n)
        lazy = max(scheme_daily_sizes(scheme, weights, num_days))
        eager = max(hard_window_sizes(weights, window, num_days))
        # OPT >= eager (any scheme stores the hard window), so the ratio to
        # eager upper-bounds the competitive ratio.
        assert lazy <= 2.0 * eager + 1e-9

    def test_adversarial_spike(self):
        """A huge day inside a residual segment still stays within 2x."""
        window, n = 7, 2
        weights = [1.0] * 30
        weights[10] = 50.0
        scheme = WataStarScheme(window, n)
        lazy = max(scheme_daily_sizes(scheme, weights, 30))
        eager = max(hard_window_sizes(weights, window, 30))
        assert lazy <= 2.0 * eager + 1e-9


class TestResidualDays:
    @given(config=wata_configs)
    @settings(max_examples=40, deadline=None)
    def test_at_most_one_index_holds_expired_days(self, config):
        """Appendix B observation: only one constituent can hold waste."""
        window, n = config
        scheme = WataStarScheme(window, n)
        state = SymbolicState(scheme.index_names)
        state.apply_plan(scheme.start_ops())
        for day in range(window + 1, window + 3 * window + 1):
            state.apply_plan(scheme.transition_ops(day))
            live = set(range(day - window + 1, day + 1))
            wasteful = [
                name
                for name, days in state.constituent_days().items()
                if days - live
            ]
            assert len(wasteful) <= 1
