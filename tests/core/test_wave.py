"""Tests for the WaveIndex container and its access operations."""

import pytest

from repro.core.records import Record, RecordStore
from repro.core.wave import WaveIndex, constituent_names
from repro.errors import WaveIndexError
from repro.index.builder import build_packed_index


def packed(disk, config, store, days, name):
    return build_packed_index(
        disk, config, store.grouped_for(days), days, name=name
    )


@pytest.fixture
def small_store():
    store = RecordStore()
    store.add_records(1, [Record(1, 1, ("a", "b"))])
    store.add_records(2, [Record(2, 2, ("a",))])
    store.add_records(3, [Record(3, 3, ("b",))])
    store.add_records(4, [Record(4, 4, ("a",))])
    return store


@pytest.fixture
def wave(disk, config, small_store):
    wave = WaveIndex(disk, config, n_indexes=2)
    wave.bind("I1", packed(disk, config, small_store, [1, 2], "I1"))
    wave.bind("I2", packed(disk, config, small_store, [3, 4], "I2"))
    return wave


class TestNames:
    def test_constituent_names(self):
        assert constituent_names(3) == ["I1", "I2", "I3"]

    def test_needs_at_least_one_index(self, disk, config):
        with pytest.raises(WaveIndexError):
            WaveIndex(disk, config, 0)

    def test_is_constituent(self, wave):
        assert wave.is_constituent("I1")
        assert not wave.is_constituent("Temp")


class TestBindings:
    def test_bind_drops_previous(self, disk, config, small_store):
        wave = WaveIndex(disk, config, 1)
        first = packed(disk, config, small_store, [1], "I1")
        second = packed(disk, config, small_store, [2], "I1")
        wave.bind("I1", first)
        wave.bind("I1", second)
        assert first.dropped
        assert wave.get("I1") is second

    def test_rebinding_same_index_does_not_drop(self, disk, config, small_store):
        wave = WaveIndex(disk, config, 1)
        idx = packed(disk, config, small_store, [1], "I1")
        wave.bind("I1", idx)
        wave.bind("I1", idx)
        assert not idx.dropped

    def test_get_unbound_rejected(self, disk, config):
        wave = WaveIndex(disk, config, 1)
        with pytest.raises(WaveIndexError):
            wave.get("I1")
        assert wave.get_optional("I1") is None

    def test_unbind_returns_live_index(self, wave):
        idx = wave.unbind("I1")
        assert not idx.dropped
        with pytest.raises(WaveIndexError):
            wave.get("I1")

    def test_covered_days(self, wave):
        assert wave.covered_days() == {1, 2, 3, 4}

    def test_days_by_name(self, wave):
        assert wave.days_by_name() == {"I1": {1, 2}, "I2": {3, 4}}

    def test_total_length(self, wave):
        assert wave.total_length_days == 4


class TestProbes:
    def test_probe_merges_across_constituents(self, wave):
        result = wave.index_probe("a")
        assert sorted(result.record_ids) == [1, 2, 4]
        assert result.indexes_probed == 2
        assert result.seconds > 0

    def test_timed_probe_skips_irrelevant_indexes(self, wave):
        result = wave.timed_index_probe("a", 1, 2)
        assert sorted(result.record_ids) == [1, 2]
        assert result.indexes_probed == 1  # I2 (days 3-4) never touched

    def test_timed_probe_filters_within_index(self, wave):
        result = wave.timed_index_probe("a", 2, 3)
        assert sorted(result.record_ids) == [2]
        assert result.indexes_probed == 2  # both intersect [2, 3]

    def test_empty_range_rejected(self, wave):
        with pytest.raises(WaveIndexError):
            wave.timed_index_probe("a", 5, 4)

    def test_probe_missing_value(self, wave):
        result = wave.index_probe("zzz")
        assert result.entries == ()
        assert result.indexes_probed == 2


class TestScans:
    def test_segment_scan_covers_everything(self, wave):
        result = wave.segment_scan()
        assert sorted(result.record_ids) == [1, 1, 2, 3, 4]  # rec1 has 2 values
        assert result.indexes_scanned == 2

    def test_timed_scan(self, wave):
        result = wave.timed_segment_scan(3, 4)
        assert sorted(result.record_ids) == [3, 4]
        assert result.indexes_scanned == 1

    def test_scan_empty_range_rejected(self, wave):
        with pytest.raises(WaveIndexError):
            wave.timed_segment_scan(2, 1)


class TestSpaceAccounting:
    def test_constituent_vs_total_bytes(self, disk, config, small_store, wave):
        temp = packed(disk, config, small_store, [1], "Temp")
        wave.bind("Temp", temp)
        assert wave.total_bytes > wave.constituent_bytes
        assert wave.constituent_bytes == (
            wave.get("I1").allocated_bytes + wave.get("I2").allocated_bytes
        )


class TestClusterAlignedProbe:
    def test_exact_when_range_covers_whole_clusters(self, wave):
        result, exact = wave.cluster_aligned_probe("a", 1, 4)
        assert exact
        assert sorted(result.record_ids) == [1, 2, 4]
        assert result.indexes_probed == 2

    def test_single_cluster_alignment(self, wave):
        result, exact = wave.cluster_aligned_probe("a", 1, 2)
        assert exact
        assert sorted(result.record_ids) == [1, 2]
        assert result.indexes_probed == 1

    def test_partial_overlap_reports_inexact(self, wave):
        result, exact = wave.cluster_aligned_probe("a", 2, 4)
        # I1 covers {1, 2}: day 1 is outside, so I1 is skipped and flagged.
        assert not exact
        assert sorted(result.record_ids) == [4]

    def test_matches_timed_probe_on_aligned_ranges(self, wave):
        aligned, exact = wave.cluster_aligned_probe("b", 1, 4)
        assert exact
        timed = wave.timed_index_probe("b", 1, 4)
        assert sorted(aligned.record_ids) == sorted(timed.record_ids)

    def test_empty_range_rejected(self, wave):
        import pytest

        from repro.errors import WaveIndexError

        with pytest.raises(WaveIndexError):
            wave.cluster_aligned_probe("a", 3, 2)
