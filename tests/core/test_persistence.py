"""Tests for exact wave-index persistence (no record store needed)."""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.persistence import (
    BINARY_MAGIC,
    SNAPSHOT_VERSION,
    dump_wave,
    load_wave,
    wave_from_bytes,
    wave_from_json,
    wave_to_bytes,
    wave_to_json,
)
from repro.core.records import Record, RecordStore
from repro.core.schemes import ALL_SCHEMES, DelScheme
from repro.core.wave import WaveIndex
from repro.errors import WaveIndexError
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

WINDOW, N, LAST = 7, 3, 16


def maintained_wave(scheme_cls, store, technique=UpdateTechnique.SIMPLE_SHADOW):
    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, technique)
    scheme = scheme_cls(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, LAST + 1):
        executor.execute(scheme.transition_ops(day))
    return wave


@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES, ids=lambda c: c.name)
class TestRoundTrip:
    def test_queries_identical_after_reload(self, scheme_cls):
        store = make_store(LAST, seed=41)
        original = maintained_wave(scheme_cls, store)
        text = wave_to_json(original)

        restored = wave_from_json(text, SimulatedDisk(), IndexConfig())
        assert restored.days_by_name() == original.days_by_name()
        lo, hi = LAST - WINDOW + 1, LAST
        for value in "abcdefgh":
            assert sorted(
                restored.timed_index_probe(value, lo, hi).record_ids
            ) == sorted(original.timed_index_probe(value, lo, hi).record_ids)
        assert sorted(restored.segment_scan().record_ids) == sorted(
            original.segment_scan().record_ids
        )

    def test_packedness_preserved(self, scheme_cls):
        store = make_store(LAST, seed=42)
        original = maintained_wave(
            scheme_cls, store, UpdateTechnique.PACKED_SHADOW
        )
        restored = wave_from_json(
            wave_to_json(original), SimulatedDisk(), IndexConfig()
        )
        for name, index in original.bindings.items():
            assert restored.get(name).packed == index.packed, name


class TestFormat:
    def _simple_wave(self):
        store = RecordStore()
        store.add_records(
            1, [Record(1, 1, ("alpha", 7), info=3.5), Record(2, 1, (7,))]
        )
        store.add_records(2, [Record(3, 2, ("alpha",))])
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 1)
        executor = PlanExecutor(wave, store, UpdateTechnique.IN_PLACE)
        scheme = DelScheme(2, 1)
        executor.execute(scheme.start_ops())
        return wave

    def test_mixed_value_types_roundtrip(self):
        wave = self._simple_wave()
        restored = wave_from_json(
            wave_to_json(wave), SimulatedDisk(), IndexConfig()
        )
        # int key 7 and str key "alpha" stay distinct through JSON.
        assert sorted(restored.index_probe(7).record_ids) == [1, 2]
        assert sorted(restored.index_probe("alpha").record_ids) == [1, 3]

    def test_info_payloads_roundtrip(self):
        wave = self._simple_wave()
        restored = wave_from_json(
            wave_to_json(wave), SimulatedDisk(), IndexConfig()
        )
        infos = {
            e.record_id: e.info
            for e in restored.index_probe("alpha").entries
        }
        assert infos[1] == 3.5
        assert infos[3] is None

    def test_version_checked(self):
        wave = self._simple_wave()
        snapshot = dump_wave(wave)
        snapshot["version"] = 99
        with pytest.raises(WaveIndexError):
            load_wave(snapshot, SimulatedDisk(), IndexConfig())

    def test_malformed_rejected(self):
        with pytest.raises(WaveIndexError):
            wave_from_json("{}", SimulatedDisk(), IndexConfig())

    def test_unserialisable_value_rejected(self):
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ((1, 2),))])  # tuple-valued key
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 1)
        executor = PlanExecutor(wave, store, UpdateTechnique.IN_PLACE)
        scheme = DelScheme(1, 1)
        executor.execute(scheme.start_ops())
        with pytest.raises(WaveIndexError):
            dump_wave(wave)


@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES, ids=lambda c: c.name)
class TestBinaryRoundTrip:
    """The packed binary snapshot must round-trip exactly like JSON."""

    def test_restored_wave_matches_json_snapshot(self, scheme_cls):
        store = make_store(LAST, seed=41)
        original = maintained_wave(scheme_cls, store)
        restored = wave_from_bytes(
            wave_to_bytes(original), SimulatedDisk(), IndexConfig()
        )
        # wave_to_json is the canonical full-state projection: identical
        # JSON means identical bindings, days, packedness, and entries.
        assert wave_to_json(restored) == wave_to_json(original)

    def test_header_and_reencode_stability(self, scheme_cls):
        store = make_store(LAST, seed=41)
        original = maintained_wave(scheme_cls, store)
        data = wave_to_bytes(original)
        assert data[:4] == BINARY_MAGIC
        restored = wave_from_bytes(data, SimulatedDisk(), IndexConfig())
        assert wave_to_bytes(restored) == data


class TestBinaryFormat:
    def _simple_wave(self):
        store = RecordStore()
        store.add_records(
            1, [Record(1, 1, ("alpha", 7), info=3.5), Record(2, 1, (7,))]
        )
        store.add_records(2, [Record(3, 2, ("alpha",))])
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 1)
        executor = PlanExecutor(wave, store, UpdateTechnique.IN_PLACE)
        scheme = DelScheme(2, 1)
        executor.execute(scheme.start_ops())
        return wave

    def test_float_info_round_trips_exactly(self):
        # JSON would round-trip 3.5 fine but mangles e.g. signalling
        # payloads; the binary path stores the raw IEEE-754 bits.
        wave = self._simple_wave()
        restored = wave_from_bytes(
            wave_to_bytes(wave), SimulatedDisk(), IndexConfig()
        )
        infos = {
            e.record_id: e.info
            for e in restored.index_probe("alpha").entries
        }
        assert infos[1] == 3.5 and type(infos[1]) is float
        assert infos[3] is None

    def test_truncated_body_rejected(self):
        data = wave_to_bytes(self._simple_wave())
        with pytest.raises(WaveIndexError):
            wave_from_bytes(data[:-3], SimulatedDisk(), IndexConfig())

    def test_truncated_header_rejected(self):
        with pytest.raises(WaveIndexError):
            wave_from_bytes(b"WS", SimulatedDisk(), IndexConfig())

    def test_bad_magic_rejected(self):
        data = wave_to_bytes(self._simple_wave())
        with pytest.raises(WaveIndexError):
            wave_from_bytes(
                b"XXXX" + data[4:], SimulatedDisk(), IndexConfig()
            )

    def test_malformed_directory_rejected(self):
        import struct as _struct

        directory = b"{not json"
        data = (
            _struct.pack("<4sIQ", BINARY_MAGIC, SNAPSHOT_VERSION, len(directory))
            + directory
        )
        with pytest.raises(WaveIndexError):
            wave_from_bytes(data, SimulatedDisk(), IndexConfig())

    def test_vectorized_switch_does_not_change_bytes(self):
        from repro.index.kernels import vectorized

        wave = self._simple_wave()
        with vectorized(True):
            on = wave_to_bytes(wave)
        with vectorized(False):
            off = wave_to_bytes(wave)
        assert on == off
