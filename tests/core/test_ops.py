"""Tests for the primitive-operation vocabulary."""

from repro.core.ops import (
    AddOp,
    BuildOp,
    CopyOp,
    CreateEmptyOp,
    DeleteOp,
    DropOp,
    Phase,
    RenameOp,
    UpdateOp,
)


class TestPhases:
    def test_default_phase_is_transition(self):
        assert BuildOp(target="I1", days=(1,)).phase is Phase.TRANSITION

    def test_precomputation_classification(self):
        assert Phase.PRECOMPUTE.counts_as_precomputation
        assert Phase.POST.counts_as_precomputation
        assert not Phase.TRANSITION.counts_as_precomputation


class TestDescriptions:
    """The describe() renderings feed the Tables 1-7 traces."""

    def test_build(self):
        op = BuildOp(target="I1", days=(1, 2, 3))
        assert op.describe() == "I1 <- BuildIndex({1, 2, 3})"

    def test_add(self):
        assert AddOp(target="Temp", days=(11,)).describe() == (
            "AddToIndex({11}, Temp)"
        )

    def test_delete(self):
        assert DeleteOp(target="I1", days=(1,)).describe() == (
            "DeleteFromIndex({1}, I1)"
        )

    def test_update_mentions_both_halves(self):
        text = UpdateOp(target="I1", add_days=(11,), delete_days=(1,)).describe()
        assert "DeleteFromIndex({1}, I1)" in text
        assert "AddToIndex({11}, I1)" in text

    def test_copy_rename_drop_empty(self):
        assert CopyOp(source="Temp", target="I1").describe() == "I1 <- Temp"
        assert RenameOp(source="T4", target="I1").describe() == "Rename T4 as I1"
        assert DropOp(target="I1").describe() == "DropIndex(I1)"
        assert CreateEmptyOp(target="Temp").describe() == "Temp <- empty"


class TestImmutability:
    def test_ops_are_frozen(self):
        op = BuildOp(target="I1", days=(1,))
        try:
            op.target = "I2"  # type: ignore[misc]
        except AttributeError:
            return
        raise AssertionError("ops must be immutable")

    def test_ops_are_hashable(self):
        a = AddOp(target="I1", days=(1,))
        b = AddOp(target="I1", days=(1,))
        assert a == b
        assert len({a, b}) == 1
