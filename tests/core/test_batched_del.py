"""Tests for the batched-deletion DEL variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.daycount import steady_state
from repro.analysis.parameters import SCAM_PARAMETERS
from repro.core.executor import PlanExecutor
from repro.core.schemes.batched_del import BatchedDelScheme
from repro.core.schemes.del_scheme import DelScheme
from repro.core.symbolic import SymbolicState
from repro.core.wave import WaveIndex
from repro.errors import SchemeError
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

configs = st.tuples(
    st.integers(2, 16), st.integers(1, 4), st.integers(1, 6)
).filter(lambda wnk: wnk[1] <= wnk[0])


class TestValidation:
    def test_batch_days_positive(self):
        with pytest.raises(SchemeError):
            BatchedDelScheme(7, 2, batch_days=0)


class TestWindowSemantics:
    @given(config=configs, extra=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_soft_window_bounded_by_batch(self, config, extra):
        window, n, k = config
        scheme = BatchedDelScheme(window, n, batch_days=k)
        state = SymbolicState(scheme.index_names)
        state.apply_plan(scheme.start_ops())
        for day in range(window + 1, window + extra + 1):
            state.apply_plan(scheme.transition_ops(day))
            live = set(range(day - window + 1, day + 1))
            covered = state.covered_days()
            assert covered >= live
            assert len(covered - live) <= k - 1, (day, sorted(covered))

    def test_batch_one_equals_del(self):
        window, n = 8, 3
        batched = BatchedDelScheme(window, n, batch_days=1)
        plain = DelScheme(window, n)
        sa, sb = (
            SymbolicState(batched.index_names),
            SymbolicState(plain.index_names),
        )
        sa.apply_plan(batched.start_ops())
        sb.apply_plan(plain.start_ops())
        for day in range(window + 1, window + 25):
            sa.apply_plan(batched.transition_ops(day))
            sb.apply_plan(plain.transition_ops(day))
            assert sa.constituent_days() == sb.constituent_days()


class TestAmortisation:
    def _substrate_maintenance_seconds(self, scheme_factory, last=36):
        window, n = 12, 2
        store = make_store(last, seed=17, min_records=4, max_records=8)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), n)
        executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        scheme = scheme_factory(window, n)
        executor.execute(scheme.start_ops())
        start = disk.clock
        for day in range(window + 1, last + 1):
            executor.execute(scheme.transition_ops(day))
        return disk.clock - start

    def test_batching_cheaper_on_the_substrate(self):
        """Deleting k days in one pass touches each bucket once instead of
        k times (and shadows once instead of k times) — the bulk-delete
        advantage the paper cites.  The per-day analytic model cannot see
        this (it charges Del per day), so the claim is measured."""
        plain = self._substrate_maintenance_seconds(
            lambda w, n: DelScheme(w, n)
        )
        batched = self._substrate_maintenance_seconds(
            lambda w, n: BatchedDelScheme(w, n, batch_days=6)
        )
        assert batched < plain

    def test_analytic_model_sees_no_benefit(self):
        """Documents the model's granularity: per-day Del charges make
        batched DEL a wash analytically (slightly worse — bigger shadows)."""
        window, n = 12, 2
        plain = steady_state(
            lambda: DelScheme(window, n),
            SCAM_PARAMETERS.with_window(window),
            UpdateTechnique.SIMPLE_SHADOW,
        )
        batched = steady_state(
            lambda: BatchedDelScheme(window, n, batch_days=6),
            SCAM_PARAMETERS.with_window(window),
            UpdateTechnique.SIMPLE_SHADOW,
        )
        assert batched.maintenance_s == pytest.approx(
            plain.maintenance_s, rel=0.05
        )

    def test_period_is_lcm(self):
        scheme = BatchedDelScheme(12, 2, batch_days=5)
        assert scheme.maintenance_period == 60


class TestStorageRun:
    def test_queries_match_oracle_with_batching(self):
        window, n, k, last = 8, 2, 3, 24
        store = make_store(last, seed=91)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), n)
        executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        scheme = BatchedDelScheme(window, n, batch_days=k)
        executor.execute(scheme.start_ops())
        for day in range(window + 1, last + 1):
            executor.execute(scheme.transition_ops(day))
            lo, hi = day - window + 1, day
            for value in "abcd":
                got = sorted(
                    wave.timed_index_probe(value, lo, hi).record_ids
                )
                want = sorted(
                    e.record_id for e in store.brute_probe(value, lo, hi)
                )
                assert got == want, (day, value)
        disk.check_invariants()

    def test_pending_exposed(self):
        scheme = BatchedDelScheme(6, 2, batch_days=3)
        scheme.start_ops()
        scheme.transition_ops(7)
        scheme.transition_ops(8)
        assert scheme.pending_expired == (1, 2)
        scheme.transition_ops(9)  # flush
        assert scheme.pending_expired == ()
