"""Tests for the size-aware WATA extension scheme."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schemes.wata import WataStarScheme
from repro.core.schemes.wata_size import WataSizeAwareScheme
from repro.core.symbolic import SymbolicState
from repro.errors import SchemeError


def make_weights(num_days: int, seed: int, spike: float = 1.0) -> list[float]:
    rng = random.Random(seed)
    weights = [rng.uniform(0.2, 2.0) for _ in range(num_days)]
    if spike != 1.0:
        weights[num_days // 2] *= spike
    return weights


def run(scheme, weights, last_day):
    state = SymbolicState(scheme.index_names)
    state.apply_plan(scheme.start_ops())
    sizes = [scheme.total_size()]
    for day in range(scheme.window + 1, last_day + 1):
        state.apply_plan(scheme.transition_ops(day))
        sizes.append(scheme.total_size())
        covered = state.covered_days()
        expected = set(range(day - scheme.window + 1, day + 1))
        assert covered >= expected, (day, sorted(covered))
    return sizes, state


def scheme_for(weights, window, n):
    m = max(
        sum(weights[i : i + window]) for i in range(len(weights) - window + 1)
    )
    return (
        WataSizeAwareScheme(
            window,
            n,
            max_window_size=m,
            day_size=lambda d: weights[d - 1],
        ),
        m,
    )


class TestValidation:
    def test_needs_positive_cap(self):
        with pytest.raises(SchemeError):
            WataSizeAwareScheme(
                7, 3, max_window_size=0, day_size=lambda d: 1.0
            )

    def test_needs_two_indexes(self):
        with pytest.raises(SchemeError):
            WataSizeAwareScheme(
                7, 1, max_window_size=10, day_size=lambda d: 1.0
            )


class TestSizeBound:
    @given(seed=st.integers(0, 500), n=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_respects_kleinberg_bound(self, seed, n):
        window = 7
        weights = make_weights(window + 3 * window, seed)
        scheme, m = scheme_for(weights, window, n)
        sizes, _ = run(scheme, weights, len(weights))
        assert max(sizes) <= scheme.size_bound() + 1e-9
        assert scheme.size_bound() == pytest.approx(m * n / (n - 1))

    def test_beats_wata_star_on_spiky_data(self):
        """A volume spike inside a long segment hurts WATA* but not the
        capped scheme, which rolls before the residue gets expensive."""
        window, n = 7, 3
        weights = make_weights(7 * 8, seed=4, spike=25.0)
        sized, _m = scheme_for(weights, window, n)
        sized_sizes, _ = run(sized, weights, len(weights))

        star = WataStarScheme(window, n)
        state = SymbolicState(star.index_names)
        state.apply_plan(star.start_ops())
        star_sizes = []
        for day in range(window + 1, len(weights) + 1):
            state.apply_plan(star.transition_ops(day))
            star_sizes.append(
                sum(
                    weights[d - 1]
                    for days in state.constituent_days().values()
                    for d in days
                )
            )
        assert max(sized_sizes) <= max(star_sizes) + 1e-9

    def test_uniform_data_behaves_like_wata_star(self):
        """With equal day sizes the cap never binds early: same day-sets."""
        window, n = 9, 3
        weights = [1.0] * (window + 2 * window)
        sized, _ = scheme_for(weights, window, n)
        state_a = SymbolicState(sized.index_names)
        state_a.apply_plan(sized.start_ops())
        star = WataStarScheme(window, n)
        state_b = SymbolicState(star.index_names)
        state_b.apply_plan(star.start_ops())
        for day in range(window + 1, len(weights) + 1):
            state_a.apply_plan(sized.transition_ops(day))
            state_b.apply_plan(star.transition_ops(day))
            assert state_a.constituent_days() == state_b.constituent_days()


class TestWindowInvariant:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_soft_window_always_covered(self, seed):
        window, n = 6, 3
        weights = make_weights(window + 24, seed)
        scheme, _ = scheme_for(weights, window, n)
        run(scheme, weights, len(weights))  # asserts coverage internally
