"""Tests for symbolic (day-set) plan execution."""

import pytest

from repro.core.ops import (
    AddOp,
    BuildOp,
    CopyOp,
    CreateEmptyOp,
    DeleteOp,
    DropOp,
    RenameOp,
    UpdateOp,
)
from repro.core.symbolic import SymbolicState
from repro.errors import SchemeError


@pytest.fixture
def state():
    return SymbolicState(["I1", "I2"])


class TestSymbolicOps:
    def test_build(self, state):
        state.apply(BuildOp(target="I1", days=(1, 2)))
        assert state.get("I1") == {1, 2}

    def test_create_empty(self, state):
        state.apply(CreateEmptyOp(target="Temp"))
        assert state.get("Temp") == set()

    def test_add_delete(self, state):
        state.apply(BuildOp(target="I1", days=(1,)))
        state.apply(AddOp(target="I1", days=(2, 3)))
        state.apply(DeleteOp(target="I1", days=(1,)))
        assert state.get("I1") == {2, 3}

    def test_update(self, state):
        state.apply(BuildOp(target="I1", days=(1, 2)))
        state.apply(UpdateOp(target="I1", add_days=(3,), delete_days=(1,)))
        assert state.get("I1") == {2, 3}

    def test_copy_is_independent(self, state):
        state.apply(BuildOp(target="Temp", days=(5,)))
        state.apply(CopyOp(source="Temp", target="I1"))
        state.apply(AddOp(target="I1", days=(6,)))
        assert state.get("Temp") == {5}
        assert state.get("I1") == {5, 6}

    def test_rename_moves_binding(self, state):
        state.apply(BuildOp(target="T3", days=(7,)))
        state.apply(RenameOp(source="T3", target="I1"))
        assert state.get("I1") == {7}
        with pytest.raises(SchemeError):
            state.get("T3")

    def test_drop(self, state):
        state.apply(BuildOp(target="I1", days=(1,)))
        state.apply(DropOp(target="I1"))
        with pytest.raises(SchemeError):
            state.get("I1")

    def test_rename_unbound_rejected(self, state):
        with pytest.raises(SchemeError):
            state.apply(RenameOp(source="nope", target="I1"))

    def test_drop_unbound_rejected(self, state):
        with pytest.raises(SchemeError):
            state.apply(DropOp(target="nope"))

    def test_add_to_unbound_rejected(self, state):
        with pytest.raises(SchemeError):
            state.apply(AddOp(target="I1", days=(1,)))


class TestSummaries:
    def test_constituents_vs_temporaries(self, state):
        state.apply(BuildOp(target="I1", days=(1,)))
        state.apply(BuildOp(target="Temp", days=(2,)))
        assert state.covered_days() == {1}
        assert state.constituent_days() == {"I1": {1}, "I2": set()}
        assert state.temporary_days() == {"Temp": {2}}
        assert state.total_constituent_days() == 1
        assert state.total_days_including_temps() == 2

    def test_is_constituent(self, state):
        assert state.is_constituent("I1")
        assert not state.is_constituent("Temp")
