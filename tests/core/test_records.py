"""Tests for records, day batches, and the record store."""

import pytest

from repro.core.records import DayBatch, Record, RecordStore
from repro.errors import WorkloadError
from repro.index.entry import Entry


class TestRecord:
    def test_requires_values(self):
        with pytest.raises(ValueError):
            Record(1, 1, values=())

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Record(1, 1, values=("a",), nbytes=-1)


class TestDayBatch:
    def test_day_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            DayBatch(day=2, records=[Record(1, 1, ("a",))])

    def test_entry_count_counts_values(self):
        batch = DayBatch(
            day=1,
            records=[Record(1, 1, ("a", "b")), Record(2, 1, ("c",))],
        )
        assert batch.entry_count == 3

    def test_data_bytes(self):
        batch = DayBatch(
            day=1,
            records=[Record(1, 1, ("a",), nbytes=10), Record(2, 1, ("b",), nbytes=5)],
        )
        assert batch.data_bytes == 15

    def test_postings_carry_day_timestamp(self):
        batch = DayBatch(day=4, records=[Record(9, 4, ("x", "y"))])
        postings = list(batch.postings())
        assert postings == [("x", Entry(9, 4)), ("y", Entry(9, 4))]

    def test_grouped(self):
        batch = DayBatch(
            day=1, records=[Record(1, 1, ("a",)), Record(2, 1, ("a", "b"))]
        )
        grouped = batch.grouped()
        assert [e.record_id for e in grouped["a"]] == [1, 2]
        assert [e.record_id for e in grouped["b"]] == [2]


class TestRecordStore:
    def test_add_and_fetch(self):
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ("a",))])
        assert store.has_day(1)
        assert not store.has_day(2)
        assert store.batch(1).entry_count == 1
        assert store.days == [1]

    def test_duplicate_day_rejected(self):
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ("a",))])
        with pytest.raises(WorkloadError):
            store.add_records(1, [Record(2, 1, ("b",))])

    def test_missing_day_rejected(self):
        with pytest.raises(WorkloadError):
            RecordStore().batch(9)

    def test_grouped_for_merges_days_in_order(self):
        store = RecordStore()
        store.add_records(2, [Record(20, 2, ("a",))])
        store.add_records(1, [Record(10, 1, ("a",))])
        grouped = store.grouped_for([2, 1])
        assert [e.record_id for e in grouped["a"]] == [10, 20]

    def test_data_bytes_for(self):
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ("a",), nbytes=7)])
        store.add_records(2, [Record(2, 2, ("a",), nbytes=3)])
        assert store.data_bytes_for([1, 2]) == 10
        assert store.data_bytes_for([1, 1, 2]) == 10  # days deduplicated

    def test_brute_probe(self):
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ("a", "b"))])
        store.add_records(2, [Record(2, 2, ("a",))])
        store.add_records(3, [Record(3, 3, ("a",))])
        hits = store.brute_probe("a", 2, 3)
        assert [e.record_id for e in hits] == [2, 3]
        assert store.brute_probe("zzz", 1, 3) == []

    def test_brute_scan(self):
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ("a", "b"))])
        store.add_records(2, [Record(2, 2, ("c",))])
        hits = store.brute_scan(1, 1)
        assert [e.record_id for e in hits] == [1, 1]  # one per value
