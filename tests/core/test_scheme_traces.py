"""Exact regeneration of the paper's example transition tables (Tables 1-7).

Each test drives a scheme through the days the paper tabulates and asserts
the index contents cell by cell.
"""

from repro.core.schemes import (
    DelScheme,
    RataStarScheme,
    ReindexPlusPlusScheme,
    ReindexPlusScheme,
    ReindexScheme,
    WataStarScheme,
    WataTable4Scheme,
)
from repro.core.trace import format_trace, trace_scheme


def contents(rows, day):
    """Return {index: days tuple} for a given day's row."""
    row = next(r for r in rows if r.day == day)
    merged = dict(row.constituents)
    merged.update(row.temporaries)
    return merged


class TestTable1Del:
    def test_table1(self):
        rows = trace_scheme(DelScheme(10, 2), 13)
        assert contents(rows, 10) == {
            "I1": (1, 2, 3, 4, 5),
            "I2": (6, 7, 8, 9, 10),
        }
        assert contents(rows, 11)["I1"] == (2, 3, 4, 5, 11)
        assert contents(rows, 12)["I1"] == (3, 4, 5, 11, 12)
        assert contents(rows, 13)["I1"] == (4, 5, 11, 12, 13)
        assert all(contents(rows, d)["I2"] == (6, 7, 8, 9, 10) for d in (11, 12, 13))

    def test_operations_are_delete_then_add(self):
        rows = trace_scheme(DelScheme(10, 2), 11)
        ops = rows[1].operations[0]
        assert "DeleteFromIndex({1}, I1)" in ops
        assert "AddToIndex({11}, I1)" in ops


class TestTable2Reindex:
    def test_table2(self):
        rows = trace_scheme(ReindexScheme(10, 2), 13)
        assert contents(rows, 11)["I1"] == (2, 3, 4, 5, 11)
        assert contents(rows, 13)["I1"] == (4, 5, 11, 12, 13)
        assert rows[1].operations == ("I1 <- BuildIndex({2, 3, 4, 5, 11})",)


class TestTable3WataStar:
    def test_table3(self):
        rows = trace_scheme(WataStarScheme(10, 4), 14)
        assert contents(rows, 10) == {
            "I1": (1, 2, 3),
            "I2": (4, 5, 6),
            "I3": (7, 8, 9),
            "I4": (10,),
        }
        # Days 11, 12: wait, appending to I4.
        assert contents(rows, 11)["I4"] == (10, 11)
        assert contents(rows, 12)["I4"] == (10, 11, 12)
        assert contents(rows, 12)["I1"] == (1, 2, 3)  # soft window residue
        # Day 13: I1 fully expired -> throw away, restart with day 13.
        assert contents(rows, 13)["I1"] == (13,)
        assert "DropIndex(I1)" in rows[3].operations
        # Day 14: wait again on the fresh I1.
        assert contents(rows, 14)["I1"] == (13, 14)


class TestTable4WataVariant:
    def test_table4(self):
        rows = trace_scheme(WataTable4Scheme(10, 4), 14)
        assert contents(rows, 10) == {
            "I1": (1, 2, 3, 4),
            "I2": (5, 6, 7),
            "I3": (8, 9, 10),
            "I4": (),
        }
        assert contents(rows, 13)["I4"] == (11, 12, 13)
        assert contents(rows, 13)["I1"] == (1, 2, 3, 4)
        assert contents(rows, 14)["I1"] == (14,)  # thrown away on day 14

    def test_variant_has_larger_length_than_star(self):
        # The paper: Table 4's clustering peaks at length 13, Table 3's at 12.
        star_rows = trace_scheme(WataStarScheme(10, 4), 40)
        var_rows = trace_scheme(WataTable4Scheme(10, 4), 40)

        def max_len(rows):
            return max(
                sum(len(days) for days in r.constituents.values()) for r in rows
            )

        assert max_len(star_rows) == 12
        assert max_len(var_rows) == 13


class TestTable5ReindexPlus:
    def test_table5(self):
        rows = trace_scheme(ReindexPlusScheme(10, 2), 16)
        assert contents(rows, 11) == {
            "I1": (2, 3, 4, 5, 11),
            "I2": (6, 7, 8, 9, 10),
            "Temp": (11,),
        }
        assert contents(rows, 13)["Temp"] == (11, 12, 13)
        assert contents(rows, 14)["I1"] == (5, 11, 12, 13, 14)
        # Day 15 closes the cycle: Temp resets.
        assert contents(rows, 15)["I1"] == (11, 12, 13, 14, 15)
        assert contents(rows, 15)["Temp"] == ()
        # Day 16 starts the next cycle against I2.
        assert contents(rows, 16)["I2"] == (7, 8, 9, 10, 16)
        assert contents(rows, 16)["Temp"] == (16,)


class TestTable6ReindexPlusPlus:
    def test_table6_start_ladder(self):
        rows = trace_scheme(ReindexPlusPlusScheme(10, 2), 16)
        start = contents(rows, 10)
        assert start["T0"] == ()
        assert start["T1"] == (5,)
        assert start["T2"] == (4, 5)
        assert start["T3"] == (3, 4, 5)
        assert start["T4"] == (2, 3, 4, 5)

    def test_table6_transitions(self):
        rows = trace_scheme(ReindexPlusPlusScheme(10, 2), 16)
        assert contents(rows, 11)["I1"] == (2, 3, 4, 5, 11)
        assert contents(rows, 11)["T3"] == (3, 4, 5, 11)
        assert contents(rows, 12)["I1"] == (3, 4, 5, 11, 12)
        assert contents(rows, 12)["T2"] == (4, 5, 11, 12)
        assert contents(rows, 14)["T0"] == (11, 12, 13, 14)
        assert contents(rows, 15)["I1"] == (11, 12, 13, 14, 15)
        # Ladder rebuilt for I2's cluster on day 15.
        assert contents(rows, 15)["T4"] == (7, 8, 9, 10)
        assert contents(rows, 16)["I2"] == (7, 8, 9, 10, 16)

    def test_transition_op_is_single_add_plus_rename(self):
        scheme = ReindexPlusPlusScheme(10, 2)
        scheme.start_ops()
        plan = scheme.transition_ops(11)
        from repro.core.ops import AddOp, Phase, RenameOp

        transition_ops = [op for op in plan if op.phase is Phase.TRANSITION]
        assert len(transition_ops) == 2
        assert isinstance(transition_ops[0], AddOp)
        assert isinstance(transition_ops[1], RenameOp)


class TestTable7Rata:
    def test_table7(self):
        rows = trace_scheme(RataStarScheme(10, 4), 14)
        start = contents(rows, 10)
        assert start["R1"] == (3,)
        assert start["R2"] == (2, 3)
        assert contents(rows, 11)["I1"] == (2, 3)
        assert contents(rows, 11)["I4"] == (10, 11)
        assert contents(rows, 12)["I1"] == (3,)
        assert contents(rows, 13)["I1"] == (13,)
        assert contents(rows, 13)["R2"] == (5, 6)
        assert contents(rows, 14)["I2"] == (5, 6)
        assert contents(rows, 14)["I1"] == (13, 14)


class TestFormatting:
    def test_format_trace_renders_all_columns(self):
        rows = trace_scheme(ReindexPlusScheme(10, 2), 12)
        text = format_trace(rows, title="Table 5")
        assert "Table 5" in text
        assert "I1" in text and "I2" in text and "Temp" in text
        assert "{d11, d12}" in text

    def test_trace_requires_last_day_past_start(self):
        import pytest

        with pytest.raises(ValueError):
            trace_scheme(DelScheme(10, 2), 9)
