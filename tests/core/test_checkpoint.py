"""Tests for wave-index checkpoint and recovery.

The defining property: a run that is checkpointed, torn down, restored, and
continued must behave *identically* (same day-sets, same query results) to
an uninterrupted run — for every scheme, at every possible checkpoint day.
"""

import pytest

from repro.core.checkpoint import (
    checkpoint_from_json,
    checkpoint_to_json,
    restore,
    restore_scheme,
    take_checkpoint,
)
from repro.core.executor import PlanExecutor
from repro.core.schemes import ALL_SCHEMES, DelScheme, ReindexPlusScheme
from repro.core.symbolic import SymbolicState
from repro.core.wave import WaveIndex
from repro.errors import SchemeError
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

WINDOW, N, LAST = 8, 3, 24


@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES, ids=lambda c: c.name)
@pytest.mark.parametrize("checkpoint_day", [WINDOW, WINDOW + 3, WINDOW + 9])
class TestResumeEquivalence:
    def test_symbolic_resume_matches_uninterrupted(
        self, scheme_cls, checkpoint_day
    ):
        if N < scheme_cls.min_indexes:
            pytest.skip("n too small")
        # Uninterrupted run.
        straight = scheme_cls(WINDOW, N)
        state_a = SymbolicState(straight.index_names)
        state_a.apply_plan(straight.start_ops())
        for day in range(WINDOW + 1, LAST + 1):
            state_a.apply_plan(straight.transition_ops(day))

        # Interrupted run: checkpoint at checkpoint_day, restore, continue.
        first = scheme_cls(WINDOW, N)
        state_b = SymbolicState(first.index_names)
        state_b.apply_plan(first.start_ops())
        for day in range(WINDOW + 1, checkpoint_day + 1):
            state_b.apply_plan(first.transition_ops(day))
        blob = checkpoint_to_json(take_checkpoint(first))
        resumed = restore_scheme(checkpoint_from_json(blob))
        for day in range(checkpoint_day + 1, LAST + 1):
            state_b.apply_plan(resumed.transition_ops(day))

        assert state_a.bindings == state_b.bindings
        assert resumed.days == straight.days

    def test_storage_restore_serves_identical_queries(
        self, scheme_cls, checkpoint_day
    ):
        if N < scheme_cls.min_indexes:
            pytest.skip("n too small")
        store = make_store(LAST, seed=23)

        def run_to(day, scheme, executor):
            for d in range(scheme.window + 1, day + 1):
                executor.execute(scheme.transition_ops(d))

        # Uninterrupted.
        disk_a = SimulatedDisk()
        wave_a = WaveIndex(disk_a, IndexConfig(), N)
        scheme_a = scheme_cls(WINDOW, N)
        ex_a = PlanExecutor(wave_a, store, UpdateTechnique.SIMPLE_SHADOW)
        ex_a.execute(scheme_a.start_ops())
        run_to(LAST, scheme_a, ex_a)

        # Interrupted at checkpoint_day.
        disk_b = SimulatedDisk()
        wave_b = WaveIndex(disk_b, IndexConfig(), N)
        scheme_b = scheme_cls(WINDOW, N)
        ex_b = PlanExecutor(wave_b, store, UpdateTechnique.SIMPLE_SHADOW)
        ex_b.execute(scheme_b.start_ops())
        run_to(checkpoint_day, scheme_b, ex_b)
        checkpoint = take_checkpoint(scheme_b)

        disk_c = SimulatedDisk()
        scheme_c, wave_c = restore(checkpoint, store, disk_c, IndexConfig())
        ex_c = PlanExecutor(wave_c, store, UpdateTechnique.SIMPLE_SHADOW)
        for day in range(checkpoint_day + 1, LAST + 1):
            ex_c.execute(scheme_c.transition_ops(day))

        assert wave_c.days_by_name() == wave_a.days_by_name()
        lo, hi = LAST - WINDOW + 1, LAST
        for value in "abcdefgh":
            assert sorted(
                wave_c.timed_index_probe(value, lo, hi).record_ids
            ) == sorted(wave_a.timed_index_probe(value, lo, hi).record_ids)


class TestCheckpointValidation:
    def test_unstarted_scheme_rejected(self):
        with pytest.raises(SchemeError):
            take_checkpoint(DelScheme(5, 1))

    def test_version_checked(self):
        scheme = DelScheme(5, 1)
        scheme.start_ops()
        checkpoint = take_checkpoint(scheme)
        checkpoint["version"] = 99
        with pytest.raises(SchemeError):
            restore_scheme(checkpoint)

    def test_wrong_configuration_rejected(self):
        scheme = DelScheme(5, 1)
        scheme.start_ops()
        state = scheme.get_state()
        other = DelScheme(6, 1)
        with pytest.raises(SchemeError):
            other.restore_state(state)
        wrong_kind = ReindexPlusScheme(5, 1)
        with pytest.raises(SchemeError):
            wrong_kind.restore_state(state)

    def test_malformed_json_rejected(self):
        with pytest.raises(SchemeError):
            checkpoint_from_json('{"not": "a checkpoint"}')

    def test_json_roundtrip_is_identity(self):
        scheme = ReindexPlusScheme(6, 2)
        scheme.start_ops()
        scheme.transition_ops(7)
        checkpoint = take_checkpoint(scheme)
        assert checkpoint_from_json(checkpoint_to_json(checkpoint)) == checkpoint

    def test_restored_indexes_are_packed(self):
        """Recovery rebuilds packed — the best-structured restart state."""
        store = make_store(12, seed=3)
        scheme = DelScheme(8, 2)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 2)
        ex = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        ex.execute(scheme.start_ops())
        ex.execute(scheme.transition_ops(9))
        checkpoint = take_checkpoint(scheme)
        _, restored_wave = restore(
            checkpoint, store, SimulatedDisk(), IndexConfig()
        )
        for index in restored_wave.live_constituents():
            assert index.packed


class TestExtensionSchemeCheckpoints:
    def test_batched_del_resume_preserves_pending(self):
        from repro.core.schemes import BatchedDelScheme

        def fresh():
            return BatchedDelScheme(WINDOW, N, batch_days=4)

        straight = fresh()
        state_a = SymbolicState(straight.index_names)
        state_a.apply_plan(straight.start_ops())
        for day in range(WINDOW + 1, LAST + 1):
            state_a.apply_plan(straight.transition_ops(day))

        first = fresh()
        state_b = SymbolicState(first.index_names)
        state_b.apply_plan(first.start_ops())
        checkpoint_day = WINDOW + 5  # mid-batch: pending is non-empty
        for day in range(WINDOW + 1, checkpoint_day + 1):
            state_b.apply_plan(first.transition_ops(day))
        assert first.pending_expired  # the interesting case
        blob = checkpoint_to_json(take_checkpoint(first))
        resumed = restore_scheme(checkpoint_from_json(blob))
        assert resumed.pending_expired == first.pending_expired
        for day in range(checkpoint_day + 1, LAST + 1):
            state_b.apply_plan(resumed.transition_ops(day))
        assert state_a.bindings == state_b.bindings

    def test_batched_del_batch_mismatch_rejected(self):
        from repro.core.schemes import BatchedDelScheme

        scheme = BatchedDelScheme(WINDOW, N, batch_days=4)
        scheme.start_ops()
        state = scheme.get_state()
        other = BatchedDelScheme(WINDOW, N, batch_days=2)
        with pytest.raises(SchemeError):
            other.restore_state(state)

    def test_wata_size_resume_preserves_sizes(self):
        import random

        from repro.core.schemes.wata_size import WataSizeAwareScheme

        rng = random.Random(8)
        weights = [rng.uniform(0.3, 2.0) for _ in range(LAST)]
        m = max(
            sum(weights[i : i + WINDOW]) for i in range(LAST - WINDOW + 1)
        )

        def fresh():
            return WataSizeAwareScheme(
                WINDOW, N, max_window_size=m,
                day_size=lambda d: weights[d - 1],
            )

        straight = fresh()
        state_a = SymbolicState(straight.index_names)
        state_a.apply_plan(straight.start_ops())
        for day in range(WINDOW + 1, LAST + 1):
            state_a.apply_plan(straight.transition_ops(day))

        first = fresh()
        state_b = SymbolicState(first.index_names)
        state_b.apply_plan(first.start_ops())
        for day in range(WINDOW + 1, WINDOW + 7):
            state_b.apply_plan(first.transition_ops(day))
        checkpoint = take_checkpoint(first)
        resumed = fresh()
        resumed.restore_state(checkpoint["scheme"])
        assert resumed.total_size() == pytest.approx(first.total_size())
        for day in range(WINDOW + 7, LAST + 1):
            state_b.apply_plan(resumed.transition_ops(day))
        assert state_a.bindings == state_b.bindings
