"""Differential tests: the heavyweight cross-checks of the whole stack.

1. For every (scheme, technique), queries against the maintained wave index
   must equal brute force over the record store, on every day.
2. Storage execution and symbolic execution of the same plans must agree on
   every binding's time-set, on every day.
"""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.schemes import ALL_SCHEMES
from repro.core.symbolic import SymbolicState
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

WINDOW, N, LAST_DAY = 10, 4, 26
VALUES = "abcdefgh"


@pytest.mark.parametrize("technique", list(UpdateTechnique), ids=lambda t: t.value)
@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES, ids=lambda c: c.name)
class TestQueriesMatchBruteForce:
    def test_probe_and_scan_equal_oracle(self, scheme_cls, technique):
        store = make_store(LAST_DAY, seed=5)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), N)
        executor = PlanExecutor(wave, store, technique)
        scheme = scheme_cls(WINDOW, N)
        executor.execute(scheme.start_ops())
        for day in range(WINDOW + 1, LAST_DAY + 1):
            executor.execute(scheme.transition_ops(day))
            lo, hi = day - WINDOW + 1, day
            for value in VALUES:
                got = sorted(wave.timed_index_probe(value, lo, hi).record_ids)
                want = sorted(
                    e.record_id for e in store.brute_probe(value, lo, hi)
                )
                assert got == want, (day, value)
            got = sorted(wave.timed_segment_scan(lo, hi).record_ids)
            want = sorted(e.record_id for e in store.brute_scan(lo, hi))
            assert got == want, day
            disk.check_invariants()

    def test_no_space_leak_over_run(self, scheme_cls, technique):
        store = make_store(LAST_DAY, seed=6)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), N)
        executor = PlanExecutor(wave, store, technique)
        scheme = scheme_cls(WINDOW, N)
        executor.execute(scheme.start_ops())
        for day in range(WINDOW + 1, LAST_DAY + 1):
            executor.execute(scheme.transition_ops(day))
        # Everything live belongs to current bindings; nothing leaked.
        bound = sum(i.allocated_bytes for i in wave.bindings.values())
        assert disk.live_bytes == bound


@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES, ids=lambda c: c.name)
class TestStorageMatchesSymbolic:
    def test_time_sets_agree_every_day(self, scheme_cls):
        store = make_store(LAST_DAY, seed=7)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), N)
        executor = PlanExecutor(
            wave, store, UpdateTechnique.SIMPLE_SHADOW
        )
        storage_scheme = scheme_cls(WINDOW, N)
        symbolic_scheme = scheme_cls(WINDOW, N)
        state = SymbolicState(symbolic_scheme.index_names)

        executor.execute(storage_scheme.start_ops())
        state.apply_plan(symbolic_scheme.start_ops())
        assert wave.days_by_name() == state.bindings

        for day in range(WINDOW + 1, LAST_DAY + 1):
            executor.execute(storage_scheme.transition_ops(day))
            state.apply_plan(symbolic_scheme.transition_ops(day))
            assert wave.days_by_name() == state.bindings, day
