"""Tests for the plan executor: op semantics, techniques, phase charging."""

import pytest

from repro.core.executor import PhaseSeconds, PlanExecutor
from repro.core.ops import (
    AddOp,
    BuildOp,
    CopyOp,
    CreateEmptyOp,
    DeleteOp,
    DropOp,
    Phase,
    RenameOp,
    UpdateOp,
)
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store


@pytest.fixture
def env():
    disk = SimulatedDisk()
    store = make_store(20)
    wave = WaveIndex(disk, IndexConfig(), n_indexes=2)
    return disk, store, wave


def executor_for(env, technique=UpdateTechnique.SIMPLE_SHADOW):
    disk, store, wave = env
    return PlanExecutor(wave, store, technique)


class TestPhaseSeconds:
    def test_accumulation(self):
        seconds = PhaseSeconds()
        seconds.add(Phase.PRECOMPUTE, 1.0)
        seconds.add(Phase.TRANSITION, 2.0)
        seconds.add(Phase.POST, 4.0)
        assert seconds.precomputation == 5.0
        assert seconds.total == 7.0

    def test_iadd(self):
        a = PhaseSeconds(precompute=1, transition=2, post=3)
        a += PhaseSeconds(precompute=10, transition=20, post=30)
        assert (a.precompute, a.transition, a.post) == (11, 22, 33)


class TestOps:
    def test_build_binds_packed_index(self, env):
        ex = executor_for(env)
        ex.execute([BuildOp(target="I1", days=(1, 2))])
        idx = ex.wave.get("I1")
        assert idx.packed
        assert idx.days == {1, 2}

    def test_build_swaps_and_drops_old(self, env):
        ex = executor_for(env)
        ex.execute([BuildOp(target="I1", days=(1,))])
        old = ex.wave.get("I1")
        ex.execute([BuildOp(target="I1", days=(2,))])
        assert old.dropped
        assert ex.wave.get("I1").days == {2}

    def test_create_empty(self, env):
        ex = executor_for(env)
        ex.execute([CreateEmptyOp(target="Temp")])
        assert ex.wave.get("Temp").entry_count == 0

    def test_add_and_delete_roundtrip(self, env):
        ex = executor_for(env)
        ex.execute([BuildOp(target="I1", days=(1,))])
        ex.execute([AddOp(target="I1", days=(2,))])
        assert ex.wave.get("I1").days == {1, 2}
        ex.execute([DeleteOp(target="I1", days=(1,))])
        assert ex.wave.get("I1").days == {2}

    def test_copy_then_mutate_leaves_source_alone(self, env):
        ex = executor_for(env)
        ex.execute(
            [
                BuildOp(target="Temp", days=(1,)),
                CopyOp(source="Temp", target="I1"),
                AddOp(target="I1", days=(2,)),
            ]
        )
        assert ex.wave.get("Temp").days == {1}
        assert ex.wave.get("I1").days == {1, 2}

    def test_rename_moves_and_drops_old_target(self, env):
        ex = executor_for(env)
        ex.execute([BuildOp(target="I1", days=(1,)), BuildOp(target="T1", days=(2,))])
        old = ex.wave.get("I1")
        ex.execute([RenameOp(source="T1", target="I1")])
        assert old.dropped
        assert ex.wave.get("I1").days == {2}
        assert ex.wave.get_optional("T1") is None

    def test_drop(self, env):
        ex = executor_for(env)
        ex.execute([BuildOp(target="I1", days=(1,))])
        idx = ex.wave.get("I1")
        ex.execute([DropOp(target="I1")])
        assert idx.dropped
        assert ex.wave.get_optional("I1") is None


class TestTechniqueRouting:
    def test_temp_indexes_always_updated_in_place(self, env):
        """Adding to a temporary never shadows, even under simple shadow."""
        ex = executor_for(env, UpdateTechnique.SIMPLE_SHADOW)
        ex.execute([BuildOp(target="Temp", days=(1,))])
        temp = ex.wave.get("Temp")
        ex.execute([AddOp(target="Temp", days=(2,))])
        assert ex.wave.get("Temp") is temp  # same object: in-place

    def test_constituent_shadowed_under_simple_shadow(self, env):
        ex = executor_for(env, UpdateTechnique.SIMPLE_SHADOW)
        ex.execute([BuildOp(target="I1", days=(1,))])
        original = ex.wave.get("I1")
        ex.execute([AddOp(target="I1", days=(2,))])
        assert ex.wave.get("I1") is not original
        assert original.dropped

    def test_packed_shadow_add_produces_packed(self, env):
        ex = executor_for(env, UpdateTechnique.PACKED_SHADOW)
        ex.execute([BuildOp(target="I1", days=(1,))])
        ex.execute([AddOp(target="I1", days=(2,))])
        idx = ex.wave.get("I1")
        assert idx.packed
        assert idx.allocated_bytes == idx.used_bytes

    def test_in_place_add_keeps_object(self, env):
        ex = executor_for(env, UpdateTechnique.IN_PLACE)
        ex.execute([BuildOp(target="I1", days=(1,))])
        idx = ex.wave.get("I1")
        ex.execute([AddOp(target="I1", days=(2,))])
        assert ex.wave.get("I1") is idx


class TestUpdateOpPhases:
    @pytest.mark.parametrize(
        "technique,expect_pre",
        [
            (UpdateTechnique.IN_PLACE, True),
            (UpdateTechnique.SIMPLE_SHADOW, True),
            (UpdateTechnique.PACKED_SHADOW, False),
        ],
    )
    def test_phase_split(self, env, technique, expect_pre):
        ex = executor_for(env, technique)
        ex.execute([BuildOp(target="I1", days=(1, 2))])
        report = ex.execute(
            [UpdateOp(target="I1", add_days=(3,), delete_days=(1,))]
        )
        assert ex.wave.get("I1").days == {2, 3}
        assert report.seconds.transition > 0
        if expect_pre:
            assert report.seconds.precompute > 0
        else:
            assert report.seconds.precompute == 0.0

    def test_simple_shadow_fused_cheaper_than_split(self):
        """UpdateOp's whole point: one shadow copy, not two."""

        def run(plan_factory):
            disk = SimulatedDisk()
            store = make_store(20)
            wave = WaveIndex(disk, IndexConfig(), n_indexes=2)
            ex = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
            ex.execute([BuildOp(target="I1", days=(1, 2, 3))])
            before = disk.snapshot()
            ex.execute(plan_factory())
            return (disk.snapshot() - before).bytes_read

        fused = run(
            lambda: [UpdateOp(target="I1", add_days=(4,), delete_days=(1,))]
        )
        split = run(
            lambda: [
                DeleteOp(target="I1", days=(1,)),
                AddOp(target="I1", days=(4,)),
            ]
        )
        assert fused < split


class TestSpacePeaks:
    def test_peak_includes_shadow(self, env):
        disk, store, wave = env
        ex = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        ex.execute([BuildOp(target="I1", days=(1, 2, 3))])
        steady = disk.live_bytes
        report = ex.execute([AddOp(target="I1", days=(4,))])
        assert report.peak_bytes >= steady + 0.9 * steady  # ~2x during shadow

    def test_unknown_op_rejected(self, env):
        from repro.errors import SchemeError

        ex = executor_for(env)

        class FakeOp:
            phase = Phase.TRANSITION

        with pytest.raises(SchemeError):
            ex.execute([FakeOp()])
