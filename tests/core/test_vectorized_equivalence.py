"""Bit-identical equivalence of the vectorized kernels and the object path.

The kernels (`repro.index.kernels`) promise that flipping the module
switch changes *nothing observable*: batched queries return the same
answers in the same order, simulated clocks and I/O statistics charge
the same costs, page-cache counters agree, and a wave serialises to the
same snapshot bytes.  These tests run the same workloads twice — kernels
on and off — and compare everything.
"""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.persistence import wave_to_json
from repro.core.schemes import DelScheme
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from repro.index.kernels import vectorized
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from repro.storage.pagecache import PageCache
from tests.conftest import make_store

WINDOW, N, LAST = 6, 3, 12
LO, HI = LAST - WINDOW + 1, LAST


def build_wave(disk):
    store = make_store(LAST, seed=13)
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = DelScheme(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, LAST + 1):
        executor.execute(scheme.transition_ops(day))
    return wave


PROBE_REQUESTS = [
    ("a", LO, HI),
    ("a", LO, HI),  # duplicate spec: shares one result
    ("b", LO, HI - 2),
    ("a", LO + 1, HI),  # same value, different range
    ("c", LO + 3, HI),
    ("z", LO, HI),  # absent value
    ("b", LO, HI - 2),  # duplicate of an earlier spec
]

SCAN_REQUESTS = [(LO, HI), (HI, HI), (LO, HI), (LO, LO + 1), (HI, HI)]


def serve(enabled, page_cache=None, offline=None, degraded=False):
    """Build and serve one full workload with the kernels pinned."""
    with vectorized(enabled):
        disk = SimulatedDisk(page_cache=page_cache)
        wave = build_wave(disk)
        if offline:
            wave.mark_offline(offline)
        probe = wave.probe_many(PROBE_REQUESTS, degraded=degraded)
        scan = wave.scan_many(SCAN_REQUESTS, degraded=degraded)
        probe2 = wave.probe_many(PROBE_REQUESTS, degraded=degraded)  # warm
        return {
            "probe_results": tuple(probe.results),
            "probe_summary": probe.summary,
            "scan_results": tuple(scan.results),
            "scan_summary": scan.summary,
            "warm_results": tuple(probe2.results),
            "warm_summary": probe2.summary,
            "clock": disk.clock,
            "io": disk.stats.snapshot(),
            "cache": (
                disk.page_cache.snapshot() if disk.page_cache else None
            ),
            "snapshot_json": wave_to_json(wave),
        }


def assert_equivalent(on, off):
    assert on["probe_results"] == off["probe_results"]
    assert on["probe_summary"] == off["probe_summary"]
    assert on["scan_results"] == off["scan_results"]
    assert on["scan_summary"] == off["scan_summary"]
    assert on["warm_results"] == off["warm_results"]
    assert on["warm_summary"] == off["warm_summary"]
    assert on["clock"] == off["clock"]
    assert on["io"] == off["io"]
    assert on["cache"] == off["cache"]
    assert on["snapshot_json"] == off["snapshot_json"]


class TestBatchedServingEquivalence:
    def test_uncached_serving_is_bit_identical(self):
        assert_equivalent(serve(True), serve(False))

    def test_cached_serving_is_bit_identical(self):
        on = serve(True, page_cache=PageCache(1 << 18))
        off = serve(False, page_cache=PageCache(1 << 18))
        assert on["cache"] is not None and on["cache"].hits > 0
        assert_equivalent(on, off)

    def test_degraded_serving_is_bit_identical(self):
        on = serve(True, offline="I1", degraded=True)
        off = serve(False, offline="I1", degraded=True)
        assert any(r.missing_days for r in on["probe_results"])
        assert_equivalent(on, off)

    def test_duplicate_requests_share_identical_results(self):
        with vectorized(True):
            wave = build_wave(SimulatedDisk())
            batch = wave.probe_many(PROBE_REQUESTS)
        # Requests 0 and 1 are the same spec: the vectorized path hands
        # both the same immutable result, and the answer still matches a
        # solo probe.
        assert batch.results[0] == batch.results[1]
        solo = wave.timed_index_probe("a", LO, HI)
        assert sorted(batch.results[0].record_ids) == sorted(solo.record_ids)

    def test_weighted_cost_shares_match_reference(self):
        # 3 duplicates + 1 distinct value: every copy must be charged the
        # same share the object path computes per-request.
        requests = [("a", LO, HI)] * 3 + [("b", LO, HI)]
        with vectorized(True):
            on = build_wave(SimulatedDisk()).probe_many(requests)
        with vectorized(False):
            off = build_wave(SimulatedDisk()).probe_many(requests)
        assert [r.seconds for r in on] == [r.seconds for r in off]
        assert on.summary.duplicate_hits == off.summary.duplicate_hits


class TestSingleQueryEquivalence:
    @pytest.mark.parametrize("value", ["a", "b", "z"])
    def test_timed_probe(self, value):
        results = {}
        for enabled in (True, False):
            with vectorized(enabled):
                disk = SimulatedDisk()
                wave = build_wave(disk)
                results[enabled] = (
                    wave.timed_index_probe(value, LO + 1, HI - 1),
                    disk.clock,
                )
        assert results[True] == results[False]

    def test_timed_scan(self):
        results = {}
        for enabled in (True, False):
            with vectorized(enabled):
                disk = SimulatedDisk()
                wave = build_wave(disk)
                results[enabled] = (
                    wave.timed_segment_scan(LO + 1, HI - 1),
                    disk.clock,
                )
        assert results[True] == results[False]

    def test_maintenance_produces_identical_snapshots(self):
        # The whole build (packed builds, appends, delete_days) must not
        # depend on the switch either.
        snapshots = {}
        for enabled in (True, False):
            with vectorized(enabled):
                disk = SimulatedDisk()
                snapshots[enabled] = (
                    wave_to_json(build_wave(disk)),
                    disk.clock,
                )
        assert snapshots[True] == snapshots[False]
