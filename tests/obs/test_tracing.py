"""Tests for span tracing on the simulated clock."""

import pytest

from repro.obs import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpans:
    def test_span_measures_clock_delta(self, tracer, clock):
        with tracer.span("work"):
            clock.now += 2.5
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.duration_s == 2.5
        assert span.parent_id is None
        assert span.depth == 0

    def test_tags_recorded(self, tracer, clock):
        with tracer.span("day", day=11, batch=256):
            clock.now += 1.0
        assert tracer.spans[0].tags == {"day": 11, "batch": 256}

    def test_unfinished_span_has_no_duration(self, tracer, clock):
        with tracer.span("work") as span:
            with pytest.raises(ValueError):
                span.duration_s

    def test_nesting_sets_parent_and_depth(self, tracer, clock):
        with tracer.span("day") as day:
            with tracer.span("maintenance") as maint:
                clock.now += 1.0
            with tracer.span("queries"):
                clock.now += 3.0
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["maintenance"].parent_id == day.span_id
        assert by_name["maintenance"].depth == 1
        assert by_name["day"].depth == 0
        assert maint.duration_s == 1.0

    def test_exclusive_time_subtracts_children(self, tracer, clock):
        with tracer.span("day"):
            clock.now += 0.5
            with tracer.span("maintenance"):
                clock.now += 2.0
            clock.now += 0.25
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["day"].duration_s == 2.75
        assert by_name["day"].exclusive_s == pytest.approx(0.75)
        assert by_name["maintenance"].exclusive_s == 2.0

    def test_completion_order(self, tracer, clock):
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.now += 1.0
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_exception_still_closes_span(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                clock.now += 1.0
                raise RuntimeError("boom")
        assert tracer.spans[0].end_s == 1.0
        assert tracer.active_depth == 0


class TestAggregation:
    def test_phase_seconds_sums_exclusive_by_name(self, tracer, clock):
        for _ in range(3):
            with tracer.span("day"):
                with tracer.span("queries"):
                    clock.now += 2.0
        phases = tracer.phase_seconds()
        assert phases["queries"] == pytest.approx(6.0)
        assert phases["day"] == pytest.approx(0.0)

    def test_to_dicts_is_json_serialisable(self, tracer, clock):
        import json

        with tracer.span("day", day=7):
            clock.now += 1.0
        (d,) = tracer.to_dicts()
        json.dumps(d)
        assert d["name"] == "day"
        assert d["duration_s"] == 1.0

    def test_clear_keeps_open_spans_working(self, tracer, clock):
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.now += 1.0
            tracer.clear()
            clock.now += 1.0
        assert [s.name for s in tracer.spans] == ["outer"]


class TestRetention:
    def test_retention_cap_drops_oldest(self, clock):
        tracer = Tracer(clock, max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                clock.now += 1.0
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]

    def test_max_spans_validated(self, clock):
        with pytest.raises(ValueError):
            Tracer(clock, max_spans=0)
