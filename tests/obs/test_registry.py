"""Tests for the observability counter/histogram registry."""

import pytest

from repro.obs import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_defaults_to_one(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_empty_histogram_is_all_zero(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.summary()["p99"] == 0.0

    def test_stats(self):
        h = Histogram("lat")
        for v in [4.0, 1.0, 3.0, 2.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0

    def test_nearest_rank_quantiles(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "total", "mean", "min", "p50", "p95", "p99", "max"
        }


class TestRegistry:
    def test_create_on_first_use_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("io.seeks") is reg.counter("io.seeks")
        assert reg.histogram("lat") is reg.histogram("lat")

    def test_cross_kind_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.histogram("x")
        reg.histogram("y")
        with pytest.raises(ValueError):
            reg.counter("y")

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("io.seeks").inc(7)
        reg.histogram("lat").observe(0.014)
        snap = reg.snapshot()
        assert snap["counters"] == {"io.seeks": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.counters() == {}
        assert reg.counter("x").value == 0.0


class TestCounterWindow:
    def test_delta_measures_growth_since_open(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(5)
        window = reg.window("x")
        reg.counter("x").inc(3)
        assert window.delta("x") == 3.0

    def test_named_counter_created_inside_the_interval(self):
        reg = MetricsRegistry()
        window = reg.window("late")
        reg.counter("late").inc(4)
        assert window.delta("late") == 4.0
        assert window.deltas() == {"late": 4.0}

    def test_unnamed_window_baselines_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(10)
        window = reg.window()
        reg.counter("a").inc(1)
        reg.counter("b").inc(2)  # arrives after the window opened
        assert window.deltas() == {"a": 1.0, "b": 2.0}

    def test_deltas_filters_by_prefix(self):
        reg = MetricsRegistry()
        window = reg.window()
        reg.counter("advisor.shard0.probes").inc(3)
        reg.counter("io.seeks").inc(9)
        assert window.deltas("advisor.") == {"advisor.shard0.probes": 3.0}

    def test_advance_rolls_the_baseline(self):
        reg = MetricsRegistry()
        window = reg.window("x")
        reg.counter("x").inc(7)
        first = window.advance()
        reg.counter("x").inc(2)
        second = window.advance()
        assert first == {"x": 7.0}
        assert second == {"x": 2.0}

    def test_named_window_reports_zero_deltas_explicitly(self):
        # Per-day consumers want the key present even on a quiet day.
        reg = MetricsRegistry()
        window = reg.window("quiet")
        assert window.deltas() == {"quiet": 0.0}
