"""Tests for the crash-matrix harness.

The exhaustive matrix (all schemes, three cycles) runs from the CLI / CI
smoke job; here a small configuration exercises the harness mechanics.
"""

import pytest

from repro.sim.crashmatrix import (
    CrashCell,
    DEFAULT_SCHEMES,
    run_crash_matrix,
)
from repro.storage.faults import CrashPoint

WINDOW, N = 5, 2


class TestMatrixMechanics:
    def test_del_matrix_passes_and_every_crash_fires(self):
        result = run_crash_matrix(
            ("DEL",), window=WINDOW, n_indexes=N, cycles=1, seed=3
        )
        assert result.ok
        assert result.failures == []
        assert result.cells
        assert all(cell.crashed for cell in result.cells)
        # One cell per op boundary of each steady-state transition.
        days = {cell.day for cell in result.cells}
        assert days == set(range(WINDOW + 1, 2 * WINDOW + 1))

    def test_io_samples_add_mid_op_cells(self):
        with_io = run_crash_matrix(
            ("DEL",), window=WINDOW, n_indexes=N, cycles=1, seed=3,
            io_crash_samples=1,
        )
        boundary_only = run_crash_matrix(
            ("DEL",), window=WINDOW, n_indexes=N, cycles=1, seed=3
        )
        assert with_io.ok
        # The REBALANCE pseudo-scheme's cells are all mid-I/O by design;
        # the sampling claim is about the scheme matrix, so scope to it.
        scheme_cells = [c for c in with_io.cells if c.scheme == "DEL"]
        baseline_cells = [
            c for c in boundary_only.cells if c.scheme == "DEL"
        ]
        mid_op = [
            c for c in scheme_cells if c.crash.after_ios is not None
        ]
        assert mid_op
        assert len(scheme_cells) == len(baseline_cells) + len(mid_op)

    def test_temporary_scheme_passes(self):
        result = run_crash_matrix(
            ("REINDEX+",), window=WINDOW, n_indexes=N, cycles=1, seed=3
        )
        assert result.ok

    def test_summary_mentions_every_scheme(self):
        result = run_crash_matrix(
            ("DEL", "REINDEX"), window=WINDOW, n_indexes=N, cycles=1, seed=3
        )
        summary = result.summary()
        assert "DEL" in summary and "REINDEX" in summary
        assert "PASS" in summary

    def test_cycles_validated(self):
        with pytest.raises(ValueError):
            run_crash_matrix(("DEL",), cycles=0)

    def test_default_schemes_are_the_papers_six(self):
        assert DEFAULT_SCHEMES == (
            "DEL", "REINDEX", "REINDEX+", "REINDEX++", "WATA*", "RATA*"
        )


class TestCellReporting:
    def test_describe_renders_op_and_io_forms(self):
        ok = CrashCell("DEL", 8, CrashPoint(after_ops=2), True, True)
        assert "after op 2" in ok.describe()
        assert "ok" in ok.describe()
        bad = CrashCell(
            "DEL", 8, CrashPoint(after_ios=5), True, False, detail="diverged"
        )
        assert "after I/O 5" in bad.describe()
        assert "FAIL: diverged" in bad.describe()
        unfired = CrashCell("DEL", 8, CrashPoint(after_ops=99), False, True)
        assert "did not fire" in unfired.describe()

class TestRebalanceMatrix:
    def test_rebalance_cells_pass_at_every_io_boundary(self):
        result = run_crash_matrix(
            ("DEL",), window=WINDOW, n_indexes=N, cycles=1, seed=3,
            include_rebalance=True,
        )
        assert result.ok
        rebalance = [
            c for c in result.cells if c.scheme == "REBALANCE"
        ]
        assert rebalance
        # Every cell crashes mid-move at a distinct I/O point and the
        # move's contract holds (source serves, no orphans, retry ok).
        assert all(c.crashed for c in rebalance)
        assert all(c.ok for c in rebalance)
        points = {c.crash.after_ios for c in rebalance}
        assert len(points) == len(rebalance)

    def test_rebalance_opt_out(self):
        result = run_crash_matrix(
            ("DEL",), window=WINDOW, n_indexes=N, cycles=1, seed=3,
            include_rebalance=False,
        )
        assert result.ok
        assert all(c.scheme != "REBALANCE" for c in result.cells)
