"""Tests for the query-latency simulation under maintenance."""

import pytest

from repro.analysis.daycount import run_reports
from repro.analysis.parameters import SCAM_PARAMETERS
from repro.core.schemes import DelScheme, ReindexScheme
from repro.errors import ReproError
from repro.index.updates import UpdateTechnique
from repro.sim.latency import (
    maintenance_timeline,
    simulate_query_latency,
)


def steady_report(scheme_cls, technique, n=2):
    scheme = scheme_cls(SCAM_PARAMETERS.window, n)
    reports = run_reports(
        scheme, SCAM_PARAMETERS, technique, transitions=SCAM_PARAMETERS.window
    )
    return reports[-1]


class TestTimeline:
    def test_in_place_del_produces_blocking_intervals(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        intervals = maintenance_timeline(
            report, UpdateTechnique.IN_PLACE, {"I1", "I2"}
        )
        assert intervals
        for interval in intervals:
            assert interval.end_s > interval.start_s
            assert interval.target in {"I1", "I2"}

    def test_shadowing_produces_none(self):
        report = steady_report(DelScheme, UpdateTechnique.SIMPLE_SHADOW)
        assert (
            maintenance_timeline(
                report, UpdateTechnique.SIMPLE_SHADOW, {"I1", "I2"}
            )
            == []
        )

    def test_transition_ops_start_at_data_arrival(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        intervals = maintenance_timeline(
            report,
            UpdateTechnique.IN_PLACE,
            {"I1", "I2"},
            data_arrival_s=10_000.0,
        )
        # DEL's UpdateOp charges delete to precompute (from t=0) and the
        # add to transition (from arrival).
        assert any(i.start_s < 10_000.0 for i in intervals)
        assert any(i.start_s >= 10_000.0 for i in intervals)

    def test_bad_schedule_rejected(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        with pytest.raises(ReproError):
            maintenance_timeline(
                report,
                UpdateTechnique.IN_PLACE,
                {"I1"},
                precompute_start_s=100.0,
                data_arrival_s=50.0,
            )


class TestLatency:
    def test_in_place_blocks_some_queries(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report,
            SCAM_PARAMETERS,
            UpdateTechnique.IN_PLACE,
            queries_per_day=2_000,
            seed=7,
        )
        assert stats.queries > 0
        assert stats.blocked_queries > 0
        assert stats.max_s > stats.p50_s
        assert 0 < stats.blocked_fraction < 1

    def test_shadowing_never_blocks(self):
        report = steady_report(DelScheme, UpdateTechnique.SIMPLE_SHADOW)
        stats = simulate_query_latency(
            report,
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
            queries_per_day=2_000,
            seed=7,
        )
        assert stats.blocked_queries == 0
        # Every latency equals the pure service time.
        assert stats.max_s == pytest.approx(stats.p50_s)

    def test_reindex_in_place_never_blocks(self):
        """REINDEX mutates nothing queryable even in-place."""
        report = steady_report(ReindexScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report,
            SCAM_PARAMETERS,
            UpdateTechnique.IN_PLACE,
            queries_per_day=1_000,
            seed=3,
        )
        assert stats.blocked_queries == 0

    def test_deterministic_given_seed(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        a = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE, seed=11
        )
        b = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE, seed=11
        )
        assert a == b

    def test_zero_queries(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE,
            queries_per_day=0,
        )
        assert stats.queries == 0
        assert stats.blocked_fraction == 0.0

    def test_negative_queries_rejected(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        with pytest.raises(ReproError):
            simulate_query_latency(
                report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE,
                queries_per_day=-1,
            )

    def test_percentiles_ordered(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE,
            queries_per_day=5_000, seed=2,
        )
        assert stats.p50_s <= stats.p95_s <= stats.max_s
