"""Tests for the query-latency simulation under maintenance."""

import math
import random

import pytest

from repro.analysis.daycount import run_reports
from repro.analysis.parameters import SCAM_PARAMETERS
from repro.core.schemes import DelScheme, ReindexScheme
from repro.errors import ReproError
from repro.index.updates import UpdateTechnique
from repro.sim import latency as latency_mod
from repro.sim.latency import (
    maintenance_timeline,
    simulate_query_latency,
)


def steady_report(scheme_cls, technique, n=2):
    scheme = scheme_cls(SCAM_PARAMETERS.window, n)
    reports = run_reports(
        scheme, SCAM_PARAMETERS, technique, transitions=SCAM_PARAMETERS.window
    )
    return reports[-1]


class TestTimeline:
    def test_in_place_del_produces_blocking_intervals(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        intervals = maintenance_timeline(
            report, UpdateTechnique.IN_PLACE, {"I1", "I2"}
        )
        assert intervals
        for interval in intervals:
            assert interval.end_s > interval.start_s
            assert interval.target in {"I1", "I2"}

    def test_shadowing_produces_none(self):
        report = steady_report(DelScheme, UpdateTechnique.SIMPLE_SHADOW)
        assert (
            maintenance_timeline(
                report, UpdateTechnique.SIMPLE_SHADOW, {"I1", "I2"}
            )
            == []
        )

    def test_transition_ops_start_at_data_arrival(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        intervals = maintenance_timeline(
            report,
            UpdateTechnique.IN_PLACE,
            {"I1", "I2"},
            data_arrival_s=10_000.0,
        )
        # DEL's UpdateOp charges delete to precompute (from t=0) and the
        # add to transition (from arrival).
        assert any(i.start_s < 10_000.0 for i in intervals)
        assert any(i.start_s >= 10_000.0 for i in intervals)

    def test_bad_schedule_rejected(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        with pytest.raises(ReproError):
            maintenance_timeline(
                report,
                UpdateTechnique.IN_PLACE,
                {"I1"},
                precompute_start_s=100.0,
                data_arrival_s=50.0,
            )


class TestLatency:
    def test_in_place_blocks_some_queries(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report,
            SCAM_PARAMETERS,
            UpdateTechnique.IN_PLACE,
            queries_per_day=2_000,
            seed=7,
        )
        assert stats.queries > 0
        assert stats.blocked_queries > 0
        assert stats.max_s > stats.p50_s
        assert 0 < stats.blocked_fraction < 1

    def test_shadowing_never_blocks(self):
        report = steady_report(DelScheme, UpdateTechnique.SIMPLE_SHADOW)
        stats = simulate_query_latency(
            report,
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
            queries_per_day=2_000,
            seed=7,
        )
        assert stats.blocked_queries == 0
        # Every latency equals the pure service time.
        assert stats.max_s == pytest.approx(stats.p50_s)

    def test_reindex_in_place_never_blocks(self):
        """REINDEX mutates nothing queryable even in-place."""
        report = steady_report(ReindexScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report,
            SCAM_PARAMETERS,
            UpdateTechnique.IN_PLACE,
            queries_per_day=1_000,
            seed=3,
        )
        assert stats.blocked_queries == 0

    def test_deterministic_given_seed(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        a = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE, seed=11
        )
        b = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE, seed=11
        )
        assert a == b

    def test_zero_queries(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE,
            queries_per_day=0,
        )
        assert stats.queries == 0
        assert stats.blocked_fraction == 0.0

    def test_negative_queries_rejected(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        with pytest.raises(ReproError):
            simulate_query_latency(
                report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE,
                queries_per_day=-1,
            )

    def test_percentiles_use_nearest_rank(self):
        """Regression: p50/p95 are nearest-rank, not off-by-one indexing.

        The old code picked the upper median (``sorted[n // 2]``) and
        indexed p95 at ``int(0.95 * n)`` — the *count* of covered
        observations, one rank past the nearest-rank element.  Rebuild
        the empirical latency sample with the same seed and check the
        reported percentiles land on the exact nearest-rank elements.
        """
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        queries_per_day, seed = 400, 7
        stats = simulate_query_latency(
            report,
            SCAM_PARAMETERS,
            UpdateTechnique.IN_PLACE,
            queries_per_day=queries_per_day,
            seed=seed,
        )

        # Mirror the simulator's arrival loop to recover the sample.
        names = {snap.name for snap in report.constituents}
        intervals = maintenance_timeline(
            report, UpdateTechnique.IN_PLACE, names,
            data_arrival_s=6 * 3600.0,
        )
        service_s = latency_mod._per_query_service_s(
            report, SCAM_PARAMETERS
        )
        rng = random.Random(seed)
        latencies = []
        t = 0.0
        rate = queries_per_day / latency_mod.DAY_SECONDS
        for _ in range(queries_per_day):
            t += rng.expovariate(rate)
            if t > latency_mod.DAY_SECONDS:
                break
            wait = 0.0
            for interval in intervals:
                if interval.start_s <= t < interval.end_s:
                    wait = max(wait, interval.end_s - t)
            latencies.append(wait + service_s)

        ordered = sorted(latencies)
        n = len(ordered)
        assert stats.queries == n

        def nearest_rank(q):
            return ordered[min(n - 1, max(0, math.ceil(q * n) - 1))]

        assert stats.p50_s == nearest_rank(0.50)
        assert stats.p95_s == nearest_rank(0.95)
        assert stats.max_s == ordered[-1]
        # The sample must actually discriminate against the old p95
        # indexing, or this test proves nothing.
        assert ordered[int(0.95 * n)] != stats.p95_s

    def test_percentiles_ordered(self):
        report = steady_report(DelScheme, UpdateTechnique.IN_PLACE)
        stats = simulate_query_latency(
            report, SCAM_PARAMETERS, UpdateTechnique.IN_PLACE,
            queries_per_day=5_000, seed=2,
        )
        assert stats.p50_s <= stats.p95_s <= stats.max_s
