"""Tests for daily query workloads."""

import random

import pytest

from repro.core.wave import WaveIndex
from repro.errors import WorkloadError
from repro.index.builder import build_packed_index
from repro.index.config import IndexConfig
from repro.sim.querygen import (
    QueryWorkload,
    uniform_key_picker,
    zipf_value_picker,
)
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store


@pytest.fixture
def wave():
    disk = SimulatedDisk()
    config = IndexConfig()
    store = make_store(10)
    wave = WaveIndex(disk, config, 2)
    wave.bind(
        "I1",
        build_packed_index(disk, config, store.grouped_for(range(1, 6)), range(1, 6)),
    )
    wave.bind(
        "I2",
        build_packed_index(disk, config, store.grouped_for(range(6, 11)), range(6, 11)),
    )
    return wave


class TestQueryWorkload:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            QueryWorkload(probes_per_day=-1)
        with pytest.raises(WorkloadError):
            QueryWorkload(probes_per_day=5)  # needs a picker

    def test_run_day_charges_time(self, wave):
        workload = QueryWorkload(
            probes_per_day=3,
            scans_per_day=2,
            value_picker=lambda rng: rng.choice("abcdefgh"),
            seed=4,
        )
        seconds = workload.run_day(wave, day=10, window=10)
        assert seconds > 0

    def test_deterministic_per_day(self, wave):
        workload = QueryWorkload(
            probes_per_day=4,
            value_picker=lambda rng: rng.choice("abcdefgh"),
            seed=4,
        )
        assert workload.run_day(wave, 10, 10) == workload.run_day(wave, 10, 10)

    def test_newest_only_scans_less(self, wave):
        full = QueryWorkload(scans_per_day=1, seed=1)
        newest = QueryWorkload(scans_per_day=1, scan_newest_only=True, seed=1)
        assert newest.run_day(wave, 10, 10) < full.run_day(wave, 10, 10)

    def test_zero_queries_costs_nothing(self, wave):
        assert QueryWorkload().run_day(wave, 10, 10) == 0.0


class TestPickers:
    def test_uniform_picker_range(self):
        pick = uniform_key_picker(10)
        rng = random.Random(0)
        assert all(1 <= pick(rng) <= 10 for _ in range(100))
        with pytest.raises(WorkloadError):
            uniform_key_picker(0)

    def test_zipf_picker_format(self):
        pick = zipf_value_picker(100)
        rng = random.Random(0)
        value = pick(rng)
        assert value.startswith("w")
        assert 1 <= int(value[1:]) <= 100
