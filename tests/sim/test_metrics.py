"""Tests for simulation metrics aggregation."""

import pytest

from repro.core.executor import PhaseSeconds
from repro.sim.metrics import DayMetrics, SimulationResult


def day(d, trans=1.0, pre=0.5, query=0.2, peak=100, length=5):
    return DayMetrics(
        day=d,
        seconds=PhaseSeconds(precompute=pre, transition=trans, post=0.0),
        query_seconds=query,
        steady_bytes=80,
        constituent_bytes=70,
        peak_bytes=peak,
        length_days=length,
        covered_days=frozenset(range(d - 4, d + 1)),
    )


@pytest.fixture
def result():
    res = SimulationResult(window=5, n_indexes=2, scheme_name="X", technique="t")
    res.days = [
        day(5, trans=10.0, peak=500),  # start day
        day(6, trans=1.0, peak=100),
        day(7, trans=2.0, peak=200, length=6),
        day(8, trans=3.0, peak=300),
    ]
    return res


class TestSteadyDays:
    def test_start_day_always_skipped(self, result):
        assert [d.day for d in result.steady_days()] == [6, 7, 8]

    def test_warmup_skips_more(self, result):
        assert [d.day for d in result.steady_days(warmup=2)] == [8]


class TestShortRuns:
    """Steady-window averages on runs too short to have steady days.

    Regression: these used to raise ZeroDivisionError when a run recorded
    <= 1 + warmup days; dashboards plotting curves want 0.0 instead.
    """

    @pytest.mark.parametrize("num_days", [0, 1])
    def test_averages_are_zero_not_an_error(self, num_days):
        res = SimulationResult(window=5, n_indexes=2, scheme_name="X", technique="t")
        res.days = [day(5)] * num_days
        assert res.avg_transition_seconds() == 0.0
        assert res.avg_precompute_seconds() == 0.0
        assert res.avg_total_work_seconds() == 0.0
        assert res.avg_peak_bytes() == 0.0

    def test_warmup_longer_than_run(self, result):
        assert result.avg_transition_seconds(warmup=10) == 0.0
        assert result.avg_total_work_seconds(warmup=3) == 0.0

    def test_one_steady_day_still_averages(self, result):
        assert result.avg_transition_seconds(warmup=2) == pytest.approx(3.0)


class TestAggregates:
    def test_avg_transition(self, result):
        assert result.avg_transition_seconds() == pytest.approx(2.0)

    def test_avg_precompute(self, result):
        assert result.avg_precompute_seconds() == pytest.approx(0.5)

    def test_total_work_includes_queries(self, result):
        metrics = result.days[1]
        assert metrics.total_work_seconds == pytest.approx(1.0 + 0.5 + 0.2)
        assert result.avg_total_work_seconds() == pytest.approx(2.7)

    def test_peaks(self, result):
        assert result.avg_peak_bytes() == pytest.approx(200.0)
        assert result.max_peak_bytes() == 500  # start day counts here

    def test_max_length(self, result):
        assert result.max_length_days() == 6


class TestCacheAggregates:
    def test_days_without_cache_count_zero(self, result):
        assert result.days[0].cache_hits == 0
        assert result.days[0].cache_misses == 0
        assert result.total_cache_hits() == 0
        assert result.total_cache_misses() == 0

    def test_cache_deltas_summed(self, result):
        from repro.storage.pagecache import PageCacheSnapshot

        metrics = day(9)
        cached = DayMetrics(
            day=9,
            seconds=metrics.seconds,
            query_seconds=metrics.query_seconds,
            steady_bytes=metrics.steady_bytes,
            constituent_bytes=metrics.constituent_bytes,
            peak_bytes=metrics.peak_bytes,
            length_days=metrics.length_days,
            covered_days=metrics.covered_days,
            cache=PageCacheSnapshot(hits=10, misses=4),
        )
        result.days.append(cached)
        assert cached.cache_hits == 10
        assert cached.cache_misses == 4
        assert result.total_cache_hits() == 10
        assert result.total_cache_misses() == 4
