"""Tests for simulation metrics aggregation."""

import pytest

from repro.core.executor import PhaseSeconds
from repro.sim.metrics import DayMetrics, SimulationResult


def day(d, trans=1.0, pre=0.5, query=0.2, peak=100, length=5):
    return DayMetrics(
        day=d,
        seconds=PhaseSeconds(precompute=pre, transition=trans, post=0.0),
        query_seconds=query,
        steady_bytes=80,
        constituent_bytes=70,
        peak_bytes=peak,
        length_days=length,
        covered_days=frozenset(range(d - 4, d + 1)),
    )


@pytest.fixture
def result():
    res = SimulationResult(window=5, n_indexes=2, scheme_name="X", technique="t")
    res.days = [
        day(5, trans=10.0, peak=500),  # start day
        day(6, trans=1.0, peak=100),
        day(7, trans=2.0, peak=200, length=6),
        day(8, trans=3.0, peak=300),
    ]
    return res


class TestSteadyDays:
    def test_start_day_always_skipped(self, result):
        assert [d.day for d in result.steady_days()] == [6, 7, 8]

    def test_warmup_skips_more(self, result):
        assert [d.day for d in result.steady_days(warmup=2)] == [8]


class TestAggregates:
    def test_avg_transition(self, result):
        assert result.avg_transition_seconds() == pytest.approx(2.0)

    def test_avg_precompute(self, result):
        assert result.avg_precompute_seconds() == pytest.approx(0.5)

    def test_total_work_includes_queries(self, result):
        metrics = result.days[1]
        assert metrics.total_work_seconds == pytest.approx(1.0 + 0.5 + 0.2)
        assert result.avg_total_work_seconds() == pytest.approx(2.7)

    def test_peaks(self, result):
        assert result.avg_peak_bytes() == pytest.approx(200.0)
        assert result.max_peak_bytes() == 500  # start day counts here

    def test_max_length(self, result):
        assert result.max_length_days() == 6
