"""Tests for the measured multi-disk executor."""

import pytest

from repro.core.schemes import DelScheme, ReindexScheme, WataStarScheme
from repro.errors import ReproError
from repro.index.updates import UpdateTechnique
from repro.sim.multidisk_sim import MultiDiskExecutor
from repro.storage.disk import SimulatedDisk
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from tests.conftest import make_store

WINDOW, N = 8, 4


def run_scheme(scheme_cls, n_disks, last_day=16, technique=UpdateTechnique.SIMPLE_SHADOW):
    store = make_store(last_day, seed=55)
    executor = MultiDiskExecutor.create(store, N, n_disks, technique=technique)
    scheme = scheme_cls(WINDOW, N)
    reports = [executor.execute_parallel(scheme.start_ops())]
    for day in range(WINDOW + 1, last_day + 1):
        reports.append(executor.execute_parallel(scheme.transition_ops(day)))
    executor.check_invariants()
    return executor, reports


class TestPlacement:
    def test_constituents_spread_round_robin(self):
        executor, _ = run_scheme(DelScheme, n_disks=4)
        disks = {
            name: executor.wave.get(name).disk
            for name in executor.wave.constituents
        }
        assert len({id(d) for d in disks.values()}) == 4

    def test_fewer_disks_share(self):
        executor, _ = run_scheme(DelScheme, n_disks=2)
        placements = [
            executor.wave.get(name).disk for name in executor.wave.constituents
        ]
        assert len({id(d) for d in placements}) == 2

    def test_needs_a_disk(self):
        store = make_store(10)
        wave = WaveIndex(SimulatedDisk(), IndexConfig(), 2)
        with pytest.raises(ReproError):
            MultiDiskExecutor(wave, store, disks=[])


class TestParallelism:
    def test_initial_build_overlaps_across_disks(self):
        """The W-day start builds n indexes: with n disks they overlap."""
        _, reports_1 = run_scheme(ReindexScheme, n_disks=1, last_day=WINDOW)
        _, reports_4 = run_scheme(ReindexScheme, n_disks=4, last_day=WINDOW)
        start_1, start_4 = reports_1[0], reports_4[0]
        assert start_1.elapsed_seconds == pytest.approx(start_1.serial_seconds)
        assert start_4.speedup > 2.5
        # Total work is conserved; only elapsed time shrinks.
        assert start_4.serial_seconds == pytest.approx(start_1.serial_seconds)

    def test_single_target_day_gains_nothing(self):
        """A steady DEL day touches one index: no overlap to exploit."""
        _, reports = run_scheme(DelScheme, n_disks=4)
        steady = reports[-1]
        assert steady.speedup == pytest.approx(1.0)

    def test_elapsed_never_exceeds_serial(self):
        for scheme_cls in (DelScheme, ReindexScheme, WataStarScheme):
            _, reports = run_scheme(scheme_cls, n_disks=3)
            for report in reports:
                assert (
                    report.elapsed_seconds
                    <= report.serial_seconds + 1e-9
                )


class TestCorrectness:
    @pytest.mark.parametrize("n_disks", [1, 2, 4])
    def test_queries_identical_to_single_disk(self, n_disks):
        store = make_store(16, seed=55)
        executor, _ = run_scheme(DelScheme, n_disks=n_disks)
        lo, hi = 16 - WINDOW + 1, 16
        for value in "abcdefgh":
            got = sorted(
                executor.wave.timed_index_probe(value, lo, hi).record_ids
            )
            want = sorted(
                e.record_id for e in store.brute_probe(value, lo, hi)
            )
            assert got == want

    def test_no_leaks_across_array(self):
        executor, _ = run_scheme(WataStarScheme, n_disks=3)
        bound = sum(
            i.allocated_bytes for i in executor.wave.bindings.values()
        )
        assert executor.live_bytes == bound
