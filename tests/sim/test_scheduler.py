"""Tests for the overlapped maintenance/serving scheduler."""

import pytest

from repro.core.schemes import scheme_by_name
from repro.errors import SchemeError
from repro.index.updates import UpdateTechnique
from repro.sim.scheduler import (
    OverlapConfig,
    OverlapPolicy,
    OverlappedSimulation,
)
from repro.sim.querygen import QueryWorkload
from tests.conftest import make_store


def _workload(**kwargs) -> QueryWorkload:
    defaults = dict(
        probes_per_day=6,
        scans_per_day=2,
        value_picker=lambda rng: rng.choice("abcdefgh"),
        seed=3,
    )
    defaults.update(kwargs)
    return QueryWorkload(**defaults)


def _run(scheme="REINDEX", W=10, n=4, last=16, technique=None, **overlap_kw):
    config = OverlapConfig(**overlap_kw) if overlap_kw else OverlapConfig()
    sim = OverlappedSimulation(
        scheme_by_name(scheme)(W, n),
        make_store(last),
        technique=technique or UpdateTechnique.SIMPLE_SHADOW,
        queries=_workload(),
        overlap=config,
    )
    sim.run(last)
    return sim


class TestOverlapConfig:
    def test_defaults_validate(self):
        config = OverlapConfig()
        assert config.n_devices == 2
        assert config.policy is OverlapPolicy.WAIT

    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError):
            OverlapConfig(n_devices=0)

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            OverlapConfig(placement="raid5")

    def test_rejects_sub_one_stretch(self):
        with pytest.raises(ValueError):
            OverlapConfig(arrival_stretch=0.5)


class TestOverlapDayStats:
    def test_every_day_carries_the_overlay(self):
        sim = _run(n_devices=3)
        for day in sim.result.days:
            stats = day.overlap
            assert stats is not None
            assert stats.makespan_seconds >= stats.maintenance_makespan_seconds
            assert len(stats.device_busy_seconds) == 3
            assert all(b >= 0 for b in stats.device_busy_seconds)

    def test_busy_plus_idle_equals_makespan(self):
        sim = _run(n_devices=2)
        day = sim.result.days[3].overlap
        for busy, idle in zip(day.device_busy_seconds, day.device_idle_seconds):
            assert busy + idle == pytest.approx(day.makespan_seconds)

    def test_latency_split_covers_all_queries(self):
        sim = _run(n_devices=3)
        total = 0
        for day in sim.result.days:
            stats = day.overlap
            for summary in (
                stats.latency_during_transition,
                stats.latency_steady_state,
            ):
                if summary is not None:
                    total += summary["count"]
                    assert summary["p95"] >= summary["p50"] >= 0
                    assert summary["p99"] >= summary["p95"]
        assert total == sum(d.overlap.queries for d in sim.result.days)
        # The run-level histograms agree with the per-day split.
        assert (
            sim.latency_during.count + sim.latency_steady.count == total
        )

    def test_makespan_beats_serialized_total_work(self):
        # On multiple devices some query work hides under maintenance, so
        # the timeline is shorter than maintenance + queries back-to-back.
        sim = _run(scheme="REINDEX", n_devices=3)
        result = sim.result
        assert result.total_makespan_seconds() < sum(
            d.total_work_seconds for d in result.days
        )


class TestPolicies:
    def test_in_place_wait_records_waits(self):
        sim = _run(
            scheme="DEL",
            n=2,
            technique=UpdateTechnique.IN_PLACE,
            n_devices=2,
            policy=OverlapPolicy.WAIT,
        )
        assert sim.result.total_queries_waited() > 0
        assert sim.result.total_queries_degraded() == 0

    def test_in_place_degrade_reports_missing_days(self):
        sim = _run(
            scheme="DEL",
            n=2,
            technique=UpdateTechnique.IN_PLACE,
            n_devices=2,
            policy=OverlapPolicy.DEGRADE,
        )
        assert sim.result.total_queries_degraded() > 0
        missing = set()
        for day in sim.result.days:
            missing |= day.overlap.degraded_missing_days
        assert missing  # degraded answers name the days they lost

    def test_degrade_leaves_wave_online_afterwards(self):
        sim = _run(
            scheme="DEL",
            n=2,
            technique=UpdateTechnique.IN_PLACE,
            n_devices=2,
            policy=OverlapPolicy.DEGRADE,
        )
        assert not sim.wave.offline  # temporary marks are restored

    def test_shadowing_never_blocks(self):
        # The paper's point: shadowed transitions leave the old version
        # serving, so no query waits on maintenance (device contention
        # can still delay it, but nothing is ever degraded).
        sim = _run(
            scheme="REINDEX",
            technique=UpdateTechnique.SIMPLE_SHADOW,
            n_devices=3,
            policy=OverlapPolicy.DEGRADE,
        )
        assert sim.result.total_queries_degraded() == 0


class TestPlacementStrategies:
    def test_rotate_spreads_maintenance_over_devices(self):
        sim = _run(scheme="REINDEX", n_devices=3, placement="rotate")
        busy_any = [0.0, 0.0, 0.0]
        for day in sim.result.days:
            for i, b in enumerate(day.overlap.device_busy_seconds):
                busy_any[i] += b
        assert all(b > 0 for b in busy_any)

    def test_one_device_concentrates_everything(self):
        sim = _run(n_devices=1, placement="sticky")
        day = sim.result.days[2].overlap
        assert len(day.device_busy_seconds) == 1
        # Serial timeline: the day's makespan is exactly its total work.
        assert day.makespan_seconds == pytest.approx(
            sim.result.days[2].total_work_seconds
        )

    def test_hash_placement_runs(self):
        sim = _run(n_devices=3, placement="hash")
        assert sim.result.days

    def test_array_config_mismatch_rejected(self):
        from repro.storage.array import DiskArray

        with pytest.raises(SchemeError):
            OverlappedSimulation(
                scheme_by_name("DEL")(5, 1),
                make_store(8),
                overlap=OverlapConfig(n_devices=2),
                array=DiskArray.create(3),
            )


class TestPageCaches:
    def test_per_device_caches_report_day_deltas(self):
        sim = _run(n_devices=2, page_cache_bytes=1 << 18)
        assert any(
            d.cache is not None and (d.cache.hits or d.cache.misses)
            for d in sim.result.days
        )

    def test_external_buffer_pool_rejected(self):
        from repro.sim.driver import run_simulation
        from repro.storage.bufferpool import BufferPoolModel

        with pytest.raises(SchemeError):
            run_simulation(
                lambda: scheme_by_name("DEL")(5, 1),
                make_store(8),
                last_day=8,
                buffer_pool=BufferPoolModel(1 << 20),
                overlap=OverlapConfig(n_devices=1, placement="sticky"),
            )
