"""Serialized-equivalence guarantee of the overlapped scheduler.

With one device and the wait policy, the overlapped scheduler must
reproduce the classic serialized driver's :class:`SimulationResult`
*exactly* — same phase seconds, same query seconds, same space, same I/O
counters — for every scheme and technique.  This is the invariant that
makes the overlap benchmark's serialized/overlapped comparison a
controlled experiment rather than two different simulators.
"""

import dataclasses

import pytest

from repro.core.schemes import scheme_by_name
from repro.index.updates import UpdateTechnique
from repro.sim.driver import run_simulation
from repro.sim.querygen import QueryWorkload
from repro.sim.scheduler import OverlapConfig, OverlapPolicy
from tests.conftest import make_store

ALL_CLI_SCHEMES = (
    "DEL",
    "REINDEX",
    "REINDEX+",
    "REINDEX++",
    "WATA*",
    "RATA*",
    "WATA(table4)",
)

#: k=1 + wait + name-sticky placement: the serialized driver's world.
SERIALIZED_EQUIVALENT = OverlapConfig(
    n_devices=1, policy=OverlapPolicy.WAIT, placement="sticky"
)


def _workload() -> QueryWorkload:
    return QueryWorkload(
        probes_per_day=5,
        scans_per_day=2,
        value_picker=lambda rng: rng.choice("abcdefgh"),
        seed=3,
    )


def _strip_overlap(result):
    """Return ``result`` with the overlay-only fields removed."""
    return dataclasses.replace(
        result,
        days=[dataclasses.replace(d, overlap=None) for d in result.days],
    )


class TestSerializedEquivalence:
    @pytest.mark.parametrize("name", ALL_CLI_SCHEMES)
    def test_every_scheme_reproduces_serialized_result(self, name):
        W, n, last = 10, 4, 16
        scheme_cls = scheme_by_name(name)
        serialized = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
        )
        overlapped = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
            overlap=SERIALIZED_EQUIVALENT,
        )
        assert _strip_overlap(overlapped) == serialized
        # The overlay itself must still be present on every day.
        assert all(d.overlap is not None for d in overlapped.days)

    @pytest.mark.parametrize(
        "technique",
        [
            UpdateTechnique.IN_PLACE,
            UpdateTechnique.SIMPLE_SHADOW,
            UpdateTechnique.PACKED_SHADOW,
        ],
    )
    def test_equivalence_holds_per_technique(self, technique):
        W, n, last = 8, 2, 13
        scheme_cls = scheme_by_name("DEL")
        serialized = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            technique=technique,
            queries=_workload(),
        )
        overlapped = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            technique=technique,
            queries=_workload(),
            overlap=SERIALIZED_EQUIVALENT,
        )
        assert _strip_overlap(overlapped) == serialized

    def test_equivalence_without_queries(self):
        W, n, last = 8, 3, 12
        scheme_cls = scheme_by_name("REINDEX+")
        serialized = run_simulation(
            lambda: scheme_cls(W, n), make_store(last), last_day=last
        )
        overlapped = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            overlap=SERIALIZED_EQUIVALENT,
        )
        assert _strip_overlap(overlapped) == serialized

    def test_degrade_policy_on_one_device_also_matches(self):
        # With a single device nothing is ever offline under shadowing,
        # so even the degrade policy cannot diverge from serialized.
        W, n, last = 8, 2, 12
        scheme_cls = scheme_by_name("REINDEX")
        serialized = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
        )
        overlapped = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
            overlap=OverlapConfig(
                n_devices=1, policy=OverlapPolicy.DEGRADE, placement="sticky"
            ),
        )
        assert _strip_overlap(overlapped) == serialized

    def test_serialized_default_is_untouched_by_scheduler_import(self):
        # run_simulation without overlap= must still use the plain driver.
        W, n, last = 6, 2, 9
        result = run_simulation(
            lambda: scheme_by_name("DEL")(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
        )
        assert all(d.overlap is None for d in result.days)

    def test_overlap_rejects_external_caches(self):
        from repro.errors import SchemeError
        from repro.storage.pagecache import PageCache

        with pytest.raises(SchemeError):
            run_simulation(
                lambda: scheme_by_name("DEL")(5, 1),
                make_store(8),
                last_day=8,
                page_cache=PageCache(1 << 16),
                overlap=SERIALIZED_EQUIVALENT,
            )
