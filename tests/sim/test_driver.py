"""Tests for the measured simulation driver."""

import pytest

from repro.core.schemes import DelScheme, ReindexScheme, WataStarScheme
from repro.errors import SchemeError
from repro.index.updates import UpdateTechnique
from repro.sim.driver import Simulation, run_simulation
from repro.sim.querygen import QueryWorkload
from tests.conftest import make_store


class TestSimulation:
    def test_run_collects_daily_metrics(self):
        store = make_store(20)
        result = run_simulation(
            lambda: DelScheme(10, 2), store, last_day=16
        )
        assert result.scheme_name == "DEL"
        assert len(result.days) == 7  # start + 6 transitions
        assert result.days[0].day == 10
        assert result.days[-1].day == 16
        assert result.days[-1].covered_days == frozenset(range(7, 17))

    def test_start_must_come_first(self):
        sim = Simulation(DelScheme(5, 1), make_store(10))
        with pytest.raises(SchemeError):
            sim.run_transition(6)
        sim.run_start()
        with pytest.raises(SchemeError):
            sim.run_start()

    def test_metrics_track_space_and_time(self):
        store = make_store(20)
        result = run_simulation(
            lambda: ReindexScheme(10, 2), store, last_day=15
        )
        for metrics in result.days:
            assert metrics.seconds.total > 0
            assert metrics.steady_bytes > 0
            assert metrics.peak_bytes >= metrics.steady_bytes or (
                metrics.peak_bytes > 0
            )
        assert result.avg_transition_seconds() > 0

    def test_query_workload_measured(self):
        store = make_store(20)
        result = run_simulation(
            lambda: DelScheme(10, 2),
            store,
            last_day=14,
            queries=QueryWorkload(
                probes_per_day=5,
                scans_per_day=1,
                value_picker=lambda rng: rng.choice("abcdefgh"),
                seed=1,
            ),
        )
        steady = result.steady_days()
        assert all(d.query_seconds > 0 for d in steady)
        assert all(
            d.total_work_seconds == d.seconds.total + d.query_seconds
            for d in steady
        )

    def test_aggregates(self):
        store = make_store(30)
        result = run_simulation(
            lambda: WataStarScheme(10, 3), store, last_day=28
        )
        assert result.max_length_days() >= 10
        assert result.max_peak_bytes() >= result.avg_peak_bytes()
        assert result.avg_precompute_seconds() >= 0.0

    @pytest.mark.parametrize("technique", list(UpdateTechnique))
    def test_all_techniques_run_clean(self, technique):
        store = make_store(16)
        result = run_simulation(
            lambda: DelScheme(7, 2), store, last_day=14, technique=technique
        )
        assert result.technique == technique.value
        assert result.days[-1].covered_days == frozenset(range(8, 15))


class TestObservability:
    def test_page_cache_deltas_land_in_day_metrics(self):
        from repro.storage.pagecache import PageCache

        store = make_store(20)
        result = run_simulation(
            lambda: DelScheme(10, 2),
            store,
            last_day=14,
            page_cache=PageCache(1 << 20),
        )
        assert all(d.io is not None and d.cache is not None for d in result.days)
        assert result.total_cache_hits() + result.total_cache_misses() > 0
        assert sum(d.io.seeks for d in result.days) > 0

    def test_cacheless_run_records_io_but_no_cache(self):
        store = make_store(12)
        result = run_simulation(lambda: DelScheme(6, 2), store, last_day=8)
        assert all(d.cache is None for d in result.days)
        assert result.total_cache_hits() == 0
        assert all(d.io is not None for d in result.days)

    def test_registry_and_tracer_populated(self):
        from repro.storage.pagecache import PageCache

        store = make_store(12)
        sim = Simulation(
            DelScheme(6, 2),
            store,
            queries=QueryWorkload(
                probes_per_day=3,
                value_picker=lambda rng: rng.choice("abcdefgh"),
                seed=1,
            ),
            page_cache=PageCache(1 << 20),
        )
        sim.run(9)
        counters = sim.obs.counters()
        assert counters["days"] == 4.0
        assert counters["io.seeks"] > 0
        assert counters["cache.hits"] + counters["cache.misses"] > 0
        phases = sim.tracer.phase_seconds()
        assert phases["maintenance"] > 0
        assert "queries" in phases
        hist = sim.obs.histogram("day.maintenance_seconds")
        assert hist.count == 4
