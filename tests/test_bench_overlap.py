"""Tests for the overlap benchmark and its report schema."""

import pytest

from repro.bench.overlap import (
    OverlapBenchConfig,
    quick_config,
    render_summary,
    run_overlap_bench,
    validate_report,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_overlap_bench(quick_config())


class TestConfig:
    def test_defaults_validate(self):
        config = OverlapBenchConfig()
        assert config.last_day == config.window + config.transitions

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            OverlapBenchConfig(schemes=("NOPE",))

    def test_single_device_rejected(self):
        with pytest.raises(ValueError):
            OverlapBenchConfig(n_devices=1)

    def test_quick_is_marked(self):
        assert quick_config().quick is True


class TestReport:
    def test_schema_validates(self, quick_report):
        validate_report(quick_report)
        assert quick_report["bench"] == "overlap"
        assert len(quick_report["schemes"]) == 7

    def test_acceptance_reindex_p95_improves(self, quick_report):
        # The committed perf claim: at least one REINDEX-family scheme's
        # during-transition p95 is strictly below its serialized twin.
        assert quick_report["headline"]["reindex_p95_improved"] is True
        assert quick_report["headline"]["reindex_p95_ratio_best"] < 1.0

    def test_overlapping_shortens_the_timeline(self, quick_report):
        assert quick_report["headline"]["makespan_ratio_mean"] < 1.0

    def test_modes_serve_identical_streams(self, quick_report):
        for entry in quick_report["schemes"]:
            assert (
                entry["serialized"]["queries"]
                == entry["overlapped"]["queries"]
            )
            # Physical query cost is mode-independent (same call sequence).
            assert entry["serialized"]["query_seconds"] == pytest.approx(
                entry["overlapped"]["query_seconds"], rel=0.35
            )

    def test_validate_rejects_missing_keys(self, quick_report):
        broken = dict(quick_report)
        del broken["headline"]
        with pytest.raises(ValueError):
            validate_report(broken)

    def test_validate_rejects_empty_schemes(self, quick_report):
        broken = dict(quick_report)
        broken["schemes"] = []
        with pytest.raises(ValueError):
            validate_report(broken)

    def test_write_and_summary(self, quick_report, tmp_path):
        path = write_report(quick_report, tmp_path / "BENCH_overlap.json")
        assert path.exists()
        text = render_summary(quick_report)
        assert "REINDEX" in text
        assert "makespan" in text
