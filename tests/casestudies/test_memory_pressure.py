"""Tests for the memory-pressured Figure-10 variant.

The paper's Figure 10 shows REINDEX overtaking WATA* at SF ≈ 3 because the
authors' re-measured ``Add`` degraded under memory pressure.  The
buffer-pool model reproduces that mechanism: with a pool sized to the SF=1
working set, incremental updates are cache-warm at SF <= 1 and thrash
beyond, while packed rebuilds (streaming) scale linearly.
"""

import pytest

from repro.casestudies import scam


class TestMeasuredConstantsUnderPressure:
    def test_add_degrades_superlinearly_past_the_cliff(self):
        _, _, sp1 = scam.measure_build_add_constants(1.0, cluster_days=4)
        memory = sp1 * 5  # the SF = 1 working set fits exactly
        _, add1, _ = scam.measure_build_add_constants(
            1.0, cluster_days=4, memory_bytes=memory
        )
        _, add4, _ = scam.measure_build_add_constants(
            4.0, cluster_days=4, memory_bytes=memory
        )
        assert add4 > 4 * add1 * 2  # far beyond linear scaling

    def test_build_stays_linear_under_pressure(self):
        _, _, sp1 = scam.measure_build_add_constants(1.0, cluster_days=4)
        memory = sp1 * 5
        build1, _, _ = scam.measure_build_add_constants(
            1.0, cluster_days=4, memory_bytes=memory
        )
        build4, _, _ = scam.measure_build_add_constants(
            4.0, cluster_days=4, memory_bytes=memory
        )
        assert build4 == pytest.approx(build1 * 4, rel=0.5)

    def test_cluster_days_validated(self):
        with pytest.raises(ValueError):
            scam.measure_build_add_constants(1.0, cluster_days=0)


class TestFigure10Crossover:
    @pytest.fixture(scope="class")
    def pressured(self):
        return scam.figure10_memory_pressured(
            scale_factors=(1.0, 3.0, 5.0), memory_ratio=1.0
        )

    def test_reindex_overtakes_incremental_schemes(self, pressured):
        """The paper's crossover: REINDEX wins at SF >= 3 under pressure."""
        sf3 = 1  # index of SF = 3.0
        for scheme in ("DEL", "WATA*", "RATA*", "REINDEX+"):
            assert pressured["REINDEX"][sf3] < pressured[scheme][sf3], scheme

    def test_wata_still_wins_at_sf1(self, pressured):
        assert pressured["WATA*"][0] < pressured["REINDEX"][0]

    def test_no_crossover_without_pressure(self):
        """Linearly scaled constants never flip WATA* and REINDEX."""
        curves = scam.figure10_scale_factor(scale_factors=(1.0, 5.0))
        assert curves["WATA*"][1] < curves["REINDEX"][1]

    def test_memory_ratio_validated(self):
        with pytest.raises(ValueError):
            scam.figure10_memory_pressured(
                scale_factors=(1.0,), memory_ratio=0
            )

    def test_deep_pressure_narrows_but_keeps_ordering(self):
        """With the pool far below the SF=1 working set, everything thrashes
        about equally: the REINDEX/WATA* gap narrows with SF but need not
        cross (see EXPERIMENTS.md)."""
        curves = scam.figure10_memory_pressured(
            scale_factors=(1.0, 5.0), memory_ratio=0.3
        )
        gap_sf1 = curves["REINDEX"][0] / curves["WATA*"][0]
        gap_sf5 = curves["REINDEX"][1] / curves["WATA*"][1]
        assert gap_sf5 < gap_sf1
