"""Tests for the case-study curve machinery."""

import pytest

from repro.analysis.parameters import SCAM_PARAMETERS
from repro.casestudies.common import (
    MEASURES,
    curves_over_n,
    curves_over_params,
    scheme_series,
)
from repro.core.schemes import ALL_SCHEMES, DelScheme
from repro.index.updates import UpdateTechnique


class TestCurvesOverN:
    def test_holes_where_n_is_illegal(self):
        curves = curves_over_n(
            SCAM_PARAMETERS, (1, 2), UpdateTechnique.SIMPLE_SHADOW, "work"
        )
        assert curves["WATA*"][0] is None  # n = 1 illegal for WATA
        assert curves["WATA*"][1] is not None
        assert curves["DEL"][0] is not None

    def test_holes_where_n_exceeds_window(self):
        curves = curves_over_n(
            SCAM_PARAMETERS, (8,), UpdateTechnique.SIMPLE_SHADOW, "work"
        )
        # W = 7: n = 8 is unrepresentable for everyone.
        assert all(ys == [None] for ys in curves.values())

    def test_all_schemes_present(self):
        curves = curves_over_n(
            SCAM_PARAMETERS, (2,), UpdateTechnique.SIMPLE_SHADOW, "transition"
        )
        assert set(curves) == {c.name for c in ALL_SCHEMES}

    @pytest.mark.parametrize("measure", sorted(MEASURES))
    def test_every_measure_computes(self, measure):
        curves = curves_over_n(
            SCAM_PARAMETERS, (2,), UpdateTechnique.SIMPLE_SHADOW, measure
        )
        assert curves["DEL"][0] > 0

    def test_unknown_measure_rejected(self):
        with pytest.raises(KeyError):
            curves_over_n(
                SCAM_PARAMETERS, (2,), UpdateTechnique.SIMPLE_SHADOW, "vibes"
            )


class TestCurvesOverParams:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            curves_over_params(
                [SCAM_PARAMETERS],
                [1, 2],
                2,
                UpdateTechnique.SIMPLE_SHADOW,
                "work",
            )

    def test_window_axis(self):
        params_list = [SCAM_PARAMETERS.with_window(w) for w in (4, 7)]
        curves = curves_over_params(
            params_list, [4, 7], 2, UpdateTechnique.SIMPLE_SHADOW, "transition"
        )
        # REINDEX transition grows with W at fixed n.
        assert curves["REINDEX"][1] > curves["REINDEX"][0]


class TestSchemeSeries:
    def test_points_carry_averages(self):
        points = scheme_series(
            DelScheme,
            params_for_x=lambda x: SCAM_PARAMETERS,
            n_for_x=lambda x: int(x),
            xs=[1, 2],
            technique=UpdateTechnique.SIMPLE_SHADOW,
        )
        assert [p.x for p in points] == [1, 2]
        assert all(p.averages.total_work_s > 0 for p in points)
