"""Shape assertions for the SCAM case study (Figures 3, 4, 5, 9, 10).

These tests pin the paper's qualitative findings: who wins, in which
direction curves move, and where recommendations land — not absolute
seconds, which depended on 1997 hardware.
"""

import pytest

from repro.casestudies import scam


@pytest.fixture(scope="module")
def fig3():
    return scam.figure3_space()


@pytest.fixture(scope="module")
def fig4():
    return scam.figure4_transition()


@pytest.fixture(scope="module")
def fig5():
    return scam.figure5_work()


class TestFigure3Space:
    def test_reindex_uses_least_space(self, fig3):
        """Paper: 'REINDEX requires the minimal amount of space'.

        At the degenerate n = W point every scheme rebuilds single-day
        packed indexes and WATA* can tie or edge out REINDEX (it sheds the
        rebuild shadow), so the claim is asserted for n < W.
        """
        for i, n in enumerate(scam.DEFAULT_N_VALUES):
            if n == scam.SCAM_PARAMETERS.window:
                continue
            reindex = fig3["REINDEX"][i]
            for scheme, ys in fig3.items():
                if ys[i] is not None:
                    assert reindex <= ys[i] * 1.0001, (scheme, n)

    def test_space_decreases_with_n(self, fig3):
        """Paper: 'all schemes require less space as n increases'."""
        for scheme, ys in fig3.items():
            values = [y for y in ys if y is not None]
            assert values[0] >= values[-1], scheme

    def test_wata_holes_are_none_at_n1(self, fig3):
        assert fig3["WATA*"][0] is None
        assert fig3["RATA*"][0] is None


class TestFigure4Transition:
    def test_del_flat_at_add(self, fig4):
        """DEL always incrementally indexes exactly one day."""
        values = [y for y in fig4["DEL"]]
        assert max(values) - min(values) < 1.0

    def test_reindex_decreasing_in_n(self, fig4):
        ys = fig4["REINDEX"]
        assert ys[0] > ys[-1]
        assert ys == sorted(ys, reverse=True)

    def test_reindex_bad_small_n_good_large_n(self, fig4):
        """Paper: REINDEX poor for n <= 3, competitive for n >= 4."""
        assert fig4["REINDEX"][0] > fig4["DEL"][0]  # n = 1
        assert fig4["REINDEX"][6] < fig4["DEL"][6]  # n = 7

    def test_reindex_pp_transition_equals_del(self, fig4):
        """Both do one incremental Add on the critical path."""
        for a, b in zip(fig4["REINDEX++"], fig4["DEL"]):
            assert a == pytest.approx(b, rel=0.01)

    def test_wata_transition_cheap(self, fig4):
        for i in range(1, len(scam.DEFAULT_N_VALUES)):
            assert fig4["WATA*"][i] <= fig4["DEL"][i] * 1.05


class TestFigure5TotalWork:
    def test_reindex_worst_at_n1_among_rebuilders(self, fig5):
        assert fig5["REINDEX"][0] > fig5["DEL"][0]

    def test_reindex_competitive_at_n4_plus(self, fig5):
        """Paper recommends REINDEX with n = 4 for SCAM."""
        i = scam.DEFAULT_N_VALUES.index(4)
        assert fig5["REINDEX"][i] < fig5["DEL"][i]
        assert fig5["REINDEX"][i] < fig5["REINDEX++"][i]

    def test_del_grows_with_n_due_to_probes(self, fig5):
        assert fig5["DEL"][-1] > fig5["DEL"][0]


class TestFigure9WindowScaling:
    def test_rebuilders_scale_with_w_others_flat(self):
        curves = scam.figure9_window_scaling(windows=(7, 14, 28, 42))
        # REINDEX grows roughly linearly in W.
        reindex = curves["REINDEX"]
        assert reindex[-1] > 2.5 * reindex[0]
        # DEL/WATA/RATA maintenance is W-independent; only probe costs
        # change, so growth stays small.
        for scheme in ("DEL", "WATA*", "RATA*"):
            ys = curves[scheme]
            assert ys[-1] < 1.6 * ys[0], scheme


class TestFigure10ScaleFactor:
    def test_linear_scaling_preserves_ordering(self):
        """Analytic variant: all schemes scale ~linearly; WATA stays ahead
        (the paper's crossover needed re-measured constants; see
        EXPERIMENTS.md)."""
        curves = scam.figure10_scale_factor(scale_factors=(1.0, 3.0, 5.0))
        for scheme, ys in curves.items():
            if ys[0] is None:
                continue
            assert ys[-1] > ys[0]
        assert curves["WATA*"][2] < curves["REINDEX"][2]

    def test_measured_variant_runs_and_orders_sanely(self):
        curves = scam.figure10_measured(scale_factors=(0.5, 1.0, 2.0))
        for scheme, ys in curves.items():
            assert len(ys) == 3
            assert all(y is None or y > 0 for y in ys)
        # Work grows with volume in every scheme.
        assert curves["REINDEX"][2] > curves["REINDEX"][0]


class TestCalibration:
    def test_measured_constants_have_paper_like_ratios(self):
        build, add, s_prime = scam.measure_build_add_constants(1.0)
        assert add > build  # incremental indexing costs more (Table 12)
        assert s_prime > 0
