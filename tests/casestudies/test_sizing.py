"""Tests for the Figure-11 index-size ratio machinery."""

import pytest

from repro.casestudies.sizing import (
    figure11_ratios,
    hard_window_sizes,
    index_size_ratio,
    scheme_daily_sizes,
)
from repro.core.schemes.wata import WataStarScheme
from repro.errors import SchemeError
from repro.workloads.usenet import day_weights, june_december_1997_volume


class TestSizes:
    def test_hard_window_sizes_uniform(self):
        sizes = hard_window_sizes([1.0] * 10, window=4, last_day=10)
        assert sizes == [4.0] * 7

    def test_hard_window_sizes_weighted(self):
        sizes = hard_window_sizes([1, 2, 3, 4], window=2, last_day=4)
        assert sizes == [3, 5, 7]

    def test_scheme_daily_sizes_track_soft_window(self):
        scheme = WataStarScheme(4, 2)
        sizes = scheme_daily_sizes(scheme, [1.0] * 12, 12)
        assert sizes[0] == 4.0
        assert max(sizes) == scheme.max_length_bound()

    def test_trace_too_short_rejected(self):
        scheme = WataStarScheme(4, 2)
        with pytest.raises(SchemeError):
            scheme_daily_sizes(scheme, [1.0] * 5, 12)
        with pytest.raises(SchemeError):
            hard_window_sizes([1.0] * 5, 4, 12)


class TestRatios:
    def test_uniform_ratio_equals_length_ratio(self):
        # With uniform sizes the ratio is maxlength / W exactly.
        ratio = index_size_ratio([1.0] * 40, window=7, n_indexes=4)
        scheme = WataStarScheme(7, 4)
        assert ratio == pytest.approx(scheme.max_length_bound() / 7)

    def test_figure11_profile(self):
        """Paper: ratio <= ~1.6-2.0, decreasing with n, ~1.0 at n = W."""
        weights = day_weights(june_december_1997_volume())
        ratios = figure11_ratios(weights, window=7)
        assert set(ratios) == {2, 3, 4, 5, 6, 7}
        values = [ratios[n] for n in sorted(ratios)]
        assert values == sorted(values, reverse=True)
        assert all(r <= 2.0 + 1e-9 for r in values)
        assert ratios[7] == pytest.approx(1.0)
        # n = 4 landed at 1.24 in the paper; ours is close on synthetic data.
        assert 1.05 < ratios[4] < 1.4

    def test_ratio_always_at_least_one(self):
        weights = day_weights(june_december_1997_volume())
        for n in (2, 3, 5):
            assert index_size_ratio(weights, 7, n) >= 1.0 - 1e-9
