"""Shape assertions for the WSE (Figure 6) and TPC-D (Figures 7-8) studies."""

import pytest

from repro.casestudies import tpcd, wse


@pytest.fixture(scope="module")
def fig6():
    return wse.figure6_work(n_values=(1, 2, 5, 10, 35))


@pytest.fixture(scope="module")
def fig7():
    return tpcd.figure7_packed(n_values=(1, 2, 5, 10))


@pytest.fixture(scope="module")
def fig8():
    return tpcd.figure8_simple(n_values=(1, 2, 5, 10))


class TestFigure6Wse:
    def test_del_n1_is_best_overall(self, fig6):
        """Paper recommendation: DEL (n = 1) with packed shadowing."""
        best = min(
            y for ys in fig6.values() for y in ys if y is not None
        )
        assert fig6["DEL"][0] == pytest.approx(best)

    def test_reindex_is_worst_at_every_n(self, fig6):
        """Paper: the scheme that won SCAM 'now in fact performs the worst'."""
        for i in range(4):  # skip n=35 where X=1 collapses the schemes
            reindex = fig6["REINDEX"][i]
            for scheme, ys in fig6.items():
                if ys[i] is not None and scheme != "REINDEX++":
                    assert reindex >= ys[i] * 0.9999, (scheme, i)

    def test_probe_volume_drives_growth_in_n(self, fig6):
        assert fig6["DEL"][3] > 3 * fig6["DEL"][0]


class TestFigure7TpcdPacked:
    def test_del_small_n_best(self, fig7):
        best = min(y for ys in fig7.values() for y in ys if y is not None)
        assert min(y for y in fig7["DEL"] if y is not None) == pytest.approx(
            best, rel=0.05
        )

    def test_wata_n2_close_second(self, fig7):
        """Paper: 'DEL (n=1) and WATA (n=2) perform the best'."""
        del_best = min(y for y in fig7["DEL"] if y is not None)
        wata_n2 = fig7["WATA*"][1]
        assert wata_n2 < 1.5 * del_best

    def test_reindex_worst(self, fig7):
        for i in range(4):
            for scheme, ys in fig7.items():
                if ys[i] is not None:
                    assert fig7["REINDEX"][i] >= ys[i] * 0.9999, (scheme, i)


class TestFigure8TpcdSimple:
    def test_wata_does_least_work_at_larger_n(self, fig8):
        """Paper: WATA minimal under simple shadowing, once n is large
        enough that its soft-window residue (up to Y−1 expired days dragged
        through every scan) stops dominating — 'performs less work as n
        increases [because] the number of expired days ... decreases'."""
        for i in (2, 3):  # n = 5, 10
            wata = fig8["WATA*"][i]
            for scheme, ys in fig8.items():
                if ys[i] is not None:
                    assert wata <= ys[i] * 1.0001, (scheme, i)

    def test_wata_residue_hurts_at_small_n(self, fig8):
        """The flip side: at n = 2 the ~Y expired days make scans pricier
        than DEL's hard window."""
        assert fig8["WATA*"][1] > fig8["DEL"][1]

    def test_wata_improves_with_n(self, fig8):
        ys = [y for y in fig8["WATA*"] if y is not None]
        assert ys == sorted(ys, reverse=True)

    def test_wata_beats_del_by_thousands_of_seconds(self, fig8):
        """Paper: 'WATA requires up to 10,000 seconds less than DEL'."""
        gap = fig8["DEL"][3] - fig8["WATA*"][3]  # n = 10
        assert gap > 5_000

    def test_packed_shadowing_does_less_work(self, fig7, fig8):
        """Paper: Figure 7 vs Figure 8 comparison."""
        for scheme in ("DEL", "WATA*", "RATA*"):
            for packed, simple in zip(fig7[scheme], fig8[scheme]):
                if packed is not None and simple is not None:
                    assert packed < simple, scheme
