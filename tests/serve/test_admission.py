"""Admission-pipeline tests: the overload edge cases.

Time-dependent paths (bucket refill, queued-deadline expiry) run on the
fake clock from ``conftest`` — no real sleeping, exact timing.
"""

import asyncio

import pytest

from repro.errors import FrontendError, RequestRejected
from repro.serve.admission import (
    CODE_DEADLINE,
    CODE_DRAINING,
    CODE_RATE_LIMIT,
    CODE_SHED,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)

from .conftest import EchoBackend, GateBackend


def run(coro):
    return asyncio.run(coro)


async def spin(n: int = 10) -> None:
    """Give the event loop a few cycles to move dispatcher tasks."""
    for _ in range(n):
        await asyncio.sleep(0)


class TestConfigValidation:
    def test_unknown_policy(self):
        with pytest.raises(FrontendError, match="policy"):
            AdmissionConfig(overload_policy="panic")

    @pytest.mark.parametrize(
        "field, value",
        [
            ("max_queue_depth", 0),
            ("max_concurrency", 0),
            ("batch_max", 0),
            ("tenant_rate", 0.0),
            ("tenant_burst", 0.5),
        ],
    )
    def test_bad_numbers(self, field, value):
        with pytest.raises(FrontendError):
            AdmissionConfig(**{field: value})


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)

    def test_refill_timing_is_exact(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        # 2 tokens/s: one token exists at exactly t=0.5, not before.
        assert not bucket.try_take(0.49)
        assert bucket.seconds_until(now=0.49) == pytest.approx(0.01)
        assert bucket.try_take(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.try_take(0.0)
        bucket._refill(100.0)
        assert bucket.tokens == 2.0

    def test_clock_going_backwards_is_ignored(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=10.0)
        bucket.try_take(10.0)
        assert not bucket.try_take(5.0)  # no refill from the past
        assert bucket.try_take(11.0)


class TestTenantRateLimit:
    def controller(self, clock, **overrides):
        config = AdmissionConfig(
            tenant_rate=1.0, tenant_burst=2.0, max_concurrency=1,
            **overrides,
        )
        return AdmissionController(
            EchoBackend(), config, clock=clock
        )

    def test_exhaustion_then_refill(self, clock):
        async def scenario():
            controller = self.controller(clock)
            controller.start()
            try:
                # Burst of 2 admitted, third rejected before queueing.
                for _ in range(2):
                    await controller.submit("probe", (1, 1, 2))
                with pytest.raises(RequestRejected) as exc:
                    await controller.submit("probe", (1, 1, 2))
                assert exc.value.code == CODE_RATE_LIMIT
                # Exactly one token after one second at rate=1.
                clock.advance(1.0)
                await controller.submit("probe", (1, 1, 2))
                with pytest.raises(RequestRejected):
                    await controller.submit("probe", (1, 1, 2))
            finally:
                await controller.drain()

        run(scenario())

    def test_buckets_are_per_tenant(self, clock):
        async def scenario():
            controller = self.controller(clock)
            controller.start()
            try:
                for _ in range(2):
                    await controller.submit("probe", (1, 1, 2), tenant="a")
                with pytest.raises(RequestRejected):
                    await controller.submit("probe", (1, 1, 2), tenant="a")
                # Tenant b's bucket is untouched by a's exhaustion.
                await controller.submit("probe", (1, 1, 2), tenant="b")
            finally:
                await controller.drain()

        run(scenario())

    def test_rejections_observable_per_tenant(self, clock):
        async def scenario():
            controller = self.controller(clock)
            controller.start()
            try:
                for _ in range(2):
                    await controller.submit("probe", (1, 1, 2), tenant="a")
                with pytest.raises(RequestRejected):
                    await controller.submit("probe", (1, 1, 2), tenant="a")
                snapshot = controller.obs.snapshot()
                counters = snapshot["counters"]
                assert counters["serve.tenant.a.admitted"] == 2
                assert counters["serve.tenant.a.rejected"] == 1
                assert counters[f"serve.rejected.{CODE_RATE_LIMIT}"] == 1
            finally:
                await controller.drain()

        run(scenario())


class TestDeadlines:
    def test_deadline_expired_while_queued(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(max_concurrency=1, batch_max=1),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            # First request occupies the only dispatcher inside the
            # gated backend.
            blocker = loop.create_task(
                controller.submit("probe", ("blocker", 1, 2))
            )
            await spin()
            assert backend.entered.wait(5)
            # Second request is admitted and waits in the queue with a
            # 5-second deadline...
            waiter = loop.create_task(
                controller.submit(
                    "probe", ("late", 1, 2), deadline_s=5.0
                )
            )
            await spin()
            assert controller.queue_depth == 1
            # ...which expires before the dispatcher frees up.
            clock.advance(10.0)
            backend.release.set()
            with pytest.raises(RequestRejected) as exc:
                await waiter
            assert exc.value.code == CODE_DEADLINE
            assert await blocker == ("probe", ("blocker", 1, 2))
            # The expired request never reached the backend.
            assert [s for call in backend.probe_calls for s in call] == [
                ("blocker", 1, 2)
            ]
            counters = controller.obs.snapshot()["counters"]
            assert counters["serve.deadline.queued"] == 1
            await controller.drain()

        run(scenario())

    def test_unexpired_deadline_completes(self, clock):
        async def scenario():
            controller = AdmissionController(
                EchoBackend(),
                AdmissionConfig(max_concurrency=1),
                clock=clock,
            )
            controller.start()
            try:
                result = await controller.submit(
                    "probe", (1, 1, 2), deadline_s=60.0
                )
                assert result == ("probe", (1, 1, 2))
            finally:
                await controller.drain()

        run(scenario())


class TestOverloadPolicies:
    def test_shed_rejects_when_queue_full(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(
                    max_queue_depth=2, max_concurrency=1, batch_max=1,
                    overload_policy="shed",
                ),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(controller.submit("probe", (0, 1, 2)))
            ]
            await spin()
            assert backend.entered.wait(5)  # first is in flight
            tasks += [
                loop.create_task(controller.submit("probe", (i, 1, 2)))
                for i in (1, 2)  # fills the depth-2 queue exactly
            ]
            await spin()
            with pytest.raises(RequestRejected) as exc:
                await controller.submit("probe", (99, 1, 2))
            assert exc.value.code == CODE_SHED
            backend.release.set()
            assert len(await asyncio.gather(*tasks)) == 3
            counters = controller.obs.snapshot()["counters"]
            assert counters["serve.shed"] == 1
            await controller.drain()

        run(scenario())

    def test_queue_policy_waits_instead_of_shedding(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(
                    max_queue_depth=2, max_concurrency=1, batch_max=1,
                    overload_policy="queue",
                ),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(controller.submit("probe", (i, 1, 2)))
                for i in range(4)  # more than fits: the excess waits
            ]
            await spin()
            # Nothing was rejected; the overflow submitter is parked in
            # the queue's put().
            assert all(not t.done() for t in tasks)
            backend.release.set()
            results = await asyncio.gather(*tasks)
            assert len(results) == 4
            counters = controller.obs.snapshot()["counters"]
            assert "serve.shed" not in counters
            await controller.drain()

        run(scenario())

    def test_policies_equivalent_below_saturation(self, clock):
        # At sub-saturation load the policy must be unobservable: both
        # complete every request with nothing shed.
        async def one_policy(policy):
            backend = EchoBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(
                    max_queue_depth=4, max_concurrency=2,
                    overload_policy=policy,
                ),
                clock=clock,
            )
            controller.start()
            try:
                results = []
                for i in range(40):
                    results.append(
                        await controller.submit(
                            "probe", (i, 1, 2), tenant=f"t{i % 3}"
                        )
                    )
                counters = controller.obs.snapshot()["counters"]
                assert counters["serve.admitted"] == 40
                assert "serve.shed" not in counters
                return results
            finally:
                await controller.drain()

        shed = run(one_policy("shed"))
        queued = run(one_policy("queue"))
        assert shed == queued

    def test_batching_coalesces_consecutive_probes(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(
                    max_queue_depth=16, max_concurrency=1, batch_max=8,
                ),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            blocker = loop.create_task(
                controller.submit("probe", ("blocker", 1, 2))
            )
            await spin()
            assert backend.entered.wait(5)
            tasks = [
                loop.create_task(controller.submit("probe", (i, 1, 2)))
                for i in range(5)
            ]
            await spin()
            backend.release.set()
            await asyncio.gather(blocker, *tasks)
            # The 5 queued probes went to the backend as one batch.
            assert [len(c) for c in backend.probe_calls] == [1, 5]
            await controller.drain()

        run(scenario())


class TestDrain:
    def test_drain_completes_in_flight_work(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(max_concurrency=1, batch_max=1),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            in_flight = loop.create_task(
                controller.submit("probe", ("work", 1, 2))
            )
            await spin()
            assert backend.entered.wait(5)
            drain = loop.create_task(controller.drain(timeout_s=5.0))
            await spin()
            # New work is refused the moment draining begins.
            with pytest.raises(RequestRejected) as exc:
                await controller.submit("probe", ("late", 1, 2))
            assert exc.value.code == CODE_DRAINING
            backend.release.set()
            # The admitted request still completes, and the drain is
            # clean.
            assert await in_flight == ("probe", ("work", 1, 2))
            assert await drain is True

        run(scenario())

    def test_unclean_drain_rejects_stragglers(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(max_concurrency=1, batch_max=1),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            stuck = loop.create_task(
                controller.submit("probe", ("stuck", 1, 2))
            )
            await spin()
            assert backend.entered.wait(5)
            # The backend never comes back in time: drain times out,
            # reports unclean, and the stuck waiter is settled (not
            # hung forever on a dead future).
            assert await controller.drain(timeout_s=0.05) is False
            with pytest.raises(RequestRejected) as exc:
                await stuck
            assert exc.value.code == CODE_DRAINING
            backend.release.set()  # let the worker thread exit

        run(scenario())

    def test_drain_idempotent_on_idle_controller(self, clock):
        async def scenario():
            controller = AdmissionController(
                EchoBackend(), AdmissionConfig(), clock=clock
            )
            controller.start()
            assert await controller.drain() is True

        run(scenario())


class TestAdmissionEdgeRaces:
    """The timing races at the pipeline's stage boundaries."""

    def test_deadline_already_expired_at_submit(self, clock):
        # A zero-budget request is admitted (the bucket and queue know
        # nothing of deadlines) but must die at dispatch without
        # costing the backend anything.
        async def scenario():
            backend = EchoBackend()
            controller = AdmissionController(
                backend, AdmissionConfig(max_concurrency=1), clock=clock
            )
            controller.start()
            try:
                with pytest.raises(RequestRejected) as exc:
                    await controller.submit(
                        "probe", (1, 1, 2), deadline_s=0.0
                    )
                assert exc.value.code == CODE_DEADLINE
                assert backend.probe_calls == []
                counters = controller.obs.snapshot()["counters"]
                assert counters["serve.deadline.queued"] == 1
            finally:
                await controller.drain()

        run(scenario())

    def test_drain_racing_a_dispatcher_mid_batch(self, clock):
        # Drain begins while a batch is held inside the backend and
        # more work sits queued behind it: nothing admitted may be
        # abandoned — the dispatcher finishes the in-flight batch,
        # then drains the queue, and only then does drain() return.
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(max_concurrency=1, batch_max=2),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            in_flight = loop.create_task(
                controller.submit("probe", ("flying", 1, 2))
            )
            await spin()
            assert backend.entered.wait(5)
            queued = [
                loop.create_task(controller.submit("probe", (i, 1, 2)))
                for i in range(2)
            ]
            await spin()
            assert controller.queue_depth == 2
            drain = loop.create_task(controller.drain(timeout_s=5.0))
            await spin()
            assert controller.draining
            backend.release.set()
            assert await in_flight == ("probe", ("flying", 1, 2))
            results = await asyncio.gather(*queued)
            assert results == [("probe", (i, 1, 2)) for i in range(2)]
            assert await drain is True
            counters = controller.obs.snapshot()["counters"]
            assert f"serve.rejected.{CODE_DRAINING}" not in counters

        run(scenario())

    def test_token_refill_exactly_at_boundary_tick(self, clock):
        # 2 tokens/s from empty: the token exists at exactly +0.5 s
        # (powers of two, so the arithmetic is exact in binary), and
        # the tick before it still rejects.
        async def scenario():
            controller = AdmissionController(
                EchoBackend(),
                AdmissionConfig(
                    tenant_rate=2.0, tenant_burst=1.0, max_concurrency=1
                ),
                clock=clock,
            )
            controller.start()
            try:
                await controller.submit("probe", (1, 1, 2))
                clock.advance(0.25)
                with pytest.raises(RequestRejected) as exc:
                    await controller.submit("probe", (2, 1, 2))
                assert exc.value.code == CODE_RATE_LIMIT
                clock.advance(0.25)  # exactly the refill boundary
                await controller.submit("probe", (3, 1, 2))
                with pytest.raises(RequestRejected):
                    await controller.submit("probe", (4, 1, 2))
            finally:
                await controller.drain()

        run(scenario())
