"""Shared fakes for the serving-frontend tests.

The admission tests run on fake backends and a fake clock so every
time-dependent path (bucket refill, queued-deadline expiry) is exact,
with no real sleeping.
"""

import threading

import pytest


class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class EchoBackend:
    """Instant backend: answers derived from the specs, call log kept."""

    def __init__(self) -> None:
        self.probe_calls: list[list] = []
        self.scan_calls: list[list] = []

    def probe_many(self, specs):
        self.probe_calls.append(list(specs))
        return [("probe", spec) for spec in specs]

    def scan_many(self, specs):
        self.scan_calls.append(list(specs))
        return [("scan", spec) for spec in specs]


class GateBackend(EchoBackend):
    """Backend that blocks in the worker thread until released."""

    def __init__(self) -> None:
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()

    def probe_many(self, specs):
        self.entered.set()
        assert self.release.wait(10), "test forgot to release the gate"
        return super().probe_many(specs)

    def scan_many(self, specs):
        self.entered.set()
        assert self.release.wait(10), "test forgot to release the gate"
        return super().scan_many(specs)


@pytest.fixture
def clock():
    return FakeClock()
