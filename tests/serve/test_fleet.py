"""Fleet tests: multi-frontend boot, restart-in-place, rolling restarts.

Real TCP against one small shared demo cluster (same module-level cache
idiom as ``test_server``): the properties under test — port rebinding,
lazy client reconnect, zero-loss rolls — live in the socket path.
"""

import asyncio

import pytest

from repro.errors import FrontendError, TransportError
from repro.serve.admission import AdmissionConfig
from repro.serve.demo import DemoClusterConfig, build_demo_cluster
from repro.serve.fleet import FrontendFleet, RollingRestartOrchestrator
from repro.serve.resilience import (
    ResilientClientConfig,
    RetryBudgetConfig,
)

SMALL = DemoClusterConfig(
    window=3, n_indexes=2, n_shards=2, domain=40,
    records_per_day=12, extra_days=1, seed=11,
)

_sim = None


def sim():
    global _sim
    if _sim is None:
        _sim = build_demo_cluster(SMALL)
    return _sim


def run(coro):
    return asyncio.run(coro)


def make_fleet(n=2, **config_overrides):
    return FrontendFleet(
        sim().coordinator,
        AdmissionConfig(**config_overrides),
        n_frontends=n,
    )


class TestFleetLifecycle:
    def test_fleet_size_validation(self):
        with pytest.raises(FrontendError):
            FrontendFleet(sim().coordinator, n_frontends=0)

    def test_boot_serves_on_distinct_ports(self):
        async def scenario():
            fleet = make_fleet(3)
            await fleet.start()
            try:
                assert len(fleet) == 3
                assert len(set(fleet.ports)) == 3
                for idx in range(3):
                    client = await fleet.client(idx)
                    try:
                        assert await client.ping() is True
                    finally:
                        await client.close()
            finally:
                await fleet.close()

        run(scenario())

    def test_restart_keeps_the_port(self):
        async def scenario():
            fleet = make_fleet(2)
            await fleet.start()
            try:
                before = list(fleet.ports)
                assert await fleet.restart(0) is True  # clean drain
                assert fleet.ports == before
                assert fleet.restarts == 1
                client = await fleet.client(0)
                try:
                    assert await client.ping() is True
                finally:
                    await client.close()
            finally:
                await fleet.close()

        run(scenario())

    def test_client_reconnects_lazily_after_restart(self):
        async def scenario():
            fleet = make_fleet(2)
            await fleet.start()
            client = await fleet.client(0)
            try:
                t1, t2 = SMALL.oldest_day, SMALL.last_day
                first = await client.probe(3, t1, t2)
                await fleet.restart(0)
                await asyncio.sleep(0.05)  # let the EOF reach the reader
                # Same client object, same saved address: the next call
                # opens a fresh connection instead of failing forever.
                second = await client.probe(3, t1, t2)
                assert second.entries == first.entries
                assert client.reconnects == 1
            finally:
                await client.close()
                await fleet.close()

        run(scenario())

    def test_kill_darkens_the_port_until_revive(self):
        async def scenario():
            fleet = make_fleet(2)
            await fleet.start()
            try:
                client = await fleet.client(1)
                try:
                    await fleet.kill(1)
                    await asyncio.sleep(0.05)
                    t1, t2 = SMALL.oldest_day, SMALL.last_day
                    with pytest.raises(TransportError):
                        await client.probe(1, t1, t2)
                        await client.probe(1, t1, t2)  # reconnect refused
                finally:
                    await client.close()
                await fleet.revive(1)
                revived = await fleet.client(1)
                try:
                    assert await revived.ping() is True
                finally:
                    await revived.close()
            finally:
                await fleet.close()

        run(scenario())

    def test_stats_aggregate_and_mark_down_frontends(self):
        async def scenario():
            fleet = make_fleet(2)
            await fleet.start()
            try:
                client = await fleet.client(0)
                try:
                    t1, t2 = SMALL.oldest_day, SMALL.last_day
                    await client.probe(2, t1, t2)
                finally:
                    await client.close()
                await fleet.kill(1)
                stats = fleet.stats()
                assert stats["frontends"][0]["up"] is True
                assert stats["frontends"][1]["up"] is False
                assert stats["totals"]["serve.completed"] == 1
            finally:
                await fleet.close()

        run(scenario())


class TestRollingRestart:
    def test_roll_loses_nothing_with_a_resilient_client(self):
        async def scenario():
            fleet = make_fleet(2)
            await fleet.start()
            client = await fleet.resilient_client(
                ResilientClientConfig(
                    max_attempts=5, hedge=True, hedge_initial_s=0.02,
                    budget=RetryBudgetConfig(
                        ratio=0.5, reserve=20.0, cap=100.0
                    ),
                )
            )
            try:
                t1, t2 = SMALL.oldest_day, SMALL.last_day
                direct = sim().coordinator.probe(5, t1, t2)
                orchestrator = RollingRestartOrchestrator(
                    fleet, drain_timeout_s=2.0, settle_s=0.02
                )
                roll = asyncio.get_running_loop().create_task(
                    orchestrator.rolling_restart()
                )
                completed = 0
                while not roll.done():
                    result = await client.probe(5, t1, t2)
                    assert result.entries == direct.entries
                    completed += 1
                    await asyncio.sleep(0.005)
                report = await roll
                # Every frontend rolled, and not one request was lost
                # while a third to a half of the fleet was down.
                assert report.restarted == [0, 1]
                assert fleet.restarts == 2
                assert completed > 0
                assert report.to_dict()["restarted"] == [0, 1]
            finally:
                await client.close()
                await fleet.close()

        run(scenario())
