"""Load-generator tests: schedules, arrival processes, populations."""

import asyncio
import math
import random

import pytest

from repro.errors import (
    BackendError,
    RequestRejected,
    TransportError,
    WorkloadError,
)
from repro.loadgen import (
    LoadConfig,
    LoadReport,
    build_schedule,
    run_load,
)
from repro.loadgen.arrivals import (
    TenantPopulation,
    modulated_arrivals,
    poisson_arrivals,
    usenet_diurnal_profile,
)


class TestArrivals:
    def test_poisson_rate_is_respected(self):
        rng = random.Random(3)
        times = poisson_arrivals(500.0, 10.0, rng)
        assert all(0 <= t < 10.0 for t in times)
        assert times == sorted(times)
        # Mean of a Poisson(5000) count: generous 5-sigma tolerance.
        assert abs(len(times) - 5000) < 5 * math.sqrt(5000)

    def test_poisson_is_deterministic_per_seed(self):
        a = poisson_arrivals(100.0, 2.0, random.Random(7))
        b = poisson_arrivals(100.0, 2.0, random.Random(7))
        assert a == b

    def test_modulated_mean_rate_matches(self):
        rng = random.Random(5)
        profile = (2.0, 0.5, 0.5, 1.0)
        times = modulated_arrivals(400.0, 10.0, profile, rng)
        assert abs(len(times) - 4000) < 5 * math.sqrt(4000)

    def test_modulation_shifts_mass_toward_heavy_segments(self):
        rng = random.Random(5)
        profile = (3.0, 1.0)
        times = modulated_arrivals(400.0, 10.0, profile, rng)
        first_half = sum(1 for t in times if t < 5.0)
        # 3:1 intensity ratio: the first half must carry ~75%.
        assert first_half / len(times) == pytest.approx(0.75, abs=0.05)

    def test_diurnal_profile_is_mean_one(self):
        profile = usenet_diurnal_profile(7)
        assert len(profile) == 7
        assert math.fsum(profile) / 7 == pytest.approx(1.0)
        assert max(profile) / min(profile) > 1.5  # real weekly swing

    def test_rejects_bad_rates(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(0.0, 1.0, random.Random(1))
        with pytest.raises(WorkloadError):
            modulated_arrivals(10.0, 1.0, (), random.Random(1))


class TestTenantPopulation:
    def test_sizes_sum_to_population(self):
        population = TenantPopulation(n_users=1_000_000, n_tenants=8)
        sizes = population.tenant_sizes()
        assert sum(sizes) == 1_000_000
        assert len(sizes) == 8
        assert all(s >= 1 for s in sizes)

    def test_zipf_skew_orders_tenants(self):
        sizes = TenantPopulation(
            n_users=1_000_000, n_tenants=6, skew=1.1
        ).tenant_sizes()
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > 2 * sizes[-1]

    def test_sample_attributes_by_share(self):
        population = TenantPopulation(n_users=100_000, n_tenants=4)
        rng = random.Random(13)
        counts: dict[str, int] = {}
        for _ in range(20_000):
            tenant, uid = population.sample(rng)
            assert 0 <= uid < 100_000
            counts[tenant] = counts.get(tenant, 0) + 1
        sizes = population.tenant_sizes()
        for i, size in enumerate(sizes):
            share = counts.get(f"tenant-{i}", 0) / 20_000
            assert share == pytest.approx(size / 100_000, abs=0.02)

    def test_user_ids_partition_by_tenant(self):
        population = TenantPopulation(n_users=1_000, n_tenants=3)
        sizes = population.tenant_sizes()
        bounds = [sum(sizes[:i + 1]) for i in range(3)]
        rng = random.Random(2)
        for _ in range(500):
            tenant, uid = population.sample(rng)
            index = int(tenant.split("-")[1])
            lo = 0 if index == 0 else bounds[index - 1]
            assert lo <= uid < bounds[index]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TenantPopulation(n_users=2, n_tenants=5)
        with pytest.raises(WorkloadError):
            TenantPopulation(n_users=0)


class TestSchedule:
    def test_deterministic_per_seed(self):
        config = LoadConfig(duration_s=1.0, offered_qps=200.0, seed=21)
        assert build_schedule(config) == build_schedule(config)

    def test_different_seed_different_schedule(self):
        a = build_schedule(LoadConfig(duration_s=1.0, seed=1))
        b = build_schedule(LoadConfig(duration_s=1.0, seed=2))
        assert a != b

    def test_requests_are_well_formed(self):
        config = LoadConfig(
            duration_s=1.0, offered_qps=300.0, probe_fraction=0.5,
            domain=50, t_lo=2, t_hi=6, seed=3,
        )
        schedule = build_schedule(config)
        ops = {r.op for r in schedule}
        assert ops == {"probe", "scan"}
        for request in schedule:
            assert 0.0 <= request.at < 1.0
            assert 2 <= request.t1 <= request.t2 <= 6
            if request.op == "probe":
                assert 1 <= request.value <= 50
            else:
                assert request.value is None
            assert request.tenant.startswith("tenant-")

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            LoadConfig(duration_s=0.0)
        with pytest.raises(WorkloadError):
            LoadConfig(arrivals="bursty")
        with pytest.raises(WorkloadError):
            LoadConfig(probe_fraction=1.5)
        with pytest.raises(WorkloadError):
            LoadConfig(t_lo=5, t_hi=2)


class CountingClient:
    """Client fake: everything completes instantly."""

    def __init__(self):
        self.probes = 0
        self.scans = 0

    async def probe(self, value, t1, t2, *, tenant, deadline_ms):
        self.probes += 1
        return ("probe", value)

    async def scan(self, t1, t2, *, tenant, deadline_ms):
        self.scans += 1
        return ("scan", t1, t2)


class SheddingClient(CountingClient):
    """Client fake rejecting every other request."""

    async def probe(self, value, t1, t2, *, tenant, deadline_ms):
        if self.probes % 2 == 1:
            self.probes += 1
            raise RequestRejected("shed-overload", "full")
        return await super().probe(
            value, t1, t2, tenant=tenant, deadline_ms=deadline_ms
        )


class TestRunLoad:
    def config(self, **overrides):
        defaults = dict(
            duration_s=0.2, offered_qps=300.0, seed=5,
            population=TenantPopulation(n_users=1000, n_tenants=3),
        )
        defaults.update(overrides)
        return LoadConfig(**defaults)

    def test_open_loop_offers_the_whole_schedule(self):
        config = self.config()
        client = CountingClient()
        report = asyncio.run(run_load(client, config))
        schedule = build_schedule(config)
        assert report.offered == len(schedule)
        assert report.completed == report.offered
        assert client.probes + client.scans == report.offered
        assert report.errors == 0
        assert report.latency["count"] == report.completed

    def test_rejections_binned_by_code(self):
        report = asyncio.run(
            run_load(SheddingClient(), self.config(probe_fraction=1.0))
        )
        assert report.rejected.get("shed-overload", 0) > 0
        assert report.shed == report.rejected["shed-overload"]
        assert report.completed + report.shed == report.offered
        assert 0.0 < report.shed_ratio < 1.0

    def test_per_tenant_accounting_is_consistent(self):
        report = asyncio.run(run_load(CountingClient(), self.config()))
        offered = sum(b["offered"] for b in report.per_tenant.values())
        completed = sum(
            b["completed"] for b in report.per_tenant.values()
        )
        assert offered == report.offered
        assert completed == report.completed

    def test_report_serialises(self):
        import json

        report = asyncio.run(run_load(CountingClient(), self.config()))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["offered"] == report.offered
        assert "latency" in payload and "max_lag_s" in payload

    def test_report_properties(self):
        report = LoadReport(
            offered=100, offered_qps=50.0, wall_duration_s=2.0,
            completed=80, rejected={"shed-overload": 20}, errors=0,
            latency={}, per_tenant={}, max_lag_s=0.0,
        )
        assert report.admitted_qps == 40.0
        assert report.shed_ratio == pytest.approx(0.2)
        assert report.reject_ratio == pytest.approx(0.2)


class TornClient(CountingClient):
    """Client fake whose transport tears on every other probe."""

    async def probe(self, value, t1, t2, *, tenant, deadline_ms):
        if self.probes % 2 == 1:
            self.probes += 1
            raise TransportError("torn stream")
        return await super().probe(
            value, t1, t2, tenant=tenant, deadline_ms=deadline_ms
        )


class FlakyReplica:
    """Resilient-client leg: fails its first ``fail_times`` calls."""

    def __init__(self, fail_times=0):
        self.calls = 0
        self.fail_times = fail_times

    async def _respond(self, result):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise BackendError("warming up")
        return result

    async def probe(self, value, t1, t2, *, tenant="default",
                    deadline_ms=None):
        return await self._respond(("probe", value))

    async def scan(self, t1, t2, *, tenant="default", deadline_ms=None):
        return await self._respond(("scan", t1, t2))

    async def close(self):
        return None


class TestResilienceAccounting:
    def config(self, **overrides):
        defaults = dict(
            duration_s=0.2, offered_qps=300.0, seed=5,
            population=TenantPopulation(n_users=1000, n_tenants=3),
        )
        defaults.update(overrides)
        return LoadConfig(**defaults)

    def test_explicit_schedule_overrides_the_config(self):
        # The A/B shape: two runs offered byte-identical traffic even
        # though only one schedule was built.
        config = self.config()
        schedule = build_schedule(config)[:10]
        client = CountingClient()
        report = asyncio.run(run_load(client, config, schedule=schedule))
        assert report.offered == 10
        assert client.probes + client.scans == 10

    def test_transport_errors_split_out_of_errors(self):
        report = asyncio.run(
            run_load(TornClient(), self.config(probe_fraction=1.0))
        )
        assert report.transport_errors > 0
        assert report.transport_errors == report.errors
        assert report.completed + report.errors == report.offered
        assert report.to_dict()["transport_errors"] == report.transport_errors

    def test_rejections_broken_down_per_tenant_per_code(self):
        report = asyncio.run(
            run_load(SheddingClient(), self.config(probe_fraction=1.0))
        )
        by_code: dict[str, int] = {}
        for codes in report.rejected_by_tenant.values():
            for code, count in codes.items():
                by_code[code] = by_code.get(code, 0) + count
        assert by_code == report.rejected
        for tenant, codes in report.rejected_by_tenant.items():
            assert sum(codes.values()) == (
                report.per_tenant[tenant]["rejected"]
            )

    def test_plain_client_reports_unit_amplification(self):
        report = asyncio.run(run_load(CountingClient(), self.config()))
        assert report.amplification == 1.0
        assert report.resilience is None
        assert "resilience" not in report.to_dict()

    def test_resilient_client_amplification_measured(self):
        from repro.serve.resilience import (
            ResilientClient,
            ResilientClientConfig,
            RetryBudgetConfig,
        )

        flaky = FlakyReplica(fail_times=10 ** 9)  # always down
        healthy = FlakyReplica()
        client = ResilientClient(
            [flaky, healthy],
            ResilientClientConfig(
                hedge=False, max_attempts=3, backoff_base_s=0.0,
                backoff_cap_s=0.0,
                budget=RetryBudgetConfig(ratio=1.0, reserve=10.0),
            ),
        )
        report = asyncio.run(run_load(client, self.config()))
        # Every request landing on the dead replica costs a retry, so
        # attempts/offered sits strictly above 1 — and the resilience
        # section carries the breakdown.  (BackendError does not
        # penalty-box the replica, so under concurrent round-robin a
        # request may draw the dead leg on every attempt and error —
        # that is the taxonomy working, not a loss.)
        assert report.completed + report.errors == report.offered
        assert report.completed > 0
        assert report.amplification > 1.0
        assert report.resilience is not None
        assert report.resilience["retries"] > 0
        assert report.resilience["requests"] == report.offered
        assert report.to_dict()["resilience"]["retries"] == (
            report.resilience["retries"]
        )

    def test_amplification_is_a_per_burst_delta(self):
        from repro.serve.resilience import (
            ResilientClient,
            ResilientClientConfig,
        )

        client = ResilientClient(
            [FlakyReplica()], ResilientClientConfig(hedge=False)
        )
        first = asyncio.run(run_load(client, self.config()))
        second = asyncio.run(run_load(client, self.config(seed=6)))
        # A healthy second burst reports 1.0 even though the client
        # object has history: the stats are measured as deltas.
        assert first.amplification == 1.0
        assert second.amplification == 1.0
        assert second.resilience["requests"] == second.offered
