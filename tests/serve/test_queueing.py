"""Request-queue tests: the FIFO veneer and the DRR discipline.

The DRR schedule is pure arithmetic (deficits, quanta, weights), so
every fairness property is asserted on exact dequeue orders — no load,
no timing.  The async put/get paths are exercised with parked waiter
tasks on a live event loop.
"""

import asyncio

import pytest

from repro.errors import FrontendError, RequestRejected
from repro.serve.admission import (
    CODE_SHED,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.queueing import (
    QUEUE_DISCIPLINES,
    DrrRequestQueue,
    FifoRequestQueue,
    build_request_queue,
)

from .conftest import GateBackend


def run(coro):
    return asyncio.run(coro)


async def spin(n: int = 10) -> None:
    for _ in range(n):
        await asyncio.sleep(0)


class Req:
    """Queue item stub: just a tenant and a label."""

    def __init__(self, tenant: str, label: int) -> None:
        self.tenant = tenant
        self.label = label

    def __repr__(self) -> str:
        return f"{self.tenant}{self.label}"


def fill(queue, *items: tuple[str, int]) -> None:
    for tenant, label in items:
        queue.put_nowait(Req(tenant, label))


def drain_order(queue) -> list[str]:
    order = []
    while not queue.empty():
        order.append(repr(queue.get_nowait()))
    return order


class TestFifoVeneer:
    def test_preserves_arrival_order(self):
        queue = FifoRequestQueue(maxsize=8)
        fill(queue, ("a", 1), ("b", 1), ("a", 2))
        assert drain_order(queue) == ["a1", "b1", "a2"]

    def test_put_nowait_full_raises_queuefull(self):
        queue = FifoRequestQueue(maxsize=1)
        fill(queue, ("a", 1))
        with pytest.raises(asyncio.QueueFull):
            queue.put_nowait(Req("a", 2))

    def test_peek_matches_next_get(self):
        queue = FifoRequestQueue(maxsize=4)
        assert queue.peek() is None
        fill(queue, ("a", 1), ("b", 1))
        assert queue.peek() is not None
        assert repr(queue.peek()) == "a1"
        assert repr(queue.get_nowait()) == "a1"
        assert repr(queue.peek()) == "b1"

    def test_size_inspection(self):
        queue = FifoRequestQueue(maxsize=4)
        assert queue.empty() and queue.qsize() == 0
        fill(queue, ("a", 1), ("a", 2))
        assert not queue.empty() and queue.qsize() == 2


class TestDrrSchedule:
    def test_equal_weights_interleave(self):
        # Plain round-robin at quantum 1: one request per tenant turn,
        # regardless of backlog depth.
        queue = DrrRequestQueue(maxsize=16)
        fill(
            queue,
            ("a", 1), ("a", 2), ("a", 3),
            ("b", 1), ("b", 2), ("b", 3),
        )
        assert drain_order(queue) == ["a1", "b1", "a2", "b2", "a3", "b3"]

    def test_single_tenant_degenerates_to_fifo(self):
        queue = DrrRequestQueue(maxsize=8)
        fill(queue, ("a", 1), ("a", 2), ("a", 3))
        assert drain_order(queue) == ["a1", "a2", "a3"]

    def test_weight_two_drains_twice_as_fast(self):
        queue = DrrRequestQueue(maxsize=16, weights={"a": 2.0})
        fill(
            queue,
            ("a", 1), ("a", 2), ("a", 3), ("a", 4),
            ("b", 1), ("b", 2),
        )
        assert drain_order(queue) == ["a1", "a2", "b1", "a3", "a4", "b2"]

    def test_fractional_weight_accumulates_deficit(self):
        # Weight 0.5 earns half a unit of credit per turn: tenant b is
        # served every *other* round, via the carried deficit.
        queue = DrrRequestQueue(maxsize=16, weights={"b": 0.5})
        fill(
            queue,
            ("a", 1), ("a", 2), ("a", 3), ("a", 4),
            ("b", 1), ("b", 2),
        )
        assert drain_order(queue) == ["a1", "a2", "b1", "a3", "a4", "b2"]

    def test_emptied_tenant_forfeits_deficit(self):
        # Classic DRR: idle tenants must not bank credit.  Tenant b
        # (weight 0.5) banks 0.5 deficit, then empties; when it comes
        # back it starts from zero and again waits out a full round.
        queue = DrrRequestQueue(maxsize=16, weights={"b": 0.5})
        fill(queue, ("a", 1), ("a", 2), ("b", 1))
        assert drain_order(queue) == ["a1", "a2", "b1"]
        fill(queue, ("a", 3), ("a", 4), ("b", 2))
        assert drain_order(queue) == ["a3", "a4", "b2"]

    def test_peek_matches_next_get(self):
        queue = DrrRequestQueue(maxsize=16)
        assert queue.peek() is None
        fill(queue, ("a", 1), ("a", 2), ("b", 1))
        while not queue.empty():
            peeked = queue.peek()
            assert peeked is queue.get_nowait()

    def test_get_nowait_on_empty_raises(self):
        queue = DrrRequestQueue(maxsize=4)
        with pytest.raises(asyncio.QueueEmpty):
            queue.get_nowait()

    def test_tenant_backlogs(self):
        queue = DrrRequestQueue(maxsize=16)
        fill(queue, ("a", 1), ("a", 2), ("b", 1))
        assert queue.tenant_backlogs() == {"a": 2, "b": 1}
        queue.get_nowait()
        queue.get_nowait()
        queue.get_nowait()
        assert queue.tenant_backlogs() == {}


class TestDrrFairShedding:
    def test_full_queue_evicts_largest_backlog(self):
        evicted = []
        queue = DrrRequestQueue(maxsize=4, on_evict=evicted.append)
        fill(queue, ("hog", 1), ("hog", 2), ("hog", 3), ("light", 1))
        # A second light tenant arrives at a full queue: the hog's
        # *newest* request makes room, not the arrival.
        queue.put_nowait(Req("other", 1))
        assert queue.qsize() == 4
        assert queue.evicted == 1
        assert [repr(r) for r in evicted] == ["hog3"]
        assert queue.tenant_backlogs() == {"hog": 2, "light": 1, "other": 1}

    def test_largest_arriving_tenant_sheds_itself(self):
        # The hog cannot evict anyone (no strictly larger backlog
        # exists), so its own arrival is shed — same QueueFull surface
        # as the FIFO queue.
        queue = DrrRequestQueue(maxsize=3)
        fill(queue, ("hog", 1), ("hog", 2), ("light", 1))
        with pytest.raises(asyncio.QueueFull):
            queue.put_nowait(Req("hog", 3))
        assert queue.evicted == 0
        assert queue.qsize() == 3

    def test_tied_backlogs_shed_the_arrival(self):
        # Strictly larger, not >=: when the arriving tenant's backlog
        # ties the biggest one, no other tenant is more responsible for
        # the overload, so the arrival itself is shed.
        queue = DrrRequestQueue(maxsize=4)
        fill(queue, ("a", 1), ("a", 2), ("b", 1), ("b", 2))
        with pytest.raises(asyncio.QueueFull):
            queue.put_nowait(Req("b", 3))
        assert queue.evicted == 0

    def test_eviction_can_empty_a_tenant(self):
        # Evicting a tenant's only request retires it from the round
        # cleanly — the subsequent dequeues see just the newcomer.
        queue = DrrRequestQueue(maxsize=1)
        fill(queue, ("hog", 1))
        queue.put_nowait(Req("light", 1))
        assert queue.evicted == 1
        assert drain_order(queue) == ["light1"]


class TestDrrAsyncPaths:
    def test_get_waits_for_put(self):
        async def scenario():
            queue = DrrRequestQueue(maxsize=4)
            getter = asyncio.get_running_loop().create_task(queue.get())
            await spin()
            assert not getter.done()
            queue.put_nowait(Req("a", 1))
            assert repr(await getter) == "a1"

        run(scenario())

    def test_cancelled_getter_passes_wakeup_on(self):
        async def scenario():
            queue = DrrRequestQueue(maxsize=4)
            loop = asyncio.get_running_loop()
            first = loop.create_task(queue.get())
            second = loop.create_task(queue.get())
            await spin()
            first.cancel()
            await spin()
            queue.put_nowait(Req("a", 1))
            assert repr(await second) == "a1"
            with pytest.raises(asyncio.CancelledError):
                await first

        run(scenario())

    def test_put_backpressure_waits_for_space(self):
        async def scenario():
            queue = DrrRequestQueue(maxsize=1)
            queue.put_nowait(Req("a", 1))
            putter = asyncio.get_running_loop().create_task(
                queue.put(Req("a", 2))
            )
            await spin()
            assert not putter.done()
            assert repr(queue.get_nowait()) == "a1"
            await putter
            assert repr(queue.get_nowait()) == "a2"

        run(scenario())

    def test_backpressure_put_never_evicts(self):
        async def scenario():
            evicted = []
            queue = DrrRequestQueue(maxsize=2, on_evict=evicted.append)
            fill(queue, ("hog", 1), ("hog", 2))
            putter = asyncio.get_running_loop().create_task(
                queue.put(Req("light", 1))
            )
            await spin()
            # The queue policy parks the submitter; fair shedding is a
            # shed-policy behaviour only.
            assert not putter.done()
            assert evicted == []
            queue.get_nowait()
            await putter
            assert queue.qsize() == 2

        run(scenario())


class TestBuildRequestQueue:
    def test_builds_both_disciplines(self):
        assert isinstance(build_request_queue("fifo", 4), FifoRequestQueue)
        drr = build_request_queue(
            "drr", 4, quantum=2.0, weights={"a": 3.0}
        )
        assert isinstance(drr, DrrRequestQueue)
        assert drr.quantum == 2.0
        assert drr.weights == {"a": 3.0}

    def test_unknown_discipline_raises(self):
        with pytest.raises(FrontendError, match="discipline"):
            build_request_queue("lifo", 4)
        assert "fifo" in QUEUE_DISCIPLINES and "drr" in QUEUE_DISCIPLINES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"maxsize": 0},
            {"maxsize": 4, "quantum": 0.0},
            {"maxsize": 4, "weights": {"a": 0.0}},
            {"maxsize": 4, "weights": {"a": -1.0}},
        ],
    )
    def test_drr_validation(self, kwargs):
        with pytest.raises(FrontendError):
            DrrRequestQueue(**kwargs)


class TestDrrThroughController:
    """Fair shedding end to end: the evicted waiter is settled."""

    def test_eviction_settles_waiter_with_shed(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = AdmissionController(
                backend,
                AdmissionConfig(
                    max_queue_depth=2, max_concurrency=1, batch_max=1,
                    overload_policy="shed", queue_discipline="drr",
                ),
                clock=clock,
            )
            controller.start()
            loop = asyncio.get_running_loop()
            blocker = loop.create_task(
                controller.submit("probe", ("block", 1, 2), tenant="hog")
            )
            await spin()
            assert backend.entered.wait(5)
            hogs = [
                loop.create_task(
                    controller.submit("probe", (i, 1, 2), tenant="hog")
                )
                for i in (1, 2)  # fills the depth-2 queue
            ]
            await spin()
            # A light tenant arrives at the full queue: instead of
            # shedding the light arrival (the FIFO behaviour), the
            # hog's newest queued request is evicted to make room.
            light = loop.create_task(
                controller.submit("probe", (9, 1, 2), tenant="light")
            )
            await spin()
            backend.release.set()
            assert await light == ("probe", (9, 1, 2))
            assert await blocker == ("probe", ("block", 1, 2))
            assert await hogs[0] == ("probe", (1, 1, 2))
            with pytest.raises(RequestRejected) as exc:
                await hogs[1]
            assert exc.value.code == CODE_SHED
            counters = controller.obs.snapshot()["counters"]
            assert counters["serve.shed.evicted"] == 1
            assert counters["serve.tenant.hog.rejected"] == 1
            assert "serve.tenant.light.rejected" not in counters
            await controller.drain()

        run(scenario())
