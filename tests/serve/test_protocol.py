"""Wire-protocol tests: framing, marshalling, and torn streams."""

import asyncio
import struct

import pytest

from repro.core.queries import ProbeResult, ScanResult
from repro.errors import FrontendError
from repro.index.entry import Entry
from repro.serve import protocol


def run(coro):
    return asyncio.run(coro)


def feed_reader(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    """Build a pre-fed reader (must run inside the event loop)."""
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


async def read_from(data: bytes, eof: bool = True):
    return await protocol.read_frame(feed_reader(data, eof))


class TestFraming:
    def test_round_trip(self):
        message = {"id": 7, "op": "probe", "value": 3, "t1": 1, "t2": 5}
        frame = protocol.encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_frame(frame[4:]) == message

    def test_read_frame_round_trip(self):
        message = {"id": 1, "ok": True, "result": "pong"}
        assert run(read_from(protocol.encode_frame(message))) == message

    def test_multiple_frames_in_sequence(self):
        a, b = {"id": 1}, {"id": 2}

        async def read_two():
            reader = feed_reader(
                protocol.encode_frame(a) + protocol.encode_frame(b)
            )
            return (
                await protocol.read_frame(reader),
                await protocol.read_frame(reader),
                await protocol.read_frame(reader),
            )

        first, second, third = run(read_two())
        assert (first, second) == (a, b)
        assert third is None  # clean EOF between frames

    def test_clean_eof_returns_none(self):
        assert run(read_from(b"")) is None

    def test_eof_mid_prefix_is_torn(self):
        with pytest.raises(FrontendError, match="mid-prefix"):
            run(read_from(b"\x00\x00"))

    def test_eof_mid_payload_is_torn(self):
        frame = protocol.encode_frame({"id": 1, "op": "ping"})
        with pytest.raises(FrontendError, match="mid-frame"):
            run(read_from(frame[:-3]))

    def test_oversized_announcement_rejected(self):
        huge = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(FrontendError, match="limit"):
            run(read_from(huge, eof=False))

    def test_malformed_json_rejected(self):
        with pytest.raises(FrontendError, match="malformed"):
            protocol.decode_frame(b"{nope")

    def test_non_object_payload_rejected(self):
        with pytest.raises(FrontendError, match="object"):
            protocol.decode_frame(b"[1, 2, 3]")


class TestResultMarshalling:
    def probe_result(self):
        return ProbeResult(
            (Entry(4, 2, "x"), Entry(9, 3, None)),
            0.25,
            3,
            frozenset({2, 3}),
            frozenset({4}),
        )

    def scan_result(self):
        return ScanResult(
            (Entry(1, 2, 7),),
            1.5,
            2,
            frozenset({2}),
            frozenset(),
        )

    def test_probe_round_trip(self):
        original = self.probe_result()
        rebuilt = protocol.result_from_wire(
            protocol.result_to_wire(original)
        )
        assert isinstance(rebuilt, ProbeResult)
        assert rebuilt == original

    def test_scan_round_trip(self):
        original = self.scan_result()
        rebuilt = protocol.result_from_wire(
            protocol.result_to_wire(original)
        )
        assert isinstance(rebuilt, ScanResult)
        assert rebuilt == original

    def test_wire_shape_is_plain_json(self):
        import json

        wire = protocol.result_to_wire(self.probe_result())
        assert wire["kind"] == "probe"
        assert wire["entries"] == [[4, 2, "x"], [9, 3, None]]
        assert wire["covered_days"] == [2, 3]
        json.dumps(wire)  # must not need custom encoders

    def test_survives_json_round_trip(self):
        import json

        wire = json.loads(json.dumps(protocol.result_to_wire(
            self.scan_result()
        )))
        assert protocol.result_from_wire(wire) == self.scan_result()

    def test_unknown_kind_rejected(self):
        wire = protocol.result_to_wire(self.probe_result())
        wire["kind"] = "mystery"
        with pytest.raises(FrontendError, match="mystery"):
            protocol.result_from_wire(wire)

    def test_malformed_payload_rejected(self):
        with pytest.raises(FrontendError, match="malformed"):
            protocol.result_from_wire({"kind": "probe"})


class TestResponses:
    def test_ok_response(self):
        assert protocol.ok_response(3, "pong") == {
            "id": 3, "ok": True, "result": "pong",
        }

    def test_error_response_carries_code(self):
        response = protocol.error_response(9, "shed-overload", "full")
        assert response["ok"] is False
        assert response["error"]["code"] == "shed-overload"
        assert response["id"] == 9
