"""End-to-end TCP tests: server + client over a real demo cluster.

One small cluster is built per module (session-scoped fixture would
leak across asyncio.run loops; the build is fast enough to share via a
plain module-level cache) and verified against direct coordinator
answers, so the wire path is checked for fidelity, not just liveness.
"""

import asyncio

import pytest

from repro.errors import FrontendError, RequestRejected
from repro.serve.admission import AdmissionConfig
from repro.serve.client import FrontendClient
from repro.serve.demo import DemoClusterConfig, build_demo_cluster
from repro.serve.server import FrontendServer

SMALL = DemoClusterConfig(
    window=3, n_indexes=2, n_shards=2, domain=40,
    records_per_day=12, extra_days=1, seed=11,
)

_sim = None


def sim():
    global _sim
    if _sim is None:
        _sim = build_demo_cluster(SMALL)
    return _sim


def run(coro):
    return asyncio.run(coro)


async def with_server(fn, config: AdmissionConfig | None = None):
    server = FrontendServer(sim().coordinator, config)
    await server.start()
    client = await FrontendClient().connect("127.0.0.1", server.port)
    try:
        return await fn(server, client)
    finally:
        await client.close()
        await server.drain_and_close(timeout_s=5.0)


class TestEndToEnd:
    def test_ping(self):
        async def scenario(server, client):
            assert await client.ping() is True

        run(with_server(scenario))

    def test_probe_matches_direct_coordinator(self):
        async def scenario(server, client):
            t1, t2 = SMALL.oldest_day, SMALL.last_day
            for value in range(1, 10):
                over_wire = await client.probe(value, t1, t2)
                direct = sim().coordinator.probe(value, t1, t2)
                assert over_wire.entries == direct.entries
                assert over_wire.covered_days == direct.covered_days
                assert over_wire.missing_days == direct.missing_days

        run(with_server(scenario))

    def test_scan_matches_direct_coordinator(self):
        async def scenario(server, client):
            t1, t2 = SMALL.oldest_day, SMALL.last_day
            over_wire = await client.scan(t1, t2)
            direct = sim().coordinator.scan(t1, t2)
            assert over_wire.entries == direct.entries
            assert over_wire.covered_days == direct.covered_days

        run(with_server(scenario))

    def test_pipelined_requests_multiplex_one_connection(self):
        async def scenario(server, client):
            t1, t2 = SMALL.oldest_day, SMALL.last_day
            results = await asyncio.gather(
                *(client.probe(v, t1, t2) for v in range(1, 21))
            )
            directs = [
                sim().coordinator.probe(v, t1, t2) for v in range(1, 21)
            ]
            assert [r.entries for r in results] == [
                d.entries for d in directs
            ]

        run(with_server(scenario))

    def test_stats_exposes_admission_state(self):
        async def scenario(server, client):
            await client.probe(1, SMALL.oldest_day, SMALL.last_day)
            stats = await client.stats()
            assert stats["draining"] is False
            assert stats["queue_depth"] == 0
            assert stats["counters"]["serve.admitted"] >= 1
            assert stats["counters"]["serve.completed"] >= 1

        run(with_server(scenario))

    def test_bad_request_gets_error_not_disconnect(self):
        async def scenario(server, client):
            with pytest.raises(FrontendError, match="bad-request"):
                await client.probe(1, "not-a-day", 2)
            # The connection survives a bad request.
            assert await client.ping() is True

        run(with_server(scenario))

    def test_unknown_op_rejected(self):
        async def scenario(server, client):
            with pytest.raises(FrontendError, match="unknown op"):
                await client._request({"op": "explode"})

        run(with_server(scenario))

    def test_tenant_rate_limit_over_the_wire(self):
        async def scenario(server, client):
            t1, t2 = SMALL.oldest_day, SMALL.last_day
            codes = []
            for _ in range(8):
                try:
                    await client.probe(1, t1, t2, tenant="busy")
                except RequestRejected as exc:
                    codes.append(exc.code)
            assert codes, "bucket of 3 must reject some of 8 requests"
            assert set(codes) == {"rate-limit"}

        run(with_server(
            scenario,
            AdmissionConfig(tenant_rate=0.001, tenant_burst=3.0),
        ))

    def test_draining_server_rejects_new_work(self):
        async def scenario():
            server = FrontendServer(sim().coordinator)
            await server.start()
            client = await FrontendClient().connect(
                "127.0.0.1", server.port
            )
            try:
                assert await server.drain_and_close(timeout_s=5.0) is True
            finally:
                await client.close()

        run(scenario())

    def test_deadline_propagates_over_the_wire(self):
        async def scenario(server, client):
            # A deadline that already passed must be rejected, not
            # answered late.
            with pytest.raises(RequestRejected) as exc:
                await client.probe(
                    1, SMALL.oldest_day, SMALL.last_day,
                    deadline_ms=-1.0,
                )
            assert exc.value.code == "deadline-expired"

        run(with_server(scenario))
