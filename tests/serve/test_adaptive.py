"""AIMD adaptive-concurrency tests.

The controller is pure arithmetic on explicit ``now`` values, so every
grow/shrink decision is asserted exactly; the end-to-end test drives it
through the admission controller on the fake clock.
"""

import asyncio

import pytest

from repro.errors import FrontendError
from repro.obs import MetricsRegistry
from repro.serve.adaptive import AdaptiveConfig, AimdController
from repro.serve.admission import AdmissionConfig, AdmissionController

from .conftest import EchoBackend, GateBackend


def run(coro):
    return asyncio.run(coro)


def feed(controller, latency_s, n=10):
    for _ in range(n):
        controller.record(latency_s)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_concurrency": 0},
            {"min_concurrency": 4, "max_concurrency": 2},
            {"target_p95_s": -1.0},
            {"target_p95_s": 0.0, "tolerance": 1.0},
            {"backoff_ratio": 0.0},
            {"backoff_ratio": 1.0},
            {"interval_s": 0.0},
            {"min_samples": 0},
            {"min_samples": 10, "window": 5},
        ],
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(FrontendError):
            AdaptiveConfig(**kwargs)

    def test_gradient_mode_allows_zero_target(self):
        config = AdaptiveConfig(target_p95_s=0.0, tolerance=2.0)
        assert config.tolerance == 2.0


class TestAimdController:
    def controller(self, **overrides):
        defaults = dict(
            min_concurrency=1, max_concurrency=8, target_p95_s=0.1,
            interval_s=1.0, min_samples=5,
        )
        defaults.update(overrides)
        return AimdController(AdaptiveConfig(**defaults))

    def test_starts_at_max(self):
        assert self.controller().limit == 8

    def test_first_evaluation_only_arms_the_clock(self):
        controller = self.controller()
        feed(controller, 10.0)  # way over target
        assert controller.maybe_evaluate(0.0) == 8  # arms, no verdict
        assert controller.maybe_evaluate(1.0) == 4  # now it judges

    def test_no_verdict_inside_the_interval(self):
        controller = self.controller()
        controller.maybe_evaluate(0.0)
        feed(controller, 10.0)
        assert controller.maybe_evaluate(0.5) == 8

    def test_multiplicative_decrease_over_target(self):
        controller = self.controller()
        controller.maybe_evaluate(0.0)
        feed(controller, 0.5)  # p95 0.5 > target 0.1
        assert controller.maybe_evaluate(1.0) == 4
        feed(controller, 0.5)
        assert controller.maybe_evaluate(2.0) == 2
        assert controller.decreases == 2

    def test_additive_increase_under_target(self):
        controller = self.controller()
        controller.maybe_evaluate(0.0)
        feed(controller, 0.5)
        assert controller.maybe_evaluate(1.0) == 4  # make headroom
        feed(controller, 0.01)  # healthy again
        assert controller.maybe_evaluate(2.0) == 5  # +1, not a jump
        feed(controller, 0.01)
        assert controller.maybe_evaluate(3.0) == 6
        assert controller.increases == 2

    def test_limit_clamps_at_min_and_max(self):
        controller = self.controller(min_concurrency=2)
        controller.maybe_evaluate(0.0)
        for step in range(1, 10):
            feed(controller, 1.0)
            controller.maybe_evaluate(float(step))
        assert controller.limit == 2  # floor, not zero
        for step in range(10, 30):
            feed(controller, 0.01)
            controller.maybe_evaluate(float(step))
        assert controller.limit == 8  # ceiling, not unbounded

    def test_too_few_samples_is_a_noop(self):
        controller = self.controller(min_samples=5)
        controller.maybe_evaluate(0.0)
        feed(controller, 10.0, n=4)  # one short of a verdict
        assert controller.maybe_evaluate(1.0) == 8
        assert controller.decreases == 0

    def test_verdict_consumes_its_window(self):
        # The latencies behind a decrease must not also justify the
        # next one: after a verdict the window restarts empty.
        controller = self.controller()
        controller.maybe_evaluate(0.0)
        feed(controller, 10.0)
        assert controller.maybe_evaluate(1.0) == 4
        assert controller.maybe_evaluate(2.0) == 4  # no evidence left
        assert controller.snapshot()["window_count"] == 0.0

    def test_gradient_mode_backs_off_relative_to_floor(self):
        controller = self.controller(target_p95_s=0.0, tolerance=2.0)
        controller.maybe_evaluate(0.0)
        feed(controller, 0.1)  # establishes the 0.1 s floor
        assert controller.maybe_evaluate(1.0) == 8
        feed(controller, 0.15)  # 1.5x floor: inside tolerance
        assert controller.maybe_evaluate(2.0) == 8
        feed(controller, 0.25)  # 2.5x floor: over tolerance
        assert controller.maybe_evaluate(3.0) == 4
        assert controller.snapshot()["floor_p95_s"] == pytest.approx(0.1)

    def test_metrics_published(self):
        metrics = MetricsRegistry()
        controller = AimdController(
            AdaptiveConfig(target_p95_s=0.1, interval_s=1.0),
            metrics=metrics,
        )
        controller.maybe_evaluate(0.0)
        feed(controller, 10.0)
        controller.maybe_evaluate(1.0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["serve.adaptive.decrease"] == 1
        assert snapshot["histograms"]["serve.adaptive.limit"]["count"] == 1

    def test_snapshot_keys(self):
        snapshot = self.controller().snapshot()
        assert set(snapshot) == {
            "limit", "increases", "decreases", "floor_p95_s",
            "window_count",
        }


class TestAdaptiveThroughAdmission:
    def test_adaptive_ceiling_above_pool_rejected(self):
        with pytest.raises(FrontendError, match="max_concurrency"):
            AdmissionConfig(
                max_concurrency=2,
                adaptive=AdaptiveConfig(max_concurrency=4),
            )

    def test_fixed_pool_exposes_no_adaptive_state(self, clock):
        async def scenario():
            controller = AdmissionController(
                EchoBackend(), AdmissionConfig(), clock=clock
            )
            controller.start()
            try:
                assert controller.adaptive_snapshot is None
                assert (
                    controller.concurrency_limit
                    == controller.config.max_concurrency
                )
            finally:
                await controller.drain()

        run(scenario())

    def adaptive_controller(self, backend, clock):
        return AdmissionController(
            backend,
            AdmissionConfig(
                max_concurrency=4,
                adaptive=AdaptiveConfig(
                    min_concurrency=1, max_concurrency=4,
                    target_p95_s=0.5, interval_s=0.5, min_samples=1,
                ),
            ),
            clock=clock,
        )

    async def slow_cycle(self, controller, backend, clock, spec):
        """One request whose fake-clock latency blows the 0.5 s target."""
        backend.entered.clear()
        backend.release.clear()
        task = asyncio.get_running_loop().create_task(
            controller.submit("probe", spec)
        )
        for _ in range(10):
            await asyncio.sleep(0)
        assert backend.entered.wait(5)
        clock.advance(2.0)  # in flight: latency lands at 2.0 s
        backend.release.set()
        assert await task == ("probe", spec)

    def test_limit_shrinks_under_latency_then_regrows(self, clock):
        async def scenario():
            backend = GateBackend()
            controller = self.adaptive_controller(backend, clock)
            controller.start()
            try:
                assert controller.concurrency_limit == 4
                # First slow completion arms the evaluation clock;
                # the second delivers the over-target verdict.
                await self.slow_cycle(controller, backend, clock, (0, 1, 2))
                await self.slow_cycle(controller, backend, clock, (1, 1, 2))
                assert controller.concurrency_limit == 2
                counters = controller.obs.snapshot()["counters"]
                assert counters["serve.adaptive.decrease"] == 1
                # Recovery: instant completions (zero fake-clock
                # latency) regrow the limit one step per interval.
                backend.release.set()
                for i in range(4):
                    clock.advance(1.0)
                    await controller.submit("probe", (10 + i, 1, 2))
                assert controller.concurrency_limit == 4
                counters = controller.obs.snapshot()["counters"]
                assert counters["serve.adaptive.increase"] >= 2
                snapshot = controller.adaptive_snapshot
                assert snapshot is not None and snapshot["limit"] == 4.0
            finally:
                await controller.drain()

        run(scenario())

    def test_drain_with_parked_dispatchers_is_clean(self, clock):
        # After a decrease, dispatchers above the limit park on the
        # condition variable; drain must cancel them without wedging.
        async def scenario():
            backend = GateBackend()
            controller = self.adaptive_controller(backend, clock)
            controller.start()
            await self.slow_cycle(controller, backend, clock, (0, 1, 2))
            await self.slow_cycle(controller, backend, clock, (1, 1, 2))
            assert controller.concurrency_limit == 2
            backend.release.set()
            assert await controller.drain(timeout_s=5.0) is True

        run(scenario())
