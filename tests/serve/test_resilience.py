"""Resilient-client tests: taxonomy, budgets, retries, hedging.

Replicas are in-process fakes; retry/backoff/deadline paths run on the
fake clock with a clock-advancing fake sleep (no real waiting), while
the hedge-race tests use short real delays — the hedge timer lives in
``asyncio.wait`` and races real tasks by design.
"""

import asyncio

import pytest

from repro.errors import (
    BackendError,
    FrontendError,
    RequestRejected,
    TransportError,
)
from repro.serve.admission import CODE_DEADLINE, CODE_DRAINING, CODE_SHED
from repro.serve.resilience import (
    RETRYABLE_CODES,
    ResilientClient,
    ResilientClientConfig,
    RetryBudget,
    RetryBudgetConfig,
    is_retryable,
)

from .conftest import FakeClock


def run(coro):
    return asyncio.run(coro)


class FakeReplica:
    """One frontend stand-in: scripted delay and failures, call log."""

    def __init__(self, name, *, delay_s=0.0, fail=None, fail_times=None):
        self.name = name
        self.delay_s = delay_s
        #: Zero-arg factory for the exception each call raises.
        self.fail = fail
        #: Raise only on the first N calls (``None`` = always).
        self.fail_times = fail_times
        self.calls = 0
        self.closed = False

    async def _respond(self, result):
        self.calls += 1
        call = self.calls
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        if self.fail is not None and (
            self.fail_times is None or call <= self.fail_times
        ):
            raise self.fail()
        return result

    async def probe(self, value, t1, t2, *, tenant="default",
                    deadline_ms=None):
        return await self._respond(("probe", self.name, value))

    async def scan(self, t1, t2, *, tenant="default", deadline_ms=None):
        return await self._respond(("scan", self.name, t1, t2))

    async def ping(self):
        return not self.closed

    async def close(self):
        self.closed = True


def client(replicas, clock=None, **overrides):
    overrides.setdefault("hedge", False)
    kwargs = {}
    if clock is not None:
        async def fake_sleep(seconds):
            clock.advance(seconds)

        kwargs = {"clock": clock, "sleep": fake_sleep}
    return ResilientClient(
        replicas, ResilientClientConfig(**overrides), **kwargs
    )


class TestTaxonomy:
    def test_transport_and_backend_errors_retry(self):
        assert is_retryable(TransportError("torn"))
        assert is_retryable(BackendError("boom"))

    def test_draining_retries_elsewhere(self):
        assert is_retryable(RequestRejected(CODE_DRAINING, "restarting"))
        assert CODE_DRAINING in RETRYABLE_CODES

    @pytest.mark.parametrize(
        "code", [CODE_DEADLINE, CODE_SHED, "rate-limit"]
    )
    def test_policy_rejections_are_fatal(self, code):
        # Retrying these would defeat the mechanism rejecting us.
        assert not is_retryable(RequestRejected(code, "no"))

    def test_unknown_exceptions_are_fatal(self):
        assert not is_retryable(ValueError("bug"))
        assert not is_retryable(FrontendError("bad request"))


class TestRetryBudget:
    def test_config_validation(self):
        with pytest.raises(FrontendError):
            RetryBudgetConfig(ratio=1.5)
        with pytest.raises(FrontendError):
            RetryBudgetConfig(reserve=-1.0)
        with pytest.raises(FrontendError):
            RetryBudgetConfig(reserve=10.0, cap=5.0)

    def test_starts_at_reserve(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.5, reserve=3.0))
        assert budget.balance == 3.0

    def test_withdraw_needs_a_whole_token(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.5, reserve=0.0))
        budget.deposit()  # 0.5: not enough for a retry yet
        assert not budget.try_withdraw()
        budget.deposit()  # 1.0: exactly one retry
        assert budget.try_withdraw()
        assert not budget.try_withdraw()
        assert budget.denied == 2

    def test_balance_caps(self):
        budget = RetryBudget(
            RetryBudgetConfig(ratio=1.0, reserve=2.0, cap=2.0)
        )
        for _ in range(50):
            budget.deposit()
        assert budget.balance == 2.0

    def test_amplification_arithmetic_bound(self):
        # The token-bucket invariant behind the bench's gate: after N
        # primaries, withdrawals can never exceed ratio*N + reserve.
        config = RetryBudgetConfig(ratio=0.2, reserve=5.0, cap=100.0)
        budget = RetryBudget(config)
        n = 200
        withdrawn = 0
        for _ in range(n):
            budget.deposit()
            while budget.try_withdraw():  # adversarial: drain greedily
                withdrawn += 1
        assert withdrawn <= config.ratio * n + config.reserve
        assert budget.withdrawn == withdrawn


class TestRetries:
    def test_healthy_replica_costs_one_attempt(self):
        async def scenario():
            replica = FakeReplica("a")
            resilient = client([replica])
            assert await resilient.probe(7, 1, 2) == ("probe", "a", 7)
            assert resilient.stats.requests == 1
            assert resilient.stats.attempts == 1
            assert resilient.stats.amplification == 1.0

        run(scenario())

    def test_transport_error_fails_over_and_penalizes(self):
        clock = FakeClock()

        async def scenario():
            torn = FakeReplica("torn", fail=lambda: TransportError("rst"))
            healthy = FakeReplica("ok")
            resilient = client([torn, healthy], clock=clock)
            assert await resilient.probe(1, 1, 2) == ("probe", "ok", 1)
            assert resilient.stats.retries == 1
            assert resilient.stats.failovers == 0  # the retry succeeded
            # Outlier ejection: the torn replica sits out the penalty
            # window, so the next primary skips it entirely.
            assert await resilient.probe(2, 1, 2) == ("probe", "ok", 2)
            assert torn.calls == 1
            # Penalty expires: the replica is eligible again.
            clock.advance(10.0)
            torn.fail = None
            assert await resilient.probe(3, 1, 2) == ("probe", "torn", 3)

        run(scenario())

    def test_draining_rejection_retries_elsewhere(self):
        async def scenario():
            draining = FakeReplica(
                "draining",
                fail=lambda: RequestRejected(CODE_DRAINING, "rolling"),
            )
            healthy = FakeReplica("ok")
            resilient = client([draining, healthy], clock=FakeClock())
            assert await resilient.scan(1, 2) == ("scan", "ok", 1, 2)
            assert resilient.stats.retries == 1

        run(scenario())

    def test_fatal_rejection_short_circuits(self):
        async def scenario():
            shedding = FakeReplica(
                "shed", fail=lambda: RequestRejected(CODE_SHED, "full")
            )
            healthy = FakeReplica("ok")
            resilient = client([shedding, healthy], clock=FakeClock())
            with pytest.raises(RequestRejected) as exc:
                await resilient.probe(1, 1, 2)
            assert exc.value.code == CODE_SHED
            assert resilient.stats.attempts == 1
            assert resilient.stats.retries == 0
            assert healthy.calls == 0

        run(scenario())

    def test_exhausted_budget_stops_retrying(self):
        async def scenario():
            bad = [
                FakeReplica(n, fail=lambda: BackendError("down"))
                for n in ("a", "b")
            ]
            resilient = client(
                bad, clock=FakeClock(), max_attempts=5,
                budget=RetryBudgetConfig(ratio=0.0, reserve=1.0, cap=1.0),
            )
            with pytest.raises(BackendError):
                await resilient.probe(1, 1, 2)
            # One primary, one budgeted retry, then the denial breaks
            # the loop well short of max_attempts.
            assert resilient.stats.attempts == 2
            assert resilient.stats.retries == 1
            assert resilient.stats.budget_denied == 1
            assert resilient.budget.denied == 1

        run(scenario())

    def test_attempts_cap_raises_last_error(self):
        async def scenario():
            bad = FakeReplica("a", fail=lambda: BackendError("down"))
            resilient = client(
                [bad], clock=FakeClock(), max_attempts=3,
                budget=RetryBudgetConfig(ratio=1.0, reserve=10.0),
            )
            with pytest.raises(BackendError):
                await resilient.probe(1, 1, 2)
            assert resilient.stats.attempts == 3

        run(scenario())

    def test_deadline_expires_during_backoff(self):
        clock = FakeClock()

        async def scenario():
            bad = FakeReplica("a", fail=lambda: TransportError("rst"))
            resilient = client(
                [bad, FakeReplica("b", fail=lambda: TransportError("rst"))],
                clock=clock, max_attempts=5, backoff_base_s=0.05,
            )
            with pytest.raises(RequestRejected) as exc:
                await resilient.probe(1, 1, 2, deadline_ms=1.0)
            # The backoff was clipped to the remaining deadline; the
            # fake sleep advanced the clock exactly onto it.
            assert exc.value.code == CODE_DEADLINE

        run(scenario())

    def test_expired_deadline_rejects_before_issuing(self):
        clock = FakeClock()

        async def scenario():
            replica = FakeReplica("a")
            resilient = client([replica], clock=clock)
            with pytest.raises(RequestRejected) as exc:
                await resilient.probe(1, 1, 2, deadline_ms=0.0)
            assert exc.value.code == CODE_DEADLINE
            assert replica.calls == 0

        run(scenario())


class TestHedging:
    def test_hedge_rescues_slow_primary(self):
        async def scenario():
            slow = FakeReplica("slow", delay_s=0.3)
            fast = FakeReplica("fast")
            resilient = ResilientClient(
                [slow, fast],
                ResilientClientConfig(hedge=True, hedge_initial_s=0.01),
            )
            loop = asyncio.get_running_loop()
            started = loop.time()
            assert await resilient.probe(1, 1, 2) == ("probe", "fast", 1)
            assert loop.time() - started < 0.25  # beat the straggler
            assert resilient.stats.hedges == 1
            assert resilient.stats.hedge_wins == 1
            assert resilient.stats.attempts == 2
            assert resilient.stats.retries == 0

        run(scenario())

    def test_single_replica_never_hedges(self):
        async def scenario():
            only = FakeReplica("only", delay_s=0.05)
            resilient = ResilientClient(
                [only],
                ResilientClientConfig(hedge=True, hedge_initial_s=0.01),
            )
            assert await resilient.probe(1, 1, 2) == ("probe", "only", 1)
            assert resilient.stats.hedges == 0

        run(scenario())

    def test_empty_budget_denies_the_hedge(self):
        async def scenario():
            slow = FakeReplica("slow", delay_s=0.05)
            fast = FakeReplica("fast")
            resilient = ResilientClient(
                [slow, fast],
                ResilientClientConfig(
                    hedge=True, hedge_initial_s=0.01,
                    budget=RetryBudgetConfig(
                        ratio=0.0, reserve=0.0, cap=1.0
                    ),
                ),
            )
            # No tokens: the slow primary is waited out instead.
            assert await resilient.probe(1, 1, 2) == ("probe", "slow", 1)
            assert resilient.stats.hedges == 0
            assert resilient.budget.denied == 1
            assert fast.calls == 0

        run(scenario())

    def test_failed_hedge_keeps_waiting_for_primary(self):
        async def scenario():
            primary = FakeReplica("primary", delay_s=0.1)
            hedge = FakeReplica("hedge", fail=lambda: BackendError("down"))
            resilient = ResilientClient(
                [primary, hedge],
                ResilientClientConfig(hedge=True, hedge_initial_s=0.01),
            )
            assert await resilient.probe(1, 1, 2) == ("probe", "primary", 1)
            assert resilient.stats.hedges == 1
            assert resilient.stats.hedge_wins == 0
            assert resilient.stats.retries == 0

        run(scenario())

    def test_fatal_error_outranks_retryable_when_both_fail(self):
        async def scenario():
            shedding = FakeReplica(
                "shed", delay_s=0.05,
                fail=lambda: RequestRejected(CODE_SHED, "full"),
            )
            torn = FakeReplica("torn", fail=lambda: TransportError("rst"))
            resilient = ResilientClient(
                [shedding, torn],
                ResilientClientConfig(
                    hedge=True, hedge_initial_s=0.01, max_attempts=3
                ),
            )
            # The hedge tears (retryable) before the primary is shed
            # (fatal): the attempt must surface the fatal error so the
            # retry loop does not burn attempts on a dead request.
            with pytest.raises(RequestRejected) as exc:
                await resilient.probe(1, 1, 2)
            assert exc.value.code == CODE_SHED
            assert resilient.stats.attempts == 2

        run(scenario())

    def test_hedge_delay_tracks_observed_latency(self):
        async def scenario():
            replica = FakeReplica("a")
            resilient = ResilientClient(
                [replica],
                ResilientClientConfig(
                    hedge=False, hedge_initial_s=0.5,
                    hedge_min_samples=10, hedge_min_s=0.002,
                ),
            )
            assert resilient.hedge_delay_s() == 0.5  # no samples yet
            for i in range(10):
                await resilient.probe(i, 1, 2)
            # Instant fakes: the tracked p95 collapses to the clamp
            # floor instead of the initial guess.
            assert resilient.hedge_delay_s() == 0.002

        run(scenario())


class TestClientSurface:
    def test_needs_at_least_one_replica(self):
        with pytest.raises(FrontendError):
            ResilientClient([])

    def test_config_validation(self):
        with pytest.raises(FrontendError):
            ResilientClientConfig(max_attempts=0)
        with pytest.raises(FrontendError):
            ResilientClientConfig(hedge_quantile=1.0)
        with pytest.raises(FrontendError):
            ResilientClientConfig(hedge_min_s=0.2, hedge_max_s=0.1)
        with pytest.raises(FrontendError):
            ResilientClientConfig(backoff_base_s=0.5, backoff_cap_s=0.1)
        with pytest.raises(FrontendError):
            ResilientClientConfig(penalty_s=-1.0)

    def test_ping_any_replica(self):
        async def scenario():
            dead = FakeReplica("dead")
            dead.closed = True
            live = FakeReplica("live")
            resilient = client([dead, live])
            assert await resilient.ping() is True
            await resilient.close()
            assert dead.closed and live.closed
            assert await resilient.ping() is False

        run(scenario())

    def test_stats_serialise(self):
        resilient = client([FakeReplica("a")])
        payload = resilient.stats.to_dict()
        assert payload["requests"] == 0
        assert payload["amplification"] == 0.0
        assert set(payload) == {
            "requests", "attempts", "hedges", "hedge_wins", "retries",
            "budget_denied", "failovers", "amplification",
        }
