"""Tests for the Zipf sampler and Heaps-law vocabulary model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, heaps_vocabulary


class TestZipfSampler:
    def test_deterministic_for_same_seed(self):
        a = ZipfSampler(100, seed=7).sample_many(50)
        b = ZipfSampler(100, seed=7).sample_many(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = ZipfSampler(100, seed=1).sample_many(50)
        b = ZipfSampler(100, seed=2).sample_many(50)
        assert a != b

    def test_samples_in_range(self):
        sampler = ZipfSampler(10, seed=0)
        assert all(1 <= r <= 10 for r in sampler.sample_many(500))

    def test_skew_rank1_dominates(self):
        sampler = ZipfSampler(1000, s=1.0, seed=3)
        samples = sampler.sample_many(5000)
        top = sum(1 for r in samples if r == 1) / len(samples)
        # P(1) = 1/H_1000 ≈ 0.133; allow wide sampling noise.
        assert 0.09 < top < 0.19

    def test_zero_exponent_is_uniform(self):
        sampler = ZipfSampler(4, s=0.0, seed=5)
        counts = [0] * 5
        for r in sampler.sample_many(4000):
            counts[r] += 1
        for rank in range(1, 5):
            assert abs(counts[rank] / 4000 - 0.25) < 0.05

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50, s=1.2)
        total = math.fsum(sampler.probability(r) for r in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(50, s=1.0)
        probs = [sampler.probability(r) for r in range(1, 51)]
        assert probs == sorted(probs, reverse=True)

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, s=-1)
        with pytest.raises(WorkloadError):
            ZipfSampler(10).sample_many(-1)
        with pytest.raises(WorkloadError):
            ZipfSampler(10).probability(11)

    @given(st.integers(1, 500), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_sample_always_valid(self, vocab, seed):
        sampler = ZipfSampler(vocab, seed=seed)
        assert 1 <= sampler.sample() <= vocab


class TestHeaps:
    def test_monotone_in_tokens(self):
        assert heaps_vocabulary(100) < heaps_vocabulary(10_000)

    def test_sublinear(self):
        v1 = heaps_vocabulary(1_000)
        v100 = heaps_vocabulary(100_000)
        assert v100 < 100 * v1

    def test_edge_cases(self):
        assert heaps_vocabulary(0) == 1
        with pytest.raises(WorkloadError):
            heaps_vocabulary(-1)
