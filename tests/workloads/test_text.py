"""Tests for the synthetic Netnews document workload."""

import pytest

from repro.errors import WorkloadError
from repro.core.records import RecordStore
from repro.workloads.text import (
    NetnewsGenerator,
    TextWorkloadConfig,
    build_store,
)


class TestConfig:
    def test_defaults(self):
        config = TextWorkloadConfig()
        assert config.docs_per_day > 0
        assert config.vocabulary > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TextWorkloadConfig(docs_per_day=-1)
        with pytest.raises(WorkloadError):
            TextWorkloadConfig(words_per_doc=0)
        with pytest.raises(WorkloadError):
            TextWorkloadConfig(bytes_per_doc=-1)


class TestGeneration:
    def test_deterministic_per_day(self):
        config = TextWorkloadConfig(docs_per_day=5, seed=3)
        a = NetnewsGenerator(config).generate_day(4)
        b = NetnewsGenerator(config).generate_day(4)
        assert [r.values for r in a.records] == [r.values for r in b.records]

    def test_days_differ(self):
        config = TextWorkloadConfig(docs_per_day=5, seed=3)
        gen = NetnewsGenerator(config)
        a = gen.generate_day(1)
        b = gen.generate_day(2)
        assert [r.values for r in a.records] != [r.values for r in b.records]

    def test_record_ids_unique_across_days(self):
        gen = NetnewsGenerator(TextWorkloadConfig(docs_per_day=10))
        ids = []
        for day in (1, 2, 3):
            ids.extend(r.record_id for r in gen.generate_day(day).records)
        assert len(ids) == len(set(ids))

    def test_words_are_distinct_within_document(self):
        gen = NetnewsGenerator(TextWorkloadConfig(docs_per_day=20))
        for record in gen.generate_day(1).records:
            assert len(record.values) == len(set(record.values))

    def test_zipf_skew_shows_in_word_frequencies(self):
        config = TextWorkloadConfig(
            docs_per_day=200, words_per_doc=30, vocabulary=2000, seed=9
        )
        batch = NetnewsGenerator(config).generate_day(1)
        counts: dict[str, int] = {}
        for record in batch.records:
            for word in record.values:
                counts[word] = counts.get(word, 0) + 1
        assert counts.get("w1", 0) > counts.get("w1000", 0)


class TestVolume:
    def test_sequence_volume(self):
        gen = NetnewsGenerator(
            TextWorkloadConfig(docs_per_day=99), volume=[3, 5, 2]
        )
        assert gen.docs_for_day(1) == 3
        assert gen.docs_for_day(3) == 2
        assert len(gen.generate_day(2).records) == 5

    def test_sequence_out_of_range(self):
        gen = NetnewsGenerator(volume=[3])
        with pytest.raises(WorkloadError):
            gen.docs_for_day(2)

    def test_callable_volume(self):
        gen = NetnewsGenerator(volume=lambda day: day * 2)
        assert gen.docs_for_day(5) == 10

    def test_negative_volume_rejected(self):
        gen = NetnewsGenerator(volume=lambda day: -1)
        with pytest.raises(WorkloadError):
            gen.docs_for_day(1)


class TestPopulate:
    def test_populate_store(self):
        store = RecordStore()
        NetnewsGenerator(TextWorkloadConfig(docs_per_day=3)).populate(store, 1, 5)
        assert store.days == [1, 2, 3, 4, 5]
        assert all(store.batch(d).entry_count > 0 for d in store.days)

    def test_populate_empty_range_rejected(self):
        with pytest.raises(WorkloadError):
            NetnewsGenerator().populate(RecordStore(), 3, 2)

    def test_build_store_convenience(self):
        store = build_store(4, TextWorkloadConfig(docs_per_day=2))
        assert store.days == [1, 2, 3, 4]
