"""Tests for the stock-trades workload."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.trades import (
    DEFAULT_SYMBOLS,
    TradeGenerator,
    TradesConfig,
    build_trades_store,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TradesConfig(trades_per_day=-1)
        with pytest.raises(WorkloadError):
            TradesConfig(symbols=())
        with pytest.raises(WorkloadError):
            TradesConfig(base_price=0)
        with pytest.raises(WorkloadError):
            TradesConfig(volatility=-0.1)


class TestGeneration:
    def test_count_and_shape(self):
        gen = TradeGenerator(TradesConfig(trades_per_day=100, seed=1))
        batch = gen.generate_day(1)
        assert len(batch.records) == 100
        for record in batch.records:
            assert record.values[0] in DEFAULT_SYMBOLS
            assert isinstance(record.info, float)
            assert record.info > 0

    def test_deterministic(self):
        a = TradeGenerator(TradesConfig(seed=3)).generate_day(1)
        b = TradeGenerator(TradesConfig(seed=3)).generate_day(1)
        assert [(r.values, r.info) for r in a.records] == [
            (r.values, r.info) for r in b.records
        ]

    def test_trade_ids_unique_across_days(self):
        gen = TradeGenerator(TradesConfig(trades_per_day=50))
        ids = set()
        for day in (1, 2, 3):
            for record in gen.generate_day(day).records:
                assert record.record_id not in ids
                ids.add(record.record_id)

    def test_zipf_symbol_skew(self):
        gen = TradeGenerator(TradesConfig(trades_per_day=4000, seed=5))
        batch = gen.generate_day(1)
        counts: dict[str, int] = {}
        for record in batch.records:
            counts[record.values[0]] = counts.get(record.values[0], 0) + 1
        top = counts.get(DEFAULT_SYMBOLS[0], 0)
        bottom = counts.get(DEFAULT_SYMBOLS[-1], 0)
        assert top > 3 * max(bottom, 1)

    def test_prices_drift_across_days(self):
        gen = TradeGenerator(TradesConfig(trades_per_day=20, seed=7))
        gen.generate_day(1)
        p1 = dict(gen._prices)
        gen.generate_day(2)
        assert gen._prices != p1

    def test_build_store(self):
        store = build_trades_store(5, TradesConfig(trades_per_day=10))
        assert store.days == [1, 2, 3, 4, 5]
        entry = next(store.batch(3).postings())[1]
        assert isinstance(entry.info, float)  # amounts flow into entries
