"""Tests for the synthetic Usenet volume traces (Figure 2 inputs)."""

import math

import pytest

from repro.errors import WorkloadError
from repro.workloads.usenet import (
    WEEKDAY_MEANS,
    day_weights,
    june_december_1997_volume,
    september_1997_volume,
    weekly_volume_trace,
    weight_fn,
)


class TestWeeklyTrace:
    def test_length_and_determinism(self):
        a = weekly_volume_trace(30, seed=1)
        b = weekly_volume_trace(30, seed=1)
        assert len(a) == 30
        assert a == b
        assert weekly_volume_trace(30, seed=2) != a

    def test_weekday_structure(self):
        trace = weekly_volume_trace(70, first_weekday=0, jitter=0.0)
        # Day 3 is a Wednesday (peak), day 7 a Sunday (trough).
        assert trace[2] == WEEKDAY_MEANS[2]
        assert trace[6] == WEEKDAY_MEANS[6]
        assert trace[2] > 3 * trace[6]

    def test_trend_grows_volume(self):
        trace = weekly_volume_trace(100, jitter=0.0, trend=0.01)
        assert trace[70] > trace[0]  # same weekday, later

    def test_validation(self):
        with pytest.raises(WorkloadError):
            weekly_volume_trace(0)
        with pytest.raises(WorkloadError):
            weekly_volume_trace(10, first_weekday=7)
        with pytest.raises(WorkloadError):
            weekly_volume_trace(10, jitter=1.0)


class TestFigure2Trace:
    def test_september_profile(self):
        trace = september_1997_volume()
        assert len(trace) == 30
        # Paper: second Wednesday ~110k, Sundays ~30k.
        second_wednesday = trace[9]  # Sept 10, 1997
        assert 95_000 < second_wednesday < 120_000
        sundays = [trace[6], trace[13], trace[20], trace[27]]
        assert all(25_000 < s < 36_000 for s in sundays)

    def test_two_hundred_day_trace(self):
        trace = june_december_1997_volume()
        assert len(trace) == 200
        assert min(trace) > 0


class TestWeights:
    def test_weights_average_one(self):
        weights = day_weights([10, 20, 30])
        assert math.fsum(weights) / 3 == pytest.approx(1.0)
        assert weights == pytest.approx([0.5, 1.0, 1.5])

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            day_weights([])

    def test_weight_fn_is_one_based(self):
        fn = weight_fn([10, 30])
        assert fn(1) == pytest.approx(0.5)
        assert fn(2) == pytest.approx(1.5)
        with pytest.raises(WorkloadError):
            fn(0)
        with pytest.raises(WorkloadError):
            fn(3)
