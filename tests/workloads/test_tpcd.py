"""Tests for the TPC-D workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.tpcd import (
    TpcdConfig,
    TpcdGenerator,
    build_lineitem_store,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TpcdConfig(rows_per_day=-1)
        with pytest.raises(WorkloadError):
            TpcdConfig(suppliers=0)


class TestGeneration:
    def test_row_count_exact(self):
        gen = TpcdGenerator(TpcdConfig(rows_per_day=137, seed=1))
        _, items = gen.generate_day(1)
        assert len(items) == 137

    def test_deterministic_per_day(self):
        a = TpcdGenerator(TpcdConfig(seed=3)).generate_day(2)
        b = TpcdGenerator(TpcdConfig(seed=3)).generate_day(2)
        assert a == b

    def test_column_domains(self):
        config = TpcdConfig(rows_per_day=500, suppliers=100, seed=5)
        _, items = TpcdGenerator(config).generate_day(1)
        for item in items:
            assert 1 <= item.suppkey <= 100
            assert 1 <= item.quantity <= 50
            assert 0.0 <= item.discount <= 0.10
            assert 0.0 <= item.tax <= 0.08
            assert item.returnflag in ("R", "A", "N")
            assert item.linestatus in ("O", "F")
            assert item.shipdate == 1
            assert item.commitdate > item.shipdate
            assert item.receiptdate > item.shipdate

    def test_suppkey_roughly_uniform(self):
        """Uniform keys are why TPC-D uses g = 1.08 (Table 12)."""
        config = TpcdConfig(rows_per_day=5000, suppliers=10, seed=7)
        _, items = TpcdGenerator(config).generate_day(1)
        counts = [0] * 11
        for item in items:
            counts[item.suppkey] += 1
        expected = 500
        assert all(abs(c - expected) < 120 for c in counts[1:])

    def test_orders_reference_their_lineitems(self):
        gen = TpcdGenerator(TpcdConfig(rows_per_day=50, seed=2))
        orders, items = gen.generate_day(1)
        order_keys = {o.orderkey for o in orders}
        assert {i.orderkey for i in items} == order_keys
        for order in orders:
            total = sum(
                i.extendedprice for i in items if i.orderkey == order.orderkey
            )
            assert order.totalprice == pytest.approx(total, abs=0.01)

    def test_orderkeys_unique_across_days(self):
        gen = TpcdGenerator(TpcdConfig(rows_per_day=20))
        keys = set()
        for day in (1, 2, 3):
            orders, _ = gen.generate_day(day)
            for order in orders:
                assert order.orderkey not in keys
                keys.add(order.orderkey)


class TestIndexableBatches:
    def test_lineitem_batch_indexes_suppkey(self):
        gen = TpcdGenerator(TpcdConfig(rows_per_day=30, suppliers=5, seed=4))
        batch = gen.lineitem_batch(3)
        assert batch.day == 3
        assert batch.entry_count == 30
        assert all(1 <= r.values[0] <= 5 for r in batch.records)

    def test_build_store(self):
        store = build_lineitem_store(4, TpcdConfig(rows_per_day=10))
        assert store.days == [1, 2, 3, 4]
        assert store.batch(2).entry_count == 10
