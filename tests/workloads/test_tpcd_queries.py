"""Tests for TPC-D Q1 (Pricing Summary Report)."""

import pytest

from repro.workloads.tpcd import LineItem, TpcdConfig, TpcdGenerator
from repro.workloads.tpcd_queries import q1_pricing_summary, q1_rows_equal


def item(flag="R", status="O", qty=10, price=100.0, disc=0.1, tax=0.05, day=1):
    return LineItem(
        orderkey=1,
        linenumber=1,
        suppkey=1,
        partkey=1,
        quantity=qty,
        extendedprice=price,
        discount=disc,
        tax=tax,
        returnflag=flag,
        linestatus=status,
        shipdate=day,
        commitdate=day + 10,
        receiptdate=day + 5,
        shipmode="RAIL",
    )


class TestQ1:
    def test_single_group_aggregates(self):
        rows = q1_pricing_summary([item(qty=10, price=100.0, disc=0.1, tax=0.05)])
        assert len(rows) == 1
        row = rows[0]
        assert row.sum_qty == 10
        assert row.sum_base_price == pytest.approx(100.0)
        assert row.sum_disc_price == pytest.approx(90.0)
        assert row.sum_charge == pytest.approx(94.5)
        assert row.avg_qty == 10
        assert row.avg_disc == pytest.approx(0.1)
        assert row.count_order == 1

    def test_grouping_and_ordering(self):
        rows = q1_pricing_summary(
            [
                item(flag="R", status="O"),
                item(flag="A", status="F"),
                item(flag="A", status="O"),
                item(flag="R", status="O"),
            ]
        )
        keys = [(r.returnflag, r.linestatus) for r in rows]
        assert keys == [("A", "F"), ("A", "O"), ("R", "O")]
        assert rows[2].count_order == 2

    def test_ship_cutoff_filters(self):
        rows = q1_pricing_summary(
            [item(day=1), item(day=5), item(day=9)], ship_cutoff_day=5
        )
        assert rows[0].count_order == 2

    def test_empty_input(self):
        assert q1_pricing_summary([]) == []

    def test_averages_consistent_with_sums(self):
        gen = TpcdGenerator(TpcdConfig(rows_per_day=300, seed=8))
        _, items = gen.generate_day(1)
        for row in q1_pricing_summary(items):
            assert row.avg_qty == pytest.approx(row.sum_qty / row.count_order)
            assert row.avg_price == pytest.approx(
                row.sum_base_price / row.count_order
            )


class TestRowEquality:
    def test_equal_reports(self):
        items = [item(), item(flag="A")]
        assert q1_rows_equal(q1_pricing_summary(items), q1_pricing_summary(items))

    def test_unequal_counts(self):
        a = q1_pricing_summary([item()])
        b = q1_pricing_summary([item(), item()])
        assert not q1_rows_equal(a, b)

    def test_unequal_groups(self):
        a = q1_pricing_summary([item(flag="R")])
        b = q1_pricing_summary([item(flag="A")])
        assert not q1_rows_equal(a, b)

    def test_order_independence_of_input(self):
        gen = TpcdGenerator(TpcdConfig(rows_per_day=100, seed=2))
        _, items = gen.generate_day(1)
        forward = q1_pricing_summary(items)
        backward = q1_pricing_summary(list(reversed(items)))
        assert q1_rows_equal(forward, backward, rel_tol=1e-9)
