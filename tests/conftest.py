"""Shared fixtures for the wave-index test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.records import Record, RecordStore
from repro.index.btree import BPlusTreeDirectory
from repro.index.config import IndexConfig
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk() -> SimulatedDisk:
    """A fresh unbounded simulated disk with Table-12 hardware."""
    return SimulatedDisk()


@pytest.fixture
def config() -> IndexConfig:
    """Default index configuration (hash directory, g = 2)."""
    return IndexConfig()


@pytest.fixture
def btree_config() -> IndexConfig:
    """Index configuration with a small-order B+Tree directory."""
    return IndexConfig(directory_factory=lambda: BPlusTreeDirectory(order=4))


def make_store(
    num_days: int,
    *,
    seed: int = 11,
    values: str = "abcdefgh",
    min_records: int = 2,
    max_records: int = 6,
) -> RecordStore:
    """A deterministic small store: a few multi-valued records per day."""
    rng = random.Random(seed)
    store = RecordStore()
    rid = 0
    for day in range(1, num_days + 1):
        records = []
        for _ in range(rng.randint(min_records, max_records)):
            rid += 1
            vals = tuple(rng.sample(values, rng.randint(1, 3)))
            records.append(Record(rid, day, vals, nbytes=50))
        store.add_records(day, records)
    return store


@pytest.fixture
def store30() -> RecordStore:
    """Thirty days of small random batches."""
    return make_store(30)
