"""End-to-end integration: workloads -> schemes -> substrate -> queries."""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.invariants import check_wave_invariants
from repro.core.schemes import DelScheme, ReindexScheme, WataStarScheme
from repro.core.wave import WaveIndex
from repro.index.btree import BPlusTreeDirectory
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.sim.driver import run_simulation
from repro.sim.querygen import QueryWorkload, uniform_key_picker
from repro.storage.disk import SimulatedDisk
from repro.workloads.text import TextWorkloadConfig, build_store
from repro.workloads.tpcd import TpcdConfig, TpcdGenerator, build_lineitem_store
from repro.workloads.tpcd_queries import q1_pricing_summary, q1_rows_equal


class TestNetnewsPipeline:
    def test_copy_detection_scenario(self):
        """A SCAM-like run: index a week of documents, find a known doc."""
        config = TextWorkloadConfig(
            docs_per_day=20, words_per_doc=12, vocabulary=300, seed=21
        )
        store = build_store(14, config)
        disk = SimulatedDisk()
        wave = WaveIndex(
            disk,
            IndexConfig(directory_factory=lambda: BPlusTreeDirectory(order=16)),
            n_indexes=4,
        )
        executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        scheme = ReindexScheme(7, 4)
        executor.execute(scheme.start_ops())
        check_wave_invariants(wave, scheme)
        for day in range(8, 15):
            executor.execute(scheme.transition_ops(day))
            check_wave_invariants(wave, scheme)

        # Take a recent document and "copy-detect" it: every word probe must
        # return the original record.
        target = store.batch(12).records[0]
        for word in target.values:
            result = wave.timed_index_probe(word, 8, 14)
            assert target.record_id in result.record_ids

        # A document older than the window is not findable via the window.
        stale = store.batch(1).records[0]
        found = set()
        for word in stale.values:
            found.update(wave.timed_index_probe(word, 8, 14).record_ids)
        assert stale.record_id not in found


class TestTpcdPipeline:
    def test_q1_over_wave_scan_matches_direct(self):
        """Q1 via wave-index segment scans == Q1 computed directly."""
        config = TpcdConfig(rows_per_day=40, suppliers=20, seed=13)
        gen = TpcdGenerator(config)
        days = range(1, 16)
        items_by_key = {}
        for day in days:
            _, items = gen.generate_day(day)
            for item in items:
                items_by_key[item.orderkey * 10 + item.linenumber] = item

        store = build_lineitem_store(15, TpcdConfig(rows_per_day=40, suppliers=20, seed=13))
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), n_indexes=2)
        executor = PlanExecutor(wave, store, UpdateTechnique.PACKED_SHADOW)
        scheme = DelScheme(10, 2)
        executor.execute(scheme.start_ops())
        check_wave_invariants(wave, scheme)
        for day in range(11, 16):
            executor.execute(scheme.transition_ops(day))
            check_wave_invariants(wave, scheme)

        scan = wave.timed_segment_scan(6, 15)
        scanned_items = [items_by_key[e.record_id] for e in scan.entries]
        direct_items = [
            item
            for key, item in items_by_key.items()
            if 6 <= item.shipdate <= 15
        ]
        assert q1_rows_equal(
            q1_pricing_summary(scanned_items),
            q1_pricing_summary(direct_items),
        )

    def test_suppkey_probe_finds_all_window_rows(self):
        store = build_lineitem_store(15, TpcdConfig(rows_per_day=60, suppliers=10, seed=4))
        result = run_simulation(
            lambda: WataStarScheme(10, 3),
            store,
            last_day=15,
            technique=UpdateTechnique.SIMPLE_SHADOW,
            queries=QueryWorkload(
                probes_per_day=5,
                value_picker=uniform_key_picker(10),
                seed=2,
            ),
        )
        assert result.days[-1].covered_days >= set(range(6, 16))


class TestScaleSmoke:
    @pytest.mark.parametrize("technique", list(UpdateTechnique))
    def test_longer_run_remains_consistent(self, technique):
        """60 days of maintenance with no drift, on a bigger store."""
        store = build_store(
            60, TextWorkloadConfig(docs_per_day=8, words_per_doc=6, vocabulary=100)
        )
        result = run_simulation(
            lambda: DelScheme(14, 4), store, last_day=60, technique=technique
        )
        final = result.days[-1]
        assert final.covered_days == frozenset(range(47, 61))
        assert final.length_days == 14
