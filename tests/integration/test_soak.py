"""Soak tests: long-horizon runs guarding against slow drift.

Hundreds of transitions with non-uniform volumes, checkpoint/restore mid-
run, and full invariant checks — the kind of bug (a leaked temp index, a
one-day bookkeeping skew, allocator fragmentation) that only appears after
many cycles.
"""

import pytest

from repro.core.checkpoint import restore, take_checkpoint
from repro.core.executor import PlanExecutor
from repro.core.invariants import check_wave_invariants
from repro.core.records import RecordStore
from repro.core.schemes import (
    BatchedDelScheme,
    DelScheme,
    RataStarScheme,
    ReindexPlusPlusScheme,
    WataStarScheme,
)
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from repro.workloads.text import NetnewsGenerator, TextWorkloadConfig
from repro.workloads.usenet import weekly_volume_trace

LAST_DAY = 150
WINDOW = 7


@pytest.fixture(scope="module")
def store() -> RecordStore:
    volumes = [
        max(1, v // 12_000)  # ~3-9 docs/day with the weekly profile
        for v in weekly_volume_trace(LAST_DAY, seed=31)
    ]
    store = RecordStore()
    NetnewsGenerator(
        TextWorkloadConfig(docs_per_day=0, words_per_doc=8, vocabulary=120, seed=3),
        volume=volumes,
    ).populate(store, 1, LAST_DAY)
    return store


@pytest.mark.parametrize(
    "scheme_factory",
    [
        lambda: DelScheme(WINDOW, 3),
        lambda: ReindexPlusPlusScheme(WINDOW, 3),
        lambda: WataStarScheme(WINDOW, 3),
        lambda: RataStarScheme(WINDOW, 3),
        lambda: BatchedDelScheme(WINDOW, 3, batch_days=4),
    ],
    ids=["DEL", "REINDEX++", "WATA*", "RATA*", "DEL(batched)"],
)
def test_150_day_soak(store, scheme_factory):
    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), 3)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = scheme_factory()
    executor.execute(scheme.start_ops())
    peak_bindings = 0
    for day in range(WINDOW + 1, LAST_DAY + 1):
        executor.execute(scheme.transition_ops(day))
        check_wave_invariants(wave, scheme)
        live = set(range(day - WINDOW + 1, day + 1))
        covered = wave.covered_days()
        if scheme.hard_window:
            assert covered == live, day
        else:
            assert covered >= live, day
        peak_bindings = max(peak_bindings, len(wave.bindings))
        if day % 25 == 0:
            disk.check_invariants()
            bound = sum(i.allocated_bytes for i in wave.bindings.values())
            assert disk.live_bytes == bound, day
    # No unbounded accumulation of temporaries.
    assert peak_bindings <= 3 + WINDOW
    # Final query sanity against the oracle.
    lo, hi = LAST_DAY - WINDOW + 1, LAST_DAY
    probe = wave.timed_index_probe("w1", lo, hi)
    want = sorted(e.record_id for e in store.brute_probe("w1", lo, hi))
    assert sorted(probe.record_ids) == want


def test_soak_with_mid_run_recovery(store):
    """Checkpoint at day 80, rebuild on a fresh disk, finish the run."""
    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), 3)
    executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
    scheme = RataStarScheme(WINDOW, 3)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, 81):
        executor.execute(scheme.transition_ops(day))
    checkpoint = take_checkpoint(scheme)

    scheme2, wave2 = restore(checkpoint, store, SimulatedDisk(), IndexConfig())
    executor2 = PlanExecutor(wave2, store, UpdateTechnique.SIMPLE_SHADOW)
    for day in range(81, LAST_DAY + 1):
        executor2.execute(scheme2.transition_ops(day))
        check_wave_invariants(wave2, scheme2)
        live = set(range(day - WINDOW + 1, day + 1))
        assert wave2.covered_days() == live, day
    lo, hi = LAST_DAY - WINDOW + 1, LAST_DAY
    want = sorted(e.record_id for e in store.brute_probe("w2", lo, hi))
    assert sorted(wave2.timed_index_probe("w2", lo, hi).record_ids) == want
