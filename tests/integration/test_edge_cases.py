"""Edge cases: empty days, minimal windows, and extreme configurations."""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.records import DayBatch, Record, RecordStore
from repro.core.schemes import ALL_SCHEMES, DelScheme, WataStarScheme
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk


def store_with_empty_days(last_day: int, empty: set[int]) -> RecordStore:
    store = RecordStore()
    rid = 0
    for day in range(1, last_day + 1):
        if day in empty:
            store.add_batch(DayBatch(day=day, records=[]))
            continue
        rid += 1
        store.add_records(day, [Record(rid, day, ("a", "b"))])
    return store


@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES, ids=lambda c: c.name)
class TestEmptyDays:
    def test_zero_volume_days_flow_through(self, scheme_cls):
        """Days with no records (a dead newsgroup day) must not break
        maintenance or queries."""
        window, n = 6, max(2, scheme_cls.min_indexes)
        empty = {3, 7, 8, 12}
        store = store_with_empty_days(16, empty)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), n)
        executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        scheme = scheme_cls(window, n)
        executor.execute(scheme.start_ops())
        for day in range(window + 1, 17):
            executor.execute(scheme.transition_ops(day))
            lo, hi = day - window + 1, day
            got = sorted(wave.timed_index_probe("a", lo, hi).record_ids)
            want = sorted(e.record_id for e in store.brute_probe("a", lo, hi))
            assert got == want, day
        disk.check_invariants()


class TestMinimalWindows:
    def test_w1_n1_del(self):
        """The smallest possible wave index: one day, one index."""
        store = store_with_empty_days(5, empty=set())
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 1)
        executor = PlanExecutor(wave, store, UpdateTechnique.PACKED_SHADOW)
        scheme = DelScheme(1, 1)
        executor.execute(scheme.start_ops())
        for day in range(2, 6):
            executor.execute(scheme.transition_ops(day))
            assert wave.covered_days() == {day}

    def test_w2_n2_wata(self):
        store = store_with_empty_days(8, empty=set())
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 2)
        executor = PlanExecutor(wave, store, UpdateTechnique.IN_PLACE)
        scheme = WataStarScheme(2, 2)
        executor.execute(scheme.start_ops())
        for day in range(3, 9):
            executor.execute(scheme.transition_ops(day))
            assert wave.covered_days() >= {day - 1, day}
            assert len(wave.covered_days()) <= scheme.max_length_bound()


class TestDuplicateValuesWithinRecord:
    def test_record_with_repeated_value_counts_once_per_listing(self):
        """values is a tuple: a repeated value yields repeated postings —
        the caller's contract (documents deduplicate words upstream)."""
        store = RecordStore()
        store.add_records(1, [Record(1, 1, ("x", "x"))])
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 1)
        executor = PlanExecutor(wave, store, UpdateTechnique.IN_PLACE)
        scheme = DelScheme(1, 1)
        executor.execute(scheme.start_ops())
        result = wave.timed_index_probe("x", 1, 1)
        assert len(result.entries) == 2


class TestNonStringValues:
    def test_mixed_orderable_value_types(self):
        """Integer keys (TPC-D) and the default hash directory coexist."""
        store = RecordStore()
        store.add_records(1, [Record(1, 1, (42,)), Record(2, 1, (7,))])
        store.add_records(2, [Record(3, 2, (42,))])
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 1)
        executor = PlanExecutor(wave, store, UpdateTechnique.SIMPLE_SHADOW)
        scheme = DelScheme(2, 1)
        executor.execute(scheme.start_ops())
        assert sorted(wave.timed_index_probe(42, 1, 2).record_ids) == [1, 3]
