"""Property-based differential testing with arbitrary query ranges.

The fixed-range differential tests cover whole-window queries; here
hypothesis drives random sub-ranges (including ranges reaching outside the
window, single days, and soft-window territory) against the brute-force
oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import PlanExecutor
from repro.core.schemes import ALL_SCHEMES
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

WINDOW, N, LAST = 9, 3, 20
VALUES = "abcdefgh"


def _build_wave(scheme_cls, technique):
    store = make_store(LAST, seed=101)
    disk = SimulatedDisk()
    wave = WaveIndex(disk, IndexConfig(), N)
    executor = PlanExecutor(wave, store, technique)
    scheme = scheme_cls(WINDOW, N)
    executor.execute(scheme.start_ops())
    for day in range(WINDOW + 1, LAST + 1):
        executor.execute(scheme.transition_ops(day))
    return store, wave


# One wave per scheme, reused across hypothesis examples (queries are pure).
_CACHE: dict = {}


def _wave_for(scheme_cls):
    if scheme_cls not in _CACHE:
        _CACHE[scheme_cls] = _build_wave(
            scheme_cls, UpdateTechnique.SIMPLE_SHADOW
        )
    return _CACHE[scheme_cls]


range_strategy = st.tuples(
    st.integers(-5, LAST + 5), st.integers(-5, LAST + 5)
).map(lambda ab: (min(ab), max(ab)))


class TestRandomRanges:
    @given(
        scheme_idx=st.integers(0, len(ALL_SCHEMES) - 1),
        time_range=range_strategy,
        value=st.sampled_from(VALUES),
    )
    @settings(max_examples=300, deadline=None)
    def test_probe_matches_oracle(self, scheme_idx, time_range, value):
        scheme_cls = ALL_SCHEMES[scheme_idx]
        store, wave = _wave_for(scheme_cls)
        t1, t2 = time_range
        got = sorted(wave.timed_index_probe(value, t1, t2).record_ids)
        live_lo = LAST - WINDOW + 1
        lo, hi = max(t1, live_lo), min(t2, LAST)
        want = (
            sorted(e.record_id for e in store.brute_probe(value, lo, hi))
            if lo <= hi
            else []
        )
        if not scheme_cls.hard_window:
            # Soft windows may also surface expired-but-indexed days the
            # query range happens to cover.
            extra_lo = max(t1, min(wave.covered_days()))
            want = (
                sorted(
                    e.record_id
                    for e in store.brute_probe(value, extra_lo, min(t2, LAST))
                )
                if extra_lo <= min(t2, LAST)
                else []
            )
        assert got == want

    @given(
        scheme_idx=st.integers(0, len(ALL_SCHEMES) - 1),
        time_range=range_strategy,
    )
    @settings(max_examples=150, deadline=None)
    def test_scan_matches_oracle(self, scheme_idx, time_range):
        scheme_cls = ALL_SCHEMES[scheme_idx]
        store, wave = _wave_for(scheme_cls)
        t1, t2 = time_range
        got = sorted(wave.timed_segment_scan(t1, t2).record_ids)
        cover_lo = min(wave.covered_days())
        lo, hi = max(t1, cover_lo), min(t2, LAST)
        want = (
            sorted(e.record_id for e in store.brute_scan(lo, hi))
            if lo <= hi
            else []
        )
        assert got == want

    @given(
        scheme_idx=st.integers(0, len(ALL_SCHEMES) - 1),
        day=st.integers(LAST - WINDOW + 1, LAST),
        value=st.sampled_from(VALUES),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_day_probe(self, scheme_idx, day, value):
        scheme_cls = ALL_SCHEMES[scheme_idx]
        store, wave = _wave_for(scheme_cls)
        got = sorted(wave.timed_index_probe(value, day, day).record_ids)
        want = sorted(e.record_id for e in store.brute_probe(value, day, day))
        assert got == want
