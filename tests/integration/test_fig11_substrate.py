"""Figure 11 cross-validation: measured bytes against the symbolic model.

The Figure-11 bench computes WATA*'s index-size ratio symbolically from
day weights.  Here the same experiment runs on the real substrate — actual
indexes over a volume-varying document workload — and the measured byte
ratio must track the symbolic prediction.
"""

import pytest

from repro.casestudies.sizing import hard_window_sizes, scheme_daily_sizes
from repro.core.records import RecordStore
from repro.core.schemes.wata import WataStarScheme
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.sim.driver import Simulation
from repro.workloads.text import NetnewsGenerator, TextWorkloadConfig
from repro.workloads.usenet import weekly_volume_trace

WINDOW, LAST = 7, 42


@pytest.fixture(scope="module")
def volume_trace():
    # Scale the weekly profile down to document counts a test can index.
    raw = weekly_volume_trace(LAST, jitter=0.05, seed=77)
    return [max(2, v // 5000) for v in raw]  # ~6..22 docs/day


@pytest.fixture(scope="module")
def store(volume_trace):
    store = RecordStore()
    NetnewsGenerator(
        TextWorkloadConfig(docs_per_day=0, words_per_doc=12, vocabulary=200, seed=9),
        volume=volume_trace,
    ).populate(store, 1, LAST)
    return store


@pytest.mark.parametrize("n", [2, 3, 4])
class TestMeasuredSizeRatio:
    def test_measured_ratio_tracks_symbolic(self, store, volume_trace, n):
        # Symbolic prediction from entry-count weights.
        weights = [store.batch(d).entry_count for d in range(1, LAST + 1)]
        scheme = WataStarScheme(WINDOW, n)
        lazy = max(scheme_daily_sizes(scheme, weights, LAST))
        eager = max(hard_window_sizes(weights, WINDOW, LAST))
        symbolic_ratio = lazy / eager

        # Measured: peak constituent bytes over the run, against the peak
        # a packed hard window would need (entry bytes).
        sim = Simulation(
            WataStarScheme(WINDOW, n),
            store,
            technique=UpdateTechnique.PACKED_SHADOW,
            index_config=IndexConfig(),
        )
        result = sim.run(LAST)
        entry_size = 16
        measured_peak = max(d.constituent_bytes for d in result.days)
        eager_peak = eager * entry_size
        measured_ratio = measured_peak / eager_peak

        # Packed-shadow keeps indexes near-packed, so bytes track entry
        # counts closely; CONTIGUOUS slack from the daily appends adds a
        # bounded overhead.
        assert measured_ratio == pytest.approx(symbolic_ratio, rel=0.35)
        assert measured_ratio >= symbolic_ratio * 0.95

    def test_ratio_decreases_with_n(self, store, volume_trace, n):
        if n == 2:
            pytest.skip("needs a smaller-n comparison point")
        weights = [store.batch(d).entry_count for d in range(1, LAST + 1)]

        def ratio(k):
            scheme = WataStarScheme(WINDOW, k)
            lazy = max(scheme_daily_sizes(scheme, weights, LAST))
            return lazy / max(hard_window_sizes(weights, WINDOW, LAST))

        assert ratio(n) <= ratio(n - 1) + 1e-9
