"""Cross-validation: the analytic model against the measured substrate.

Absolute numbers differ (Table-12 constants describe 1997 Netnews volumes;
the measured substrate runs small synthetic days), but the *structure* must
agree — per-phase cost composition, relative scheme ordering, and space
behaviour — because both paths execute identical plans.
"""

import pytest

from repro.analysis.costing import AnalyticExecutor
from repro.analysis.parameters import (
    ApplicationParameters,
    CostParameters,
    HardwareParameters,
    ImplementationParameters,
)
from repro.core.schemes import ALL_SCHEMES, DelScheme, ReindexScheme
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.sim.driver import Simulation
from repro.workloads.text import TextWorkloadConfig, build_store

WINDOW, N, LAST = 6, 2, 24


@pytest.fixture(scope="module")
def store():
    return build_store(
        LAST,
        TextWorkloadConfig(docs_per_day=15, words_per_doc=10, vocabulary=120, seed=33),
    )


def calibrated_params(store) -> CostParameters:
    """Measure Build/Add/S' on the substrate so the analytic model speaks
    the same units as the simulation."""
    from repro.index.builder import build_packed_index
    from repro.storage.disk import SimulatedDisk

    disk = SimulatedDisk()
    config = IndexConfig()
    before = disk.clock
    idx = build_packed_index(
        disk,
        config,
        store.grouped_for([1]),
        [1],
        source_bytes=store.data_bytes_for([1]),
    )
    build_s = disk.clock - before
    s_bytes = idx.allocated_bytes
    before = disk.clock
    idx.insert_postings(store.grouped_for([2]), [2])
    add_s = disk.clock - before
    s_prime = idx.allocated_bytes / 2
    return CostParameters(
        name="calibrated",
        window=WINDOW,
        hardware=HardwareParameters(),
        application=ApplicationParameters(s_bytes=max(s_bytes, 1)),
        implementation=ImplementationParameters(
            g=2.0,
            build_s=build_s,
            add_s=add_s,
            del_s=add_s,
            s_prime_bytes=max(s_prime, 1),
        ),
    )


def measured_average(store, scheme_cls, technique):
    sim = Simulation(scheme_cls(WINDOW, N), store, technique=technique)
    result = sim.run(LAST)
    days = result.steady_days(warmup=WINDOW)
    n = len(days)
    return (
        sum(d.seconds.transition for d in days) / n,
        sum(d.seconds.precomputation for d in days) / n,
        sum(d.steady_bytes for d in days) / n,
    )


def analytic_average(store, scheme_cls, technique, params):
    executor = AnalyticExecutor(scheme_cls(WINDOW, N), params, technique)
    reports = executor.run(LAST)
    days = reports[1 + WINDOW :]
    n = len(days)
    return (
        sum(r.seconds.transition for r in days) / n,
        sum(r.seconds.precomputation for r in days) / n,
        sum(r.steady_bytes for r in days) / n,
    )


class TestAnalyticVsMeasured:
    @pytest.mark.parametrize(
        "scheme_cls",
        [c for c in ALL_SCHEMES if c.min_indexes <= N],
        ids=lambda c: c.name,
    )
    def test_transition_times_within_small_factor(self, store, scheme_cls):
        """Calibrated analytic transitions land near measured ones.

        At this tiny test scale seeks dominate transfers, so per-day
        constants calibrated from single-day measurements over-amortise
        (e.g. Build of a 3-day cluster is cheaper than 3x Build of one
        day); a 3x envelope still catches structural bugs while tolerating
        that, and the paper-scale constants are exercised elsewhere.
        """
        params = calibrated_params(store)
        technique = UpdateTechnique.SIMPLE_SHADOW
        measured_t, _, _ = measured_average(store, scheme_cls, technique)
        analytic_t, _, _ = analytic_average(store, scheme_cls, technique, params)
        assert measured_t / 3 < analytic_t < measured_t * 3, (
            f"analytic {analytic_t} vs measured {measured_t}"
        )

    def test_scheme_ordering_preserved_for_transition_time(self, store):
        """REINDEX transitions cost more than DEL's at n=2, both ways."""
        technique = UpdateTechnique.SIMPLE_SHADOW
        params = calibrated_params(store)
        m_del, _, _ = measured_average(store, DelScheme, technique)
        m_re, _, _ = measured_average(store, ReindexScheme, technique)
        a_del, _, _ = analytic_average(store, DelScheme, technique, params)
        a_re, _, _ = analytic_average(store, ReindexScheme, technique, params)
        assert (m_re > m_del) == (a_re > a_del)

    def test_space_ordering_preserved(self, store):
        """REINDEX (packed) occupies less steady space than DEL (unpacked)."""
        technique = UpdateTechnique.SIMPLE_SHADOW
        params = calibrated_params(store)
        _, _, m_del = measured_average(store, DelScheme, technique)
        _, _, m_re = measured_average(store, ReindexScheme, technique)
        _, _, a_del = analytic_average(store, DelScheme, technique, params)
        _, _, a_re = analytic_average(store, ReindexScheme, technique, params)
        assert m_re < m_del
        assert a_re < a_del
