"""Fuzzing the executors with arbitrary (valid) operation plans.

The scheme-driven differential tests only exercise the plans the six
schemes emit.  Here hypothesis generates arbitrary well-formed plans —
builds, adds, deletes, copies, renames, drops over a pool of names — and
asserts that the storage executor and the symbolic executor stay in
lockstep, that queries always match brute force over the *live* day-sets,
and that no space leaks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import PlanExecutor
from repro.core.ops import (
    AddOp,
    BuildOp,
    CopyOp,
    DeleteOp,
    DropOp,
    RenameOp,
    UpdateOp,
)
from repro.core.symbolic import SymbolicState
from repro.core.wave import WaveIndex
from repro.index.config import IndexConfig
from repro.index.updates import UpdateTechnique
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

NAMES = ["I1", "I2", "Temp", "T1"]
DAYS = list(range(1, 13))
VALUES = "abcdefgh"


@st.composite
def plans(draw):
    """A sequence of ops, each valid given the bindings built so far.

    Respects the paper's ``AddToIndex`` precondition: a day is only ever
    added to an index that does not already cover it (schemes guarantee
    this; adding twice would legitimately duplicate entries).
    """
    bound: dict[str, set[int]] = {}
    ops = []
    for _ in range(draw(st.integers(1, 25))):
        choices = ["build"]
        if bound:
            choices += ["add", "delete", "update", "copy", "drop", "rename"]
        kind = draw(st.sampled_from(choices))
        if kind == "build":
            target = draw(st.sampled_from(NAMES))
            days = set(draw(st.sets(st.sampled_from(DAYS), max_size=4)))
            ops.append(BuildOp(target=target, days=tuple(sorted(days))))
            bound[target] = days
            continue
        target = draw(st.sampled_from(sorted(bound)))
        addable = sorted(set(DAYS) - bound[target])
        if kind == "add":
            days = set(
                draw(st.sets(st.sampled_from(addable or DAYS), max_size=3))
            ) - bound[target]
            ops.append(AddOp(target=target, days=tuple(sorted(days))))
            bound[target] |= days
        elif kind == "delete":
            days = set(draw(st.sets(st.sampled_from(DAYS), max_size=3)))
            ops.append(DeleteOp(target=target, days=tuple(sorted(days))))
            bound[target] -= days
        elif kind == "update":
            delete = set(draw(st.sets(st.sampled_from(DAYS), max_size=3)))
            remaining = bound[target] - delete
            add = set(
                draw(st.sets(st.sampled_from(addable or DAYS), max_size=2))
            ) - remaining
            ops.append(
                UpdateOp(
                    target=target,
                    add_days=tuple(sorted(add)),
                    delete_days=tuple(sorted(delete)),
                )
            )
            bound[target] = remaining | add
        elif kind == "copy":
            dest = draw(st.sampled_from(NAMES))
            ops.append(CopyOp(source=target, target=dest))
            bound[dest] = set(bound[target])
        elif kind == "rename":
            dest = draw(st.sampled_from([n for n in NAMES if n != target]))
            ops.append(RenameOp(source=target, target=dest))
            bound[dest] = bound.pop(target)
        else:
            ops.append(DropOp(target=target))
            del bound[target]
    return ops


class TestArbitraryPlans:
    @given(
        plan=plans(),
        technique=st.sampled_from(list(UpdateTechnique)),
    )
    @settings(max_examples=150, deadline=None)
    def test_storage_matches_symbolic(self, plan, technique):
        store = make_store(len(DAYS), seed=77, values=VALUES)
        disk = SimulatedDisk()
        wave = WaveIndex(disk, IndexConfig(), 2)
        executor = PlanExecutor(wave, store, technique)
        state = SymbolicState(["I1", "I2"])

        for op in plan:
            executor.execute([op])
            state.apply(op)
            assert wave.days_by_name() == state.bindings

        # Queries over the constituents match brute force restricted to
        # their (arbitrary) day-sets — with multiplicity: unlike scheme
        # plans, random plans may index the same day in two constituents,
        # and a probe then legitimately returns that entry twice.
        for value in VALUES:
            got = sorted(wave.index_probe(value).record_ids)
            want = sorted(
                e.record_id
                for days in state.constituent_days().values()
                for d in days
                for v, e in store.batch(d).postings()
                if v == value
            )
            assert got == want

        disk.check_invariants()
        bound_bytes = sum(
            i.allocated_bytes for i in wave.bindings.values()
        )
        assert disk.live_bytes == bound_bytes

    @given(plan=plans())
    @settings(max_examples=50, deadline=None)
    def test_analytic_executor_accepts_any_plan(self, plan):
        """The day-count executor handles the same arbitrary plans."""
        from repro.analysis.costing import AnalyticExecutor
        from repro.analysis.parameters import SCAM_PARAMETERS
        from repro.core.schemes import DelScheme

        scheme = DelScheme(4, 2)  # only supplies names/window context
        executor = AnalyticExecutor(
            scheme, SCAM_PARAMETERS, UpdateTechnique.SIMPLE_SHADOW
        )
        state = SymbolicState(["I1", "I2"])
        from repro.core.executor import PhaseSeconds

        acc = PhaseSeconds()
        for op in plan:
            executor._charge(op, acc)
            state.apply(op)
            got = {
                name: binding.days
                for name, binding in executor.bindings.items()
            }
            assert got == state.bindings
        assert acc.total >= 0.0
        assert executor._total_bytes >= 0.0
