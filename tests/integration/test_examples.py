"""Smoke tests: every example script runs cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    # Examples use `if __name__ == "__main__"`; run them as main.
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_expected_examples_present():
    expected = {
        "quickstart.py",
        "scam_copy_detection.py",
        "web_search_engine.py",
        "tpcd_warehouse.py",
        "usenet_sliding_window.py",
        "choose_a_scheme.py",
        "stock_trades.py",
    }
    assert expected <= set(EXAMPLES)
