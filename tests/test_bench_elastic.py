"""Tests for the elastic spike-recovery bench and the topology-chaos
harness report schemas."""

import dataclasses

import pytest

from repro.bench.elastic import (
    ElasticBenchConfig,
    quick_config,
    render_summary,
    run_elastic_bench,
    validate_report,
)
from repro.bench.topology_chaos import (
    TopologyChaosConfig,
    quick_config as chaos_quick_config,
    render_summary as chaos_render_summary,
    run_topology_chaos,
    validate_report as chaos_validate_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_elastic_bench(quick_config())


@pytest.fixture(scope="module")
def chaos_report():
    # Scaled down but still covering every step of both pipelines with
    # crash faults (the full kill/space matrix runs in the nightly soak).
    config = dataclasses.replace(
        chaos_quick_config(), kinds=("split", "merge"), settle_days=2
    )
    return run_topology_chaos(config)


class TestElasticConfig:
    def test_defaults_validate(self):
        config = ElasticBenchConfig()
        assert config.spike_day == config.window + config.spike_after
        assert config.last_day == config.window + config.transitions

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            ElasticBenchConfig(scheme="NOPE")

    def test_spike_must_leave_recovery_room(self):
        with pytest.raises(ValueError):
            ElasticBenchConfig(transitions=3, spike_after=3)

    def test_quick_keeps_the_headline_window(self):
        config = quick_config()
        assert config.quick is True
        # The spike and its recovery window survive the shrink — the
        # quick headline must stay inside the bench-check gate band.
        assert config.spike_after == ElasticBenchConfig().spike_after
        assert config.transitions == config.spike_after + 4


class TestElasticReport:
    def test_schema_validates(self, quick_report):
        validate_report(quick_report)
        assert quick_report["bench"] == "elastic"

    def test_spike_recovers_via_split(self, quick_report):
        headline = quick_report["headline"]
        assert headline["recovered"] is True
        assert headline["splits_applied"] >= 1
        assert headline["throughput_recovery_makespan"] > 0
        assert quick_report["headline"]["claim"]["pass"] is True

    def test_elastic_beats_the_static_twin(self, quick_report):
        headline = quick_report["headline"]
        assert (
            headline["post_recovery_qps"] > headline["static_spiked_qps"]
        )

    def test_timeline_shows_the_topology_growing(self, quick_report):
        n_shards = [d["n_shards"] for d in quick_report["timeline"]]
        assert n_shards[0] == quick_report["cluster"]["n_shards"]
        assert max(n_shards) > n_shards[0]
        static = [d["n_shards"] for d in quick_report["static"]]
        assert len(set(static)) == 1  # the twin never reshapes

    def test_summary_renders(self, quick_report):
        text = render_summary(quick_report)
        assert "recovery" in text
        assert "claim: PASS" in text
        assert "day" in text


class TestTopologyChaosReport:
    def test_schema_validates(self, chaos_report):
        chaos_validate_report(chaos_report)
        assert chaos_report["bench"] == "topology_chaos"

    def test_every_cell_passes(self, chaos_report):
        headline = chaos_report["headline"]
        assert headline["pass"] is True
        assert headline["violations"] == 0
        assert headline["cells"] > 0

    def test_both_pipelines_fully_enumerated(self, chaos_report):
        # One cell per (kind, step, fault); both pipelines appear and
        # the crash fault reaches every step including plan and cleanup.
        steps = chaos_report["steps"]
        assert set(steps) == {"split", "merge"}
        crashed = {
            (c["kind"], c["step"])
            for c in chaos_report["cells"]
            if c["fault"] == "crash"
        }
        for kind, names in steps.items():
            for name in names:
                assert (kind, name) in crashed

    def test_outcomes_partition_the_matrix(self, chaos_report):
        headline = chaos_report["headline"]
        assert (
            headline["applied"]
            + headline["aborted"]
            + headline["rolled_forward"]
            + headline["skipped"]
            == headline["cells"]
        )

    def test_summary_renders(self, chaos_report):
        text = chaos_render_summary(chaos_report)
        assert "cells" in text
