"""Tests for the query-availability analysis (Section 2.1's trade-off)."""

import pytest

from repro.analysis.availability import availability
from repro.analysis.parameters import SCAM_PARAMETERS
from repro.core.schemes import (
    ALL_SCHEMES,
    DelScheme,
    ReindexScheme,
    WataStarScheme,
)
from repro.index.updates import UpdateTechnique


class TestBlockedTime:
    def test_in_place_del_blocks_queries(self):
        report = availability(
            lambda: DelScheme(7, 2), SCAM_PARAMETERS, UpdateTechnique.IN_PLACE
        )
        assert report.needs_concurrency_control
        assert report.blocked_s > 0
        assert 0 < report.blocked_fraction <= 1.0

    @pytest.mark.parametrize(
        "technique",
        [UpdateTechnique.SIMPLE_SHADOW, UpdateTechnique.PACKED_SHADOW],
        ids=lambda t: t.value,
    )
    @pytest.mark.parametrize(
        "scheme_cls",
        [c for c in ALL_SCHEMES if c.min_indexes <= 2],
        ids=lambda c: c.name,
    )
    def test_shadowing_never_blocks(self, scheme_cls, technique):
        """The paper's core claim for shadow updating."""
        report = availability(
            lambda: scheme_cls(7, 2), SCAM_PARAMETERS, technique
        )
        assert report.blocked_s == 0.0
        assert not report.needs_concurrency_control

    def test_reindex_never_blocks_even_in_place(self):
        """REINDEX only ever builds fresh indexes: nothing queryable is
        mutated, which is its 'no concurrency control' selling point."""
        report = availability(
            lambda: ReindexScheme(7, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.IN_PLACE,
        )
        assert report.blocked_s == 0.0

    def test_wata_blocks_only_for_the_daily_add(self):
        in_place = availability(
            lambda: WataStarScheme(7, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.IN_PLACE,
        )
        del_ = availability(
            lambda: DelScheme(7, 2), SCAM_PARAMETERS, UpdateTechnique.IN_PLACE
        )
        # WATA never deletes, so it blocks less than DEL.
        assert 0 < in_place.blocked_s < del_.blocked_s


class TestStaleness:
    def test_staleness_equals_transition_time(self):
        report = availability(
            lambda: DelScheme(7, 1),
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
        )
        assert report.staleness_s == pytest.approx(
            SCAM_PARAMETERS.implementation.add_s
        )

    def test_cycles_validated(self):
        with pytest.raises(ValueError):
            availability(
                lambda: DelScheme(7, 1),
                SCAM_PARAMETERS,
                UpdateTechnique.IN_PLACE,
                cycles=0,
            )
