"""Tests for query costing and the total-work measure."""

import pytest

from repro.analysis.daycount import run_reports, steady_state
from repro.analysis.parameters import (
    SCAM_PARAMETERS,
    TPCD_PARAMETERS,
    WSE_PARAMETERS,
)
from repro.analysis.work import (
    probe_seconds,
    query_seconds,
    scan_seconds,
    summarize,
    total_work_seconds,
)
from repro.core.schemes import DelScheme, ReindexScheme, WataStarScheme
from repro.index.updates import UpdateTechnique


def last_report(params, scheme_factory, technique=UpdateTechnique.SIMPLE_SHADOW):
    scheme = scheme_factory()
    reports = run_reports(scheme, params, technique, transitions=scheme.window)
    return reports[-1]


class TestProbeCost:
    def test_probe_cost_zero_without_probes(self):
        report = last_report(TPCD_PARAMETERS, lambda: DelScheme(100, 2))
        assert probe_seconds(report, TPCD_PARAMETERS) == 0.0

    def test_probe_cost_scales_with_n(self):
        small = last_report(SCAM_PARAMETERS, lambda: DelScheme(7, 1))
        large = last_report(SCAM_PARAMETERS, lambda: DelScheme(7, 7))
        assert probe_seconds(large, SCAM_PARAMETERS) > probe_seconds(
            small, SCAM_PARAMETERS
        )

    def test_probe_cost_formula_n1(self):
        report = last_report(SCAM_PARAMETERS, lambda: DelScheme(7, 1))
        hw = SCAM_PARAMETERS.hardware
        app = SCAM_PARAMETERS.application
        expected = app.probe_num * (hw.seek_s + hw.transfer_s(7 * app.c_bytes))
        assert probe_seconds(report, SCAM_PARAMETERS) == pytest.approx(expected)

    def test_wata_probes_pay_for_expired_days(self):
        """Soft windows make buckets bigger, probes slower."""
        del_probe = probe_seconds(
            last_report(SCAM_PARAMETERS, lambda: DelScheme(7, 2)),
            SCAM_PARAMETERS,
        )
        # Pick a WATA day where residue is maximal (just before ThrowAway).
        scheme = WataStarScheme(7, 2)
        reports = run_reports(
            scheme, SCAM_PARAMETERS, UpdateTechnique.SIMPLE_SHADOW,
            transitions=14,
        )
        wata_probe = max(probe_seconds(r, SCAM_PARAMETERS) for r in reports)
        assert wata_probe > del_probe


class TestScanCost:
    def test_newest_target_scans_one_index(self):
        report = last_report(SCAM_PARAMETERS, lambda: DelScheme(7, 7))
        cost = scan_seconds(report, SCAM_PARAMETERS)
        hw = SCAM_PARAMETERS.hardware
        # One index holding one day, scanned 10 times.
        per_day = SCAM_PARAMETERS.implementation.s_prime_bytes
        assert cost == pytest.approx(10 * (hw.seek_s + hw.transfer_s(per_day)))

    def test_all_target_scans_everything(self):
        report = last_report(TPCD_PARAMETERS, lambda: DelScheme(100, 4))
        cost = scan_seconds(report, TPCD_PARAMETERS)
        hw = TPCD_PARAMETERS.hardware
        total_bytes = 100 * TPCD_PARAMETERS.implementation.s_prime_bytes
        expected = 10 * (4 * hw.seek_s + hw.transfer_s(total_bytes))
        assert cost == pytest.approx(expected)

    def test_packed_indexes_scan_faster(self):
        simple = last_report(
            TPCD_PARAMETERS, lambda: DelScheme(100, 2),
            UpdateTechnique.SIMPLE_SHADOW,
        )
        packed = last_report(
            TPCD_PARAMETERS, lambda: DelScheme(100, 2),
            UpdateTechnique.PACKED_SHADOW,
        )
        assert scan_seconds(packed, TPCD_PARAMETERS) < scan_seconds(
            simple, TPCD_PARAMETERS
        )

    def test_wse_has_no_scans(self):
        report = last_report(WSE_PARAMETERS, lambda: DelScheme(35, 2))
        assert scan_seconds(report, WSE_PARAMETERS) == 0.0


class TestTotalWork:
    def test_total_work_sums_components(self):
        report = last_report(SCAM_PARAMETERS, lambda: DelScheme(7, 2))
        q = query_seconds(report, SCAM_PARAMETERS)
        assert total_work_seconds(report, SCAM_PARAMETERS) == pytest.approx(
            report.seconds.total + q.total
        )

    def test_summarize_requires_reports(self):
        with pytest.raises(ValueError):
            summarize([], SCAM_PARAMETERS)

    def test_summarize_averages(self):
        scheme = ReindexScheme(7, 1)
        reports = run_reports(
            scheme, SCAM_PARAMETERS, UpdateTechnique.SIMPLE_SHADOW,
            transitions=14,
        )
        avg = summarize(reports[1:], SCAM_PARAMETERS)
        assert avg.transition_s == pytest.approx(
            7 * SCAM_PARAMETERS.implementation.build_s
        )
        assert avg.max_length_days == 7


class TestSteadyState:
    def test_steady_state_is_cycle_invariant(self):
        """Averaging 1 cycle or 3 gives the same numbers (periodicity)."""
        one = steady_state(
            lambda: DelScheme(7, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
            measure_cycles=1,
        )
        three = steady_state(
            lambda: DelScheme(7, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
            measure_cycles=3,
        )
        assert one.total_work_s == pytest.approx(three.total_work_s)
        assert one.steady_bytes == pytest.approx(three.steady_bytes)

    def test_invalid_cycles_rejected(self):
        with pytest.raises(ValueError):
            steady_state(
                lambda: DelScheme(7, 2),
                SCAM_PARAMETERS,
                measure_cycles=0,
            )
