"""Closed forms (Tables 8-11) cross-checked against the day-count executor.

Where the paper's prose pins a formula down, the executor must agree
exactly; formulas the prose leaves approximate are checked for consistency
of trend only.
"""

import math

import pytest

from repro.analysis.daycount import steady_state
from repro.analysis.formulas import (
    table8_space,
    table9_query,
    table10_maintenance,
    table11_maintenance,
    x_of,
    y_of,
)
from repro.analysis.parameters import SCAM_PARAMETERS
from repro.core.schemes import (
    DelScheme,
    RataStarScheme,
    ReindexPlusScheme,
    ReindexScheme,
    WataStarScheme,
)
from repro.index.updates import UpdateTechnique

P = SCAM_PARAMETERS


class TestXY:
    def test_x(self):
        assert x_of(10, 4) == 2.5

    def test_y(self):
        assert y_of(10, 4) == 3.0
        with pytest.raises(ValueError):
            y_of(10, 1)


class TestTable8AgainstExecutor:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_del_operation_space(self, n):
        row = table8_space("DEL", P, n)
        avg = steady_state(
            lambda: DelScheme(7, n), P, UpdateTechnique.SIMPLE_SHADOW
        )
        assert avg.steady_bytes == pytest.approx(row.avg_operation)

    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_reindex_operation_space(self, n):
        row = table8_space("REINDEX", P, n)
        avg = steady_state(
            lambda: ReindexScheme(7, n), P, UpdateTechnique.SIMPLE_SHADOW
        )
        assert avg.steady_bytes == pytest.approx(row.avg_operation)

    @pytest.mark.parametrize("n", [2, 3, 4, 7])
    def test_wata_max_operation_space(self, n):
        row = table8_space("WATA*", P, n)
        avg = steady_state(
            lambda: WataStarScheme(7, n),
            P,
            UpdateTechnique.SIMPLE_SHADOW,
            measure_cycles=3,
        )
        # Max steady bytes over a cycle equals (W + ceil(Y) - 1) * S'.
        bound = row.max_operation
        assert avg.max_length_days * P.implementation.s_prime_bytes == (
            pytest.approx(bound)
        )

    def test_reindex_plus_temp_average(self):
        # The formula rates Temp at S' throughout; the executor rates its
        # freshly built first day at S, hence the ~1.5% tolerance.
        row = table8_space("REINDEX+", P, 1)
        avg = steady_state(
            lambda: ReindexPlusScheme(7, 1), P, UpdateTechnique.SIMPLE_SHADOW
        )
        assert avg.steady_bytes == pytest.approx(row.avg_operation, rel=0.02)

    def test_reindex_uses_packed_size(self):
        row = table8_space("REINDEX", P, 1)
        del_row = table8_space("DEL", P, 1)
        assert row.avg_operation < del_row.avg_operation  # S < S'

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            table8_space("NOPE", P, 2)
        with pytest.raises(ValueError):
            table8_space("WATA*", P, 1)


class TestTable9:
    def test_probe_time_components(self):
        row = table9_query("DEL", P, 7)
        expected = 0.014 + (7 / 7) * 100 / (10 * 1_000_000)
        assert row.probe_one_index_s == pytest.approx(expected)

    def test_reindex_scans_at_packed_rate(self):
        reindex = table9_query("REINDEX", P, 1)
        del_ = table9_query("DEL", P, 1)
        assert reindex.scan_one_index_s < del_.scan_one_index_s

    def test_wata_probes_cover_soft_window(self):
        # WATA's per-index day count is Y > X, so probes cost more.
        wata = table9_query("WATA*", P, 2)
        del_ = table9_query("DEL", P, 2)
        assert wata.probe_one_index_s > del_.probe_one_index_s


class TestTable10AgainstExecutor:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_del_row_exact(self, n):
        row = table10_maintenance("DEL", P, n)
        avg = steady_state(
            lambda: DelScheme(7, n), P, UpdateTechnique.SIMPLE_SHADOW
        )
        assert avg.transition_s == pytest.approx(row.transition_s)
        assert avg.precompute_s == pytest.approx(row.precompute_s)

    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_reindex_row_exact(self, n):
        row = table10_maintenance("REINDEX", P, n)
        avg = steady_state(
            lambda: ReindexScheme(7, n), P, UpdateTechnique.SIMPLE_SHADOW
        )
        assert avg.transition_s == pytest.approx(row.transition_s)
        assert avg.precompute_s == 0.0

    @pytest.mark.parametrize("n", [2, 3, 4, 7])
    def test_wata_row_exact_for_integer_y(self, n):
        """W = 7 makes Y integral for these n: the formula is exact."""
        row = table10_maintenance("WATA*", P, n)
        avg = steady_state(
            lambda: WataStarScheme(7, n),
            P,
            UpdateTechnique.SIMPLE_SHADOW,
            measure_cycles=3,
        )
        assert avg.transition_s == pytest.approx(row.transition_s)
        assert avg.precompute_s == 0.0


class TestTable11AgainstExecutor:
    @pytest.mark.parametrize("n", [1, 7])
    def test_del_row_exact(self, n):
        row = table11_maintenance("DEL", P, n)
        avg = steady_state(
            lambda: DelScheme(7, n), P, UpdateTechnique.PACKED_SHADOW
        )
        assert avg.transition_s == pytest.approx(row.transition_s)
        assert avg.precompute_s == 0.0

    def test_packed_faster_than_simple_for_del(self):
        """Section 6: packed shadowing does less total maintenance work."""
        simple = steady_state(
            lambda: DelScheme(7, 1), P, UpdateTechnique.SIMPLE_SHADOW
        )
        packed = steady_state(
            lambda: DelScheme(7, 1), P, UpdateTechnique.PACKED_SHADOW
        )
        assert packed.maintenance_s < simple.maintenance_s

    def test_rata_has_precomputation(self):
        avg = steady_state(
            lambda: RataStarScheme(7, 3),
            P,
            UpdateTechnique.PACKED_SHADOW,
            measure_cycles=3,
        )
        assert avg.precompute_s > 0.0


class TestTheorem2Formula:
    @pytest.mark.parametrize("w,n", [(10, 4), (7, 2), (35, 5), (100, 10)])
    def test_wata_max_space_formula(self, w, n):
        row = table8_space("WATA*", P.with_window(w), n)
        cy = math.ceil((w - 1) / (n - 1))
        assert row.max_operation == pytest.approx(
            (w + cy - 1) * P.implementation.s_prime_bytes
        )


class TestReindexPlusExactForm:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7])
    def test_closed_form_matches_executor_exactly(self, n):
        """CP·(m²−1) + Add·[m(m−1)/2 + m − 1] + Build per cluster of m."""
        row = table10_maintenance("REINDEX+", P, n)
        avg = steady_state(
            lambda: ReindexPlusScheme(7, n),
            P,
            UpdateTechnique.SIMPLE_SHADOW,
            measure_cycles=2,
        )
        assert avg.transition_s == pytest.approx(row.transition_s)
        assert avg.precompute_s == pytest.approx(row.precompute_s)

    def test_roughly_half_of_reindex_days(self):
        """The paper's headline: REINDEX+ indexes about half REINDEX's days.

        Compare day-equivalents (Add coefficient vs REINDEX's Build count)
        at n = 1, where REINDEX re-indexes W days daily and REINDEX+ about
        (W+1)/2 + 1 of them.
        """
        from repro.analysis.formulas import avg_cluster_days

        w = 7
        reindex_days = avg_cluster_days(w, 1)  # = W
        m = w
        reindex_plus_days = (m * (m - 1) / 2 + m - 1 + 1) / w
        assert reindex_plus_days < 0.65 * reindex_days
