"""Tests for the Section-5 / Table-12 parameter classes."""

import pytest

from repro.analysis.parameters import (
    ApplicationParameters,
    HardwareParameters,
    ImplementationParameters,
    SCAM_PARAMETERS,
    TABLE12,
    TPCD_PARAMETERS,
    WSE_PARAMETERS,
)
from repro.storage.cost import MEGABYTE


class TestTable12Values:
    """The published constants, verbatim."""

    def test_scam(self):
        p = SCAM_PARAMETERS
        assert p.window == 7
        assert p.hardware.seek_s == 0.014
        assert p.application.s_bytes == 56 * MEGABYTE
        assert p.application.probe_num == 100_000
        assert p.application.scan_num == 10
        assert p.application.scan_target == "newest"
        assert p.implementation.g == 2.0
        assert p.implementation.build_s == 1686
        assert p.implementation.add_s == 3341
        assert p.implementation.s_prime_bytes == pytest.approx(78.4 * MEGABYTE)

    def test_wse(self):
        p = WSE_PARAMETERS
        assert p.window == 35
        assert p.application.probe_num == 340_000
        assert p.application.scan_num == 0
        assert p.implementation.build_s == 2276

    def test_tpcd(self):
        p = TPCD_PARAMETERS
        assert p.window == 100
        assert p.application.probe_num == 0
        assert p.application.scan_num == 10
        assert p.application.scan_target == "all"
        assert p.implementation.g == 1.08
        assert p.implementation.s_prime_bytes == 627 * MEGABYTE

    def test_registry(self):
        assert set(TABLE12) == {"SCAM", "WSE", "TPC-D"}

    def test_s_prime_ratio_reflects_g(self):
        # g = 2 gives ~1.4x overhead; g = 1.08 gives ~1.045x.
        scam_ratio = (
            SCAM_PARAMETERS.implementation.s_prime_bytes
            / SCAM_PARAMETERS.application.s_bytes
        )
        tpcd_ratio = (
            TPCD_PARAMETERS.implementation.s_prime_bytes
            / TPCD_PARAMETERS.application.s_bytes
        )
        assert scam_ratio == pytest.approx(1.4)
        assert tpcd_ratio == pytest.approx(1.045)


class TestDerivedCosts:
    def test_cp_reads_and_writes_s_prime(self):
        p = SCAM_PARAMETERS
        expected = 2 * 0.014 + 2 * 78.4 * MEGABYTE / (10 * MEGABYTE)
        assert p.cp_s == pytest.approx(expected)

    def test_smcp_reads_s_prime_writes_s(self):
        p = SCAM_PARAMETERS
        expected = 2 * 0.014 + (78.4 + 56) * MEGABYTE / (10 * MEGABYTE)
        assert p.smcp_s == pytest.approx(expected)

    def test_overrides(self):
        from dataclasses import replace

        p = replace(SCAM_PARAMETERS, cp_s_override=1.0, smcp_s_override=2.0)
        assert p.cp_s == 1.0
        assert p.smcp_s == 2.0


class TestScaling:
    def test_scaled_multiplies_data_quantities(self):
        p = SCAM_PARAMETERS.scaled(3.0)
        assert p.application.s_bytes == 3 * SCAM_PARAMETERS.application.s_bytes
        assert p.implementation.add_s == 3 * SCAM_PARAMETERS.implementation.add_s
        # Hardware and query counts unchanged.
        assert p.hardware == SCAM_PARAMETERS.hardware
        assert p.application.probe_num == SCAM_PARAMETERS.application.probe_num

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SCAM_PARAMETERS.scaled(0)

    def test_with_window(self):
        p = SCAM_PARAMETERS.with_window(14)
        assert p.window == 14
        assert SCAM_PARAMETERS.window == 7  # original untouched
        with pytest.raises(ValueError):
            SCAM_PARAMETERS.with_window(0)


class TestValidation:
    def test_hardware(self):
        with pytest.raises(ValueError):
            HardwareParameters(seek_s=-1)
        with pytest.raises(ValueError):
            HardwareParameters(trans_bps=0)

    def test_application(self):
        with pytest.raises(ValueError):
            ApplicationParameters(s_bytes=0)
        with pytest.raises(ValueError):
            ApplicationParameters(s_bytes=1, scan_target="sideways")
        with pytest.raises(ValueError):
            ApplicationParameters(s_bytes=1, probe_num=-1)

    def test_implementation(self):
        with pytest.raises(ValueError):
            ImplementationParameters(
                g=1.0, build_s=1, add_s=1, del_s=1, s_prime_bytes=1
            )
        with pytest.raises(ValueError):
            ImplementationParameters(
                g=2.0, build_s=-1, add_s=1, del_s=1, s_prime_bytes=1
            )


class TestWithOverrides:
    def test_leaf_fields_route_to_nested_groups(self):
        p = SCAM_PARAMETERS.with_overrides(
            probe_num=120.0, scan_num=3.0, build_s=9.0, seek_s=0.02
        )
        assert p.application.probe_num == 120.0
        assert p.application.scan_num == 3.0
        assert p.implementation.build_s == 9.0
        assert p.hardware.seek_s == 0.02

    def test_top_level_fields_override_directly(self):
        p = SCAM_PARAMETERS.with_overrides(window=9, name="shard0")
        assert p.window == 9
        assert p.name == "shard0"

    def test_original_is_untouched(self):
        before = SCAM_PARAMETERS.application.probe_num
        SCAM_PARAMETERS.with_overrides(probe_num=before + 1)
        assert SCAM_PARAMETERS.application.probe_num == before

    def test_no_overrides_is_identity(self):
        assert SCAM_PARAMETERS.with_overrides() == SCAM_PARAMETERS

    def test_unknown_name_raises_with_valid_list(self):
        with pytest.raises(ValueError) as err:
            SCAM_PARAMETERS.with_overrides(prob_num=1.0)
        assert "prob_num" in str(err.value)
        assert "probe_num" in str(err.value)  # the valid-names listing

    def test_validation_reruns_on_overridden_groups(self):
        with pytest.raises(ValueError):
            SCAM_PARAMETERS.with_overrides(probe_num=-1.0)
