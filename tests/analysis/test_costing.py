"""Tests for the analytic (day-count) executor's charging rules."""

import pytest

from repro.analysis.costing import AnalyticExecutor
from repro.analysis.parameters import SCAM_PARAMETERS
from repro.core.schemes import (
    DelScheme,
    ReindexScheme,
    WataStarScheme,
)
from repro.index.updates import UpdateTechnique

P = SCAM_PARAMETERS
S = P.application.s_bytes
SP = P.implementation.s_prime_bytes


def run_one(scheme, technique, transitions=7, day_weight=None):
    ex = AnalyticExecutor(scheme, P, technique, day_weight)
    reports = ex.run(scheme.window + transitions)
    return ex, reports


class TestBuildCharging:
    def test_start_build_cost(self):
        scheme = ReindexScheme(7, 1)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.SIMPLE_SHADOW)
        report = ex.run_start()
        assert report.seconds.transition == pytest.approx(
            7 * P.implementation.build_s
        )
        assert report.steady_bytes == pytest.approx(7 * S)  # packed

    def test_reindex_daily_cost_is_x_build(self):
        scheme = ReindexScheme(7, 1)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.SIMPLE_SHADOW)
        ex.run_start()
        report = ex.run_transition(8)
        assert report.seconds.transition == pytest.approx(
            7 * P.implementation.build_s
        )
        assert report.seconds.precomputation == 0.0


class TestDelCharging:
    def test_simple_shadow_split(self):
        scheme = DelScheme(7, 1)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.SIMPLE_SHADOW)
        ex.run_start()
        report = ex.run_transition(8)
        # Table 10: precompute = X*CP + Del, transition = Add.
        assert report.seconds.precompute == pytest.approx(
            7 * P.cp_s + P.implementation.del_s
        )
        assert report.seconds.transition == pytest.approx(
            P.implementation.add_s
        )

    def test_packed_shadow_all_transition(self):
        scheme = DelScheme(7, 1)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.PACKED_SHADOW)
        ex.run_start()
        report = ex.run_transition(8)
        # Table 11: transition = X*SMCP + Build, no precompute.
        assert report.seconds.precompute == 0.0
        assert report.seconds.transition == pytest.approx(
            7 * P.smcp_s + P.implementation.build_s
        )

    def test_in_place_split(self):
        scheme = DelScheme(7, 1)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.IN_PLACE)
        ex.run_start()
        report = ex.run_transition(8)
        assert report.seconds.precompute == pytest.approx(
            P.implementation.del_s
        )
        assert report.seconds.transition == pytest.approx(
            P.implementation.add_s
        )


class TestSpaceRating:
    def test_packed_rated_s_unpacked_rated_s_prime(self):
        scheme = DelScheme(7, 1)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.SIMPLE_SHADOW)
        start = ex.run_start()
        assert start.steady_bytes == pytest.approx(7 * S)  # built packed
        after = ex.run_transition(8)
        assert after.steady_bytes == pytest.approx(7 * SP)  # shadow-updated

    def test_peak_includes_shadow_copy(self):
        scheme = DelScheme(7, 1)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.SIMPLE_SHADOW)
        ex.run_start()
        report = ex.run_transition(8)
        # Steady 7 days + shadow of the whole index during the update.
        assert report.peak_bytes >= report.steady_bytes + 6.9 * S

    def test_wata_reports_soft_window_length(self):
        scheme = WataStarScheme(7, 2)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.SIMPLE_SHADOW)
        reports = ex.run(7 + 14)
        assert max(r.length_days for r in reports) == scheme.max_length_bound()


class TestDayWeights:
    def test_weighted_build(self):
        weights = {1: 2.0, 2: 1.0, 3: 0.5, 4: 1.0, 5: 1.0, 6: 1.0, 7: 1.0}
        scheme = ReindexScheme(7, 1)
        ex = AnalyticExecutor(
            scheme,
            P,
            UpdateTechnique.SIMPLE_SHADOW,
            day_weight=lambda d: weights.get(d, 1.0),
        )
        report = ex.run_start()
        assert report.seconds.transition == pytest.approx(
            7.5 * P.implementation.build_s
        )
        assert report.steady_bytes == pytest.approx(7.5 * S)


class TestSnapshots:
    def test_constituent_snapshots(self):
        scheme = WataStarScheme(7, 3)
        ex = AnalyticExecutor(scheme, P, UpdateTechnique.SIMPLE_SHADOW)
        ex.run_start()
        report = ex.run_transition(8)
        names = [s.name for s in report.constituents]
        assert names == ["I1", "I2", "I3"]
        newest = max(s.newest_day for s in report.constituents)
        assert newest == 8
