"""Tests for the parameter-sensitivity analysis."""

import pytest

from repro.analysis.parameters import (
    SCAM_PARAMETERS,
    TPCD_PARAMETERS,
    WSE_PARAMETERS,
)
from repro.analysis.sensitivity import (
    dominant_parameters,
    work_elasticities,
)
from repro.core.schemes import DelScheme, ReindexScheme
from repro.index.updates import UpdateTechnique


class TestElasticities:
    def test_del_structure(self):
        """DEL on SCAM: Add and Del weigh equally (same constant), probes
        are seek-dominated (probe_num and seek elasticities coincide), and
        Build/S are irrelevant (steady DEL never rebuilds)."""
        el = work_elasticities(
            lambda p: DelScheme(p.window, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
        )
        assert el["add"] == pytest.approx(el["del"], rel=0.01)
        assert el["probe_num"] == pytest.approx(el["seek"], rel=0.05)
        assert abs(el["build"]) < 1e-9
        assert abs(el["S"]) < 1e-9
        # Every elasticity except trans is non-negative; trans helps.
        assert all(v >= -1e-9 for k, v in el.items() if k != "trans")

    def test_trans_is_negative(self):
        el = work_elasticities(
            lambda p: DelScheme(p.window, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
        )
        assert el["trans"] < 0

    def test_wse_dominated_by_probes_and_seek(self):
        """The WSE's 340k daily probes are pure seek traffic."""
        el = work_elasticities(
            lambda p: DelScheme(p.window, 2),
            WSE_PARAMETERS,
            UpdateTechnique.PACKED_SHADOW,
        )
        top = dict(dominant_parameters(el, top=2))
        assert "probe_num" in top
        assert "seek" in top

    def test_tpcd_dominated_by_scans(self):
        """TPC-D's work is scan bandwidth: S' (simple shadowing) rules."""
        el = work_elasticities(
            lambda p: DelScheme(p.window, 2),
            TPCD_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
        )
        top = [name for name, _ in dominant_parameters(el, top=3)]
        assert "S_prime" in top or "trans" in top

    def test_reindex_sensitive_to_build_not_add(self):
        el = work_elasticities(
            lambda p: ReindexScheme(p.window, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
        )
        assert el["build"] > 0.3
        assert abs(el["add"]) < 1e-9
        assert abs(el["del"]) < 1e-9

    def test_del_pays_del_reindex_does_not(self):
        el = work_elasticities(
            lambda p: DelScheme(p.window, 2),
            SCAM_PARAMETERS,
            UpdateTechnique.SIMPLE_SHADOW,
        )
        assert el["del"] > 0.1


class TestValidation:
    def test_bump_range(self):
        with pytest.raises(ValueError):
            work_elasticities(
                lambda p: DelScheme(p.window, 2),
                SCAM_PARAMETERS,
                UpdateTechnique.SIMPLE_SHADOW,
                bump=0.0,
            )

    def test_unknown_parameter(self):
        with pytest.raises(ValueError):
            work_elasticities(
                lambda p: DelScheme(p.window, 2),
                SCAM_PARAMETERS,
                UpdateTechnique.SIMPLE_SHADOW,
                parameters=("nope",),
            )

    def test_dominant_ranking(self):
        ranked = dominant_parameters({"a": 0.1, "b": -0.9, "c": 0.5}, top=2)
        assert ranked == [("b", -0.9), ("c", 0.5)]
