"""Tests for the advisor drift bench report schema and claims."""

import json

import pytest

from repro.bench.advisor import (
    REQUIRED_HEADLINE_KEYS,
    AdvisorBenchConfig,
    quick_config,
    render_summary,
    run_advisor_bench,
    validate_report,
    write_report,
)


@pytest.fixture(scope="module")
def report():
    # The quick config runs the exact same races as the full one (see
    # quick_config's docstring): one module-scoped run covers the suite.
    return run_advisor_bench(quick_config())


class TestAdvisorConfig:
    def test_defaults_validate(self):
        config = AdvisorBenchConfig()
        assert config.last_day == config.window + 3 * config.phase_days
        p1, p2, p3 = config.phase_starts
        assert p1 == config.window + 1
        assert p3 - p2 == config.phase_days

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            AdvisorBenchConfig(scheme="NOPE")

    def test_illegal_static_design_rejected(self):
        with pytest.raises(ValueError):
            AdvisorBenchConfig(static_designs=(("WATA*", 1),))

    def test_phases_must_fit_a_retune(self):
        with pytest.raises(ValueError):
            AdvisorBenchConfig(phase_days=3, observe_days=2, cooldown_days=2)

    def test_quick_is_the_same_race(self):
        base = AdvisorBenchConfig()
        quick = quick_config()
        assert quick.quick is True
        assert quick.phase_days == base.phase_days
        assert quick.static_designs == base.static_designs


class TestAdvisorReport:
    def test_schema_validates(self, report):
        validate_report(report)
        assert report["bench"] == "advisor"
        for key in REQUIRED_HEADLINE_KEYS:
            assert key in report["headline"]

    def test_advisor_beats_every_static(self, report):
        headline = report["headline"]
        assert headline["beats_every_static"] is True
        for label, data in report["statics"].items():
            assert headline["advisor_cost"] < data["cumulative_cost"], label
        assert headline["advisor_drift_advantage"] > 1.0

    def test_advisor_actually_retuned(self, report):
        assert report["headline"]["retunes"] >= 2
        designs_seen = set()
        for entry in report["timeline"]:
            designs_seen.update(entry.get("designs", {}).values())
        assert len(designs_seen) >= 2

    def test_divergent_beats_uniform(self, report):
        headline = report["headline"]
        assert headline["divergent_beats_uniform"] is True
        assert headline["divergent_gain"] > 1.0
        divergent = report["divergent"]
        assert divergent["divergent_qps"] > divergent["uniform_qps"]
        # The twins really diverged in design.
        assert len(set(divergent["divergent_designs"].values())) == 2

    def test_answers_are_bit_identical(self, report):
        assert report["headline"]["bit_identical"] is True

    def test_claim_passes(self, report):
        claim = report["headline"]["claim"]
        assert claim["pass"] is True
        assert claim["beats_every_static"] is True
        assert claim["divergent_beats_uniform"] is True
        assert claim["bit_identical"] is True

    def test_timeline_charges_retunes_inside_maintenance(self, report):
        charged = [e for e in report["timeline"] if e["retunes"]]
        assert charged
        for entry in charged:
            assert entry["retune_seconds"] > 0.0
            assert entry["cost_seconds"] >= entry["retune_seconds"]

    def test_report_is_json_serialisable(self, report, tmp_path):
        path = write_report(report, tmp_path / "BENCH_advisor.json")
        restored = json.loads(path.read_text())
        assert restored["headline"]["claim"]["pass"] is True

    def test_summary_renders(self, report):
        text = render_summary(report)
        assert "drift advantage" in text
        assert "divergent" in text
        assert "PASS" in text

    def test_validate_rejects_missing_headline(self, report):
        broken = dict(report)
        broken["headline"] = {
            k: v
            for k, v in report["headline"].items()
            if k != "advisor_drift_advantage"
        }
        with pytest.raises(ValueError):
            validate_report(broken)
