"""Tests for the chaos soak harness and its report schema."""

import pytest

from repro.bench.chaos import (
    ChaosSoakConfig,
    quick_config,
    render_summary,
    run_chaos_soak,
    validate_report,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_chaos_soak(quick_config())


class TestConfig:
    def test_defaults_validate(self):
        config = ChaosSoakConfig()
        assert config.last_day == config.window + config.transitions

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            ChaosSoakConfig(scheme="NOPE")

    def test_unknown_kill_point_rejected(self):
        with pytest.raises(ValueError):
            ChaosSoakConfig(kill_points=("transition", "reboot"))

    def test_kills_without_replication_rejected(self):
        # A permanent kill with r=1 darkens the shard by construction;
        # the soak's zero-dark-shards invariant could never hold.
        with pytest.raises(ValueError):
            ChaosSoakConfig(replication=1)

    def test_too_short_soak_rejected(self):
        with pytest.raises(ValueError):
            ChaosSoakConfig(transitions=2)

    def test_quick_is_marked_and_single_seed(self):
        config = quick_config()
        assert config.quick is True
        assert len(config.seeds) == 1
        # The store shape is NOT shrunk: the recovery-makespan headline
        # must stay inside the bench-check band of the full-run baseline.
        assert config.docs_per_day == ChaosSoakConfig().docs_per_day
        assert config.window == ChaosSoakConfig().window


class TestReport:
    def test_schema_validates(self, quick_report):
        validate_report(quick_report)
        assert quick_report["bench"] == "chaos"
        assert len(quick_report["runs"]) == len(
            quick_report["chaos"]["seeds"]
        )

    def test_acceptance_invariants_hold(self, quick_report):
        # The committed robustness claim: one kill per shard, and the
        # cluster still never diverges from the fault-free twin, never
        # fabricates a day, and never leaves a shard dark.
        headline = quick_report["headline"]
        assert headline["all_invariants_pass"] is True
        assert headline["zero_dark_shards"] is True
        for run in quick_report["runs"]:
            assert run["violations"] == []
            assert all(run["invariants"].values())

    def test_every_kill_is_healed(self, quick_report):
        # One kill per shard retires one replica each; every one must be
        # rebuilt by the end of the soak (aborted attempts are retried).
        kills = sum(len(run["kills"]) for run in quick_report["runs"])
        assert kills == quick_report["chaos"]["n_shards"] * len(
            quick_report["chaos"]["seeds"]
        )
        assert quick_report["headline"]["total_rebuilds"] >= kills

    def test_recovery_makespan_is_a_single_rebuild_span(self, quick_report):
        headline = quick_report["headline"]
        assert headline["recovery_makespan_seconds"] > 0.0
        # The headline is the worst single rebuild, so it bounds the mean.
        assert (
            headline["recovery_makespan_seconds"]
            >= headline["recovery_makespan_mean"] > 0.0
        )

    def test_retries_bounded_by_policy(self, quick_report):
        budget = quick_report["chaos"]["retry_max_attempts"] - 1
        for run in quick_report["runs"]:
            assert run["max_op_retries"] <= budget

    def test_validate_rejects_missing_keys(self, quick_report):
        broken = dict(quick_report)
        del broken["headline"]
        with pytest.raises(ValueError):
            validate_report(broken)

    def test_validate_rejects_empty_runs(self, quick_report):
        broken = dict(quick_report)
        broken["runs"] = []
        with pytest.raises(ValueError):
            validate_report(broken)

    def test_write_and_summary(self, quick_report, tmp_path):
        path = write_report(quick_report, tmp_path / "BENCH_chaos.json")
        assert path.exists()
        text = render_summary(quick_report)
        assert "recovery" in text
        assert "PASS" in text

    def test_deterministic_given_seeds(self, quick_report):
        # Same config, same seeds, same report — no wall-clock noise.
        assert run_chaos_soak(quick_config()) == quick_report
