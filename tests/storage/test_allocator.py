"""Unit and property tests for the extent allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExtentError, OutOfSpaceError
from repro.storage.allocator import ExtentAllocator


class TestAllocation:
    def test_sequential_allocations_are_disjoint(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(100)
        b = alloc.allocate(50)
        assert not a.overlaps(b)
        assert alloc.live_bytes == 150

    def test_zero_byte_allocation(self):
        alloc = ExtentAllocator()
        ext = alloc.allocate(0)
        assert ext.size == 0
        assert alloc.live_bytes == 0
        alloc.free(ext)
        assert alloc.live_extents == 0

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            ExtentAllocator().allocate(-1)

    def test_bounded_capacity_enforced(self):
        alloc = ExtentAllocator(capacity_bytes=100)
        alloc.allocate(80)
        with pytest.raises(OutOfSpaceError):
            alloc.allocate(30)

    def test_free_reuses_space(self):
        alloc = ExtentAllocator(capacity_bytes=100)
        a = alloc.allocate(60)
        alloc.free(a)
        b = alloc.allocate(60)  # would fail without reuse
        assert b.offset == 0

    def test_first_fit_prefers_earliest_hole(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(50)
        alloc.allocate(50)
        alloc.free(a)
        c = alloc.allocate(40)
        assert c.offset == 0  # placed in the hole, not at the frontier

    def test_high_water_tracks_peak(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(100)
        assert alloc.high_water_bytes == 100
        alloc.free(a)
        assert alloc.high_water_bytes == 100
        alloc.allocate(40)
        assert alloc.high_water_bytes == 100

    def test_reset_high_water(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(100)
        alloc.free(a)
        alloc.reset_high_water()
        assert alloc.high_water_bytes == 0
        alloc.allocate(10)
        assert alloc.high_water_bytes == 10


class TestFree:
    def test_double_free_rejected(self):
        alloc = ExtentAllocator()
        ext = alloc.allocate(10)
        alloc.free(ext)
        with pytest.raises(ExtentError):
            alloc.free(ext)

    def test_foreign_extent_rejected(self):
        a1 = ExtentAllocator()
        a2 = ExtentAllocator()
        ext = a1.allocate(10)
        with pytest.raises(ExtentError):
            a2.free(ext)

    def test_coalescing_with_both_neighbours(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(10)
        b = alloc.allocate(10)
        c = alloc.allocate(10)
        alloc.allocate(10)  # keeps frontier away
        alloc.free(a)
        alloc.free(c)
        assert len(alloc.free_ranges()) == 2
        alloc.free(b)  # merges a+b+c into one range
        assert alloc.free_ranges() == [(0, 30)]

    def test_freeing_trailing_extent_retracts_frontier(self):
        alloc = ExtentAllocator()
        alloc.allocate(10)
        b = alloc.allocate(10)
        frontier = alloc.frontier
        alloc.free(b)
        assert alloc.frontier == frontier - 10
        assert alloc.free_ranges() == []


@st.composite
def alloc_scripts(draw):
    """A random interleaving of allocate/free actions."""
    n = draw(st.integers(min_value=1, max_value=40))
    actions = []
    live = 0
    for _ in range(n):
        if live == 0 or draw(st.booleans()):
            actions.append(("alloc", draw(st.integers(0, 500))))
            live += 1
        else:
            actions.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
    return actions


class TestAllocatorProperties:
    @given(alloc_scripts())
    @settings(max_examples=200, deadline=None)
    def test_invariants_hold_under_any_script(self, script):
        alloc = ExtentAllocator()
        live = []
        expected_bytes = 0
        for action, arg in script:
            if action == "alloc":
                ext = alloc.allocate(arg)
                live.append(ext)
                expected_bytes += arg
            else:
                ext = live.pop(arg)
                alloc.free(ext)
                expected_bytes -= ext.size
            alloc.check_invariants()
            assert alloc.live_bytes == expected_bytes
            assert alloc.high_water_bytes >= alloc.live_bytes

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_free_all_then_realloc_from_zero(self, sizes):
        alloc = ExtentAllocator()
        extents = [alloc.allocate(s) for s in sizes]
        for ext in extents:
            alloc.free(ext)
        assert alloc.live_bytes == 0
        assert alloc.frontier == 0  # fully retracted after freeing everything
        ext = alloc.allocate(1)
        assert ext.offset == 0
