"""Tests for the disk cost parameters."""

import pytest

from repro.storage.cost import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_SEEK_S,
    MEGABYTE,
    DiskParameters,
)


class TestDiskParameters:
    def test_defaults_match_table12(self):
        params = DiskParameters()
        assert params.seek_s == pytest.approx(0.014)
        assert params.bandwidth_bps == pytest.approx(10 * MEGABYTE)

    def test_transfer_time_is_linear(self):
        params = DiskParameters()
        one = params.transfer_time(MEGABYTE)
        assert params.transfer_time(5 * MEGABYTE) == pytest.approx(5 * one)

    def test_transfer_time_zero_bytes(self):
        assert DiskParameters().transfer_time(0) == 0.0

    def test_io_time_includes_seeks(self):
        params = DiskParameters(seek_s=0.01, bandwidth_bps=1_000_000)
        assert params.io_time(1_000_000, seeks=2) == pytest.approx(1.02)

    def test_io_time_zero_seeks(self):
        params = DiskParameters(seek_s=0.01, bandwidth_bps=1_000_000)
        assert params.io_time(500_000, seeks=0) == pytest.approx(0.5)

    def test_ten_mb_transfer_is_one_second(self):
        # Table 12: Trans = 10 MB/s, so 10 MB streams in 1 s.
        assert DiskParameters().transfer_time(10 * MEGABYTE) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seek_s": -0.1},
            {"bandwidth_bps": 0},
            {"bandwidth_bps": -5},
            {"capacity_bytes": 0},
            {"capacity_bytes": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiskParameters(**kwargs)

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters().transfer_time(-1)

    def test_negative_seeks_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters().io_time(10, seeks=-1)

    def test_defaults_exported(self):
        assert DEFAULT_SEEK_S == pytest.approx(0.014)
        assert DEFAULT_BANDWIDTH_BPS == 10 * MEGABYTE
