"""Property tests tying the trace-driven cache to the analytic model.

Satellite of the page-cache work: the analytic
:class:`~repro.storage.bufferpool.BufferPoolModel` and the trace-driven
:class:`~repro.storage.pagecache.PageCache` must agree where their domains
overlap — uniform-random touches over a fixed working set — while the
analytic formula itself must be monotone and respect its miss-rate floor.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.bufferpool import BufferPoolModel
from repro.storage.disk import SimulatedDisk
from repro.storage.pagecache import PageCache

PAGE = 64


class TestAnalyticProperties:
    @given(
        memory=st.floats(min_value=1.0, max_value=1e9),
        smaller=st.floats(min_value=0.0, max_value=1e9),
        delta=st.floats(min_value=0.0, max_value=1e9),
        floor=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_miss_rate_monotone_in_working_set(
        self, memory, smaller, delta, floor
    ):
        """A larger working set can never miss less."""
        pool = BufferPoolModel(memory_bytes=memory, min_miss_rate=floor)
        assert pool.miss_rate(smaller) <= pool.miss_rate(smaller + delta)

    @given(
        memory=st.floats(min_value=1.0, max_value=1e9),
        working_set=st.floats(min_value=0.0, max_value=1e12),
        floor=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_min_miss_rate_respected(self, memory, working_set, floor):
        """The configured floor bounds the miss rate from below, 1 from above."""
        pool = BufferPoolModel(memory_bytes=memory, min_miss_rate=floor)
        rate = pool.miss_rate(working_set)
        assert floor <= rate <= 1.0

    @given(
        memory=st.floats(min_value=1.0, max_value=1e9),
        working_set=st.floats(min_value=0.0, max_value=1e12),
        seeks=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_effective_seeks_never_exceed_nominal(
        self, memory, working_set, seeks
    ):
        pool = BufferPoolModel(memory_bytes=memory)
        assert 0.0 <= pool.effective_seeks(seeks, working_set) <= seeks


class TestLruConvergence:
    @settings(max_examples=25, deadline=None)
    @given(
        capacity_pages=st.integers(min_value=4, max_value=40),
        extra_pages=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_uniform_random_touches_converge_to_analytic_rate(
        self, capacity_pages, extra_pages, seed
    ):
        """LRU under uniform IRM touches matches ``1 - memory/working_set``.

        Once the cache is full, symmetry keeps every page of the working
        set resident with probability ``capacity/working_set``, so the
        steady-state miss rate is the analytic one.  We warm up for one
        full sweep, then measure over many touches and allow for sampling
        noise.
        """
        working_pages = capacity_pages + extra_pages
        cache = PageCache(capacity_pages * PAGE, page_size=PAGE)
        disk = SimulatedDisk(page_cache=cache)
        extent = disk.allocate(working_pages * PAGE)
        rng = random.Random(seed)

        for page in range(working_pages):  # warm-up sweep
            disk.read(extent, PAGE, offset=page * PAGE)
        before = cache.snapshot()
        touches = 4000
        for _ in range(touches):
            page = rng.randrange(working_pages)
            disk.read(extent, PAGE, offset=page * PAGE)
        delta = cache.snapshot() - before

        pool = BufferPoolModel(memory_bytes=capacity_pages * PAGE)
        expected = pool.miss_rate(working_pages * PAGE)
        # 4000 Bernoulli trials: 4 sigma is well under 0.04; allow 0.06.
        assert delta.miss_rate == pytest.approx(expected, abs=0.06)

    @settings(max_examples=20, deadline=None)
    @given(
        working_pages=st.integers(min_value=1, max_value=30),
        slack_pages=st.integers(min_value=0, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_fitting_working_set_stops_missing(
        self, working_pages, slack_pages, seed
    ):
        """A working set that fits misses only on the cold first touches.

        The analytic model says ``miss_rate == min_miss_rate`` when memory
        covers the working set; the LRU's analogue is that after one sweep
        every further touch hits.
        """
        capacity_pages = working_pages + slack_pages
        cache = PageCache(capacity_pages * PAGE, page_size=PAGE)
        disk = SimulatedDisk(page_cache=cache)
        extent = disk.allocate(working_pages * PAGE)
        rng = random.Random(seed)

        for page in range(working_pages):
            disk.read(extent, PAGE, offset=page * PAGE)
        before = cache.snapshot()
        for _ in range(500):
            page = rng.randrange(working_pages)
            disk.read(extent, PAGE, offset=page * PAGE)
        delta = cache.snapshot() - before
        assert delta.misses == 0
        assert delta.hit_rate == 1.0
