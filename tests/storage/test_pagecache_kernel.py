"""Span-arithmetic page-cache accounting vs the per-page reference.

`PageCache._touch` takes bulk fast paths (whole-span hit, whole-span
miss) when the vectorized kernels are on.  These tests drive two caches
through identical random traces — one with the kernels on, one off — and
require identical counters, identical LRU order, identical eviction
victims, and an intact secondary index at every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.kernels import vectorized
from repro.storage.extent import Extent
from repro.storage.pagecache import PageCache

PAGE = 64


def make_extents():
    # Fixed ids so both caches in a comparison see the same keys.
    return [
        Extent(offset=0, size=40 * PAGE, extent_id=1_000),
        Extent(offset=40 * PAGE, size=10 * PAGE, extent_id=1_001),
        Extent(offset=50 * PAGE, size=3 * PAGE + 7, extent_id=1_002),
    ]


touches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # extent index
        st.integers(min_value=0, max_value=45 * PAGE),  # offset
        st.integers(min_value=0, max_value=44 * PAGE),  # nbytes
        st.booleans(),  # is_read
    ),
    min_size=1,
    max_size=60,
)


def run_trace(trace, capacity_pages, enabled):
    extents = make_extents()
    cache = PageCache(capacity_pages * PAGE, PAGE)
    states = []
    with vectorized(enabled):
        for ext_i, offset, nbytes, is_read in trace:
            extent = extents[ext_i]
            if is_read:
                owed = cache.read_charges(extent, nbytes, 1.0, offset)
            else:
                owed = cache.write_charges(extent, nbytes, 1.0, offset)
            states.append(
                (
                    owed,
                    cache.snapshot(),
                    tuple(cache._pages),  # full LRU order
                    {k: frozenset(v) for k, v in cache._by_extent.items()},
                )
            )
    return states


@given(touches, st.integers(min_value=1, max_value=50))
@settings(max_examples=150, deadline=None)
def test_bulk_touch_matches_per_page_reference(trace, capacity_pages):
    assert run_trace(trace, capacity_pages, True) == run_trace(
        trace, capacity_pages, False
    )


def test_cold_sweep_larger_than_cache_matches_reference():
    # k > capacity: later admissions evict earlier pages of the same
    # span, which the arithmetic path cannot express — it must fall back.
    trace = [(0, 0, 40 * PAGE, True), (0, 0, 40 * PAGE, True)]
    assert run_trace(trace, 8, True) == run_trace(trace, 8, False)


def test_warm_sweep_skips_disk_charges():
    extent = Extent(offset=0, size=16 * PAGE, extent_id=2_000)
    cache = PageCache(32 * PAGE, PAGE)
    with vectorized(True):
        assert cache.read_charges(extent, 16 * PAGE, 1.0) == (1.0, 16 * PAGE)
        assert cache.read_charges(extent, 16 * PAGE, 1.0) == (0.0, 0)
        assert cache.hits == 16 and cache.misses == 16


def test_bulk_admit_counts_evictions_exactly():
    a = Extent(offset=0, size=8 * PAGE, extent_id=3_000)
    b = Extent(offset=8 * PAGE, size=8 * PAGE, extent_id=3_001)
    cache = PageCache(10 * PAGE, PAGE)
    with vectorized(True):
        cache.read_charges(a, 8 * PAGE, 1.0)
        cache.read_charges(b, 8 * PAGE, 1.0)
    # 16 admits into 10 slots: 6 LRU victims, all from extent a.
    assert cache.evictions == 6
    assert cache.resident_pages == 10
    assert sorted(cache._by_extent[3_000]) == [6, 7]
    assert sorted(cache._by_extent[3_001]) == list(range(8))


def test_invalidate_after_bulk_admit():
    extent = Extent(offset=0, size=8 * PAGE, extent_id=4_000)
    cache = PageCache(32 * PAGE, PAGE)
    with vectorized(True):
        cache.read_charges(extent, 8 * PAGE, 1.0)
        assert cache.invalidate_extent(extent) == 8
        assert cache.resident_pages == 0
        assert extent.extent_id not in cache._by_extent
