"""Tests for deterministic fault injection on the simulated disk."""

import pytest

from repro.errors import (
    DeviceFailure,
    OutOfSpaceError,
    SimulatedCrash,
    TransientIOError,
)
from repro.storage.cost import MEGABYTE, DiskParameters
from repro.storage.faults import (
    CrashPoint,
    FaultInjector,
    FaultyDisk,
    RetryPolicy,
)

PARAMS = DiskParameters(seek_s=0.01, bandwidth_bps=MEGABYTE)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.5, multiplier=3.0)
        assert policy.delay_before_retry(1) == pytest.approx(0.5)
        assert policy.delay_before_retry(2) == pytest.approx(1.5)
        assert policy.delay_before_retry(3) == pytest.approx(4.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_before_retry(0)


class TestCrashPoint:
    def test_exactly_one_field_required(self):
        with pytest.raises(ValueError):
            CrashPoint()
        with pytest.raises(ValueError):
            CrashPoint(after_ios=1, after_ops=1)
        with pytest.raises(ValueError):
            CrashPoint(after_ios=-1)


class TestTransients:
    def test_deterministic_for_a_seed(self):
        def run(seed):
            injector = FaultInjector(seed, transient_read_rate=0.3)
            outcomes = []
            for _ in range(50):
                try:
                    injector.before_io("read", 100)
                    outcomes.append("ok")
                except TransientIOError:
                    outcomes.append("fault")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_retry_succeeds_and_charges_backoff_to_clock(self):
        # Rate 1.0 for writes only: every write attempt faults, reads don't.
        injector = FaultInjector(0, transient_write_rate=1.0)
        disk = FaultyDisk(
            PARAMS,
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.5),
        )
        ext = disk.allocate(100)
        with pytest.raises(TransientIOError):
            disk.write(ext)
        # Two retries before escalation: 0.5 + 1.0 simulated seconds, and
        # no transfer time (the I/O never happened).
        assert disk.clock == pytest.approx(1.5)
        assert injector.stats.transients_injected == 3
        assert injector.stats.ios == 0
        # Reads are unaffected.
        disk.read(ext)
        assert injector.stats.ios == 1

    def test_transient_read_eventually_succeeds(self):
        injector = FaultInjector(3, transient_read_rate=0.5)
        disk = FaultyDisk(
            PARAMS,
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=10, base_delay_s=0.01),
        )
        ext = disk.allocate(1000)
        for _ in range(20):
            disk.read(ext)
        assert injector.stats.ios == 20
        assert injector.stats.transients_injected > 0


class TestDeviceFailure:
    def test_fails_permanently_after_threshold(self):
        disk = FaultyDisk(
            PARAMS, injector=FaultInjector(fail_device_after_ios=2)
        )
        ext = disk.allocate(100)
        disk.read(ext)
        disk.read(ext)
        with pytest.raises(DeviceFailure):
            disk.read(ext)
        assert disk.injector.device_failed
        # Dead stays dead.
        with pytest.raises(DeviceFailure):
            disk.write(ext)

    def test_fail_device_immediately(self):
        disk = FaultyDisk(PARAMS)
        ext = disk.allocate(100)
        disk.injector.fail_device()
        with pytest.raises(DeviceFailure):
            disk.read(ext)


class TestSpacePressure:
    def test_allocation_over_limit_rejected(self):
        disk = FaultyDisk(
            PARAMS, injector=FaultInjector(space_limit_bytes=1000)
        )
        disk.allocate(800)
        with pytest.raises(OutOfSpaceError):
            disk.allocate(300)
        # Under the limit still works.
        disk.allocate(200)


class TestCrashPoints:
    def test_io_crash_fires_after_nth_io(self):
        disk = FaultyDisk(
            PARAMS, injector=FaultInjector(crash=CrashPoint(after_ios=2))
        )
        ext = disk.allocate(100)
        disk.read(ext)
        disk.write(ext)
        before = disk.clock
        with pytest.raises(SimulatedCrash):
            disk.read(ext)
        # The crashed I/O charged no time.
        assert disk.clock == before
        assert disk.injector.stats.crashes_fired == 1

    def test_arm_crash_counts_from_arming(self):
        disk = FaultyDisk(PARAMS)
        ext = disk.allocate(100)
        disk.read(ext)
        disk.read(ext)
        disk.injector.arm_crash(CrashPoint(after_ios=1))
        disk.read(ext)  # first I/O since arming: fine
        with pytest.raises(SimulatedCrash):
            disk.read(ext)

    def test_disarm_cancels(self):
        disk = FaultyDisk(
            PARAMS, injector=FaultInjector(crash=CrashPoint(after_ios=0))
        )
        ext = disk.allocate(100)
        disk.injector.disarm()
        disk.read(ext)

    def test_op_crash_fires_at_op_boundary(self):
        injector = FaultInjector(crash=CrashPoint(after_ops=2))
        injector.before_op()
        injector.note_op_completed()
        injector.before_op()
        injector.note_op_completed()
        with pytest.raises(SimulatedCrash):
            injector.before_op()


class TestFaultFreeEquivalence:
    def test_default_faulty_disk_matches_simulated_disk(self):
        from repro.storage.disk import SimulatedDisk

        plain = SimulatedDisk(PARAMS)
        faulty = FaultyDisk(PARAMS)
        for disk in (plain, faulty):
            ext = disk.allocate(500_000)
            disk.read(ext)
            disk.write(ext, 100_000)
            disk.stream_read(200_000)
        assert faulty.clock == pytest.approx(plain.clock)
        assert faulty.live_bytes == plain.live_bytes
