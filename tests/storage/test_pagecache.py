"""Tests for the trace-driven LRU page cache and its disk integration."""

import pytest

from repro.storage.cost import DiskParameters
from repro.storage.disk import SimulatedDisk
from repro.storage.pagecache import DEFAULT_PAGE_SIZE, PageCache, PageCacheSnapshot

PAGE = 64


def make_disk(capacity_pages: int = 4, page_size: int = PAGE) -> SimulatedDisk:
    cache = PageCache(capacity_pages * page_size, page_size)
    return SimulatedDisk(page_cache=cache)


class TestConstruction:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PageCache(0)
        with pytest.raises(ValueError):
            PageCache(-1)

    def test_rejects_nonpositive_page_size(self):
        with pytest.raises(ValueError):
            PageCache(4096, page_size=0)

    def test_capacity_rounds_down_to_whole_pages(self):
        cache = PageCache(3 * PAGE + PAGE // 2, page_size=PAGE)
        assert cache.capacity_pages == 3
        assert cache.capacity_bytes == 3 * PAGE

    def test_tiny_capacity_keeps_one_page(self):
        cache = PageCache(1, page_size=PAGE)
        assert cache.capacity_pages == 1

    def test_default_page_size(self):
        assert PageCache(1 << 20).page_size == DEFAULT_PAGE_SIZE


class TestReadCaching:
    def test_second_read_is_free(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        first = disk.read(extent)
        assert first > 0
        assert disk.read(extent) == 0.0
        assert disk.page_cache.hits == 2
        assert disk.page_cache.misses == 2

    def test_partial_residency_pays_seek_and_missed_pages(self):
        disk = make_disk(capacity_pages=8)
        extent = disk.allocate(4 * PAGE)
        disk.read(extent, PAGE)  # warm page 0 only
        before = disk.stats.snapshot()
        disk.read(extent)  # pages 1-3 missing
        delta = disk.stats.snapshot() - before
        assert delta.seeks == 1
        assert delta.bytes_read == 3 * PAGE

    def test_missed_transfer_clipped_to_extent(self):
        disk = make_disk()
        extent = disk.allocate(PAGE // 2)  # smaller than one page
        before = disk.stats.snapshot()
        disk.read(extent)
        delta = disk.stats.snapshot() - before
        assert delta.bytes_read == PAGE // 2

    def test_offsets_map_to_distinct_pages(self):
        disk = make_disk()
        extent = disk.allocate(4 * PAGE)
        disk.read(extent, PAGE, offset=0)
        assert disk.read(extent, PAGE, offset=2 * PAGE) > 0  # different page
        assert disk.read(extent, PAGE, offset=2 * PAGE) == 0.0

    def test_out_of_range_read_rejected(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        with pytest.raises(ValueError):
            disk.read(extent, PAGE, offset=2 * PAGE)
        with pytest.raises(ValueError):
            disk.read(extent, PAGE, offset=-1)


class TestWriteCaching:
    def test_write_is_write_through(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.read(extent)  # make fully resident
        before = disk.stats.snapshot()
        disk.write(extent)
        delta = disk.stats.snapshot() - before
        assert delta.bytes_written == 2 * PAGE  # transfer always paid
        assert delta.seeks == 0  # seek absorbed by residency

    def test_cold_write_pays_seek(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        before = disk.stats.snapshot()
        disk.write(extent)
        delta = disk.stats.snapshot() - before
        assert delta.seeks == 1

    def test_write_installs_pages_for_later_reads(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.write(extent)
        assert disk.read(extent) == 0.0


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = PageCache(2 * PAGE, page_size=PAGE)
        disk = SimulatedDisk(page_cache=cache)
        a = disk.allocate(PAGE)
        b = disk.allocate(PAGE)
        c = disk.allocate(PAGE)
        disk.read(a)
        disk.read(b)
        disk.read(a)  # refresh a; b is now LRU
        disk.read(c)  # evicts b
        assert cache.evictions == 1
        assert cache.is_resident(a, 0)
        assert not cache.is_resident(b, 0)
        assert cache.is_resident(c, 0)

    def test_resident_pages_never_exceed_capacity(self):
        cache = PageCache(3 * PAGE, page_size=PAGE)
        disk = SimulatedDisk(page_cache=cache)
        for _ in range(5):
            disk.read(disk.allocate(2 * PAGE))
        assert cache.resident_pages <= cache.capacity_pages


class TestInvalidation:
    def test_free_invalidates_pages(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.read(extent)
        disk.free(extent)
        assert disk.page_cache.resident_pages == 0

    def test_recycled_offset_cannot_hit_stale_pages(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.read(extent)
        disk.free(extent)
        again = disk.allocate(2 * PAGE)
        assert again.offset == extent.offset  # allocator reuses the hole
        assert disk.read(again) > 0

    def test_reallocate_invalidates_old_extent(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.read(extent)
        disk.reallocate(extent, 4 * PAGE)
        assert disk.page_cache.resident_pages == 0

    def test_invalidate_is_not_an_eviction(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.read(extent)
        disk.free(extent)
        assert disk.page_cache.evictions == 0

    def test_clear_keeps_counters(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.read(extent)
        disk.page_cache.clear()
        assert disk.page_cache.resident_pages == 0
        assert disk.page_cache.misses == 2


class TestSnapshots:
    def test_snapshot_subtraction_windows_activity(self):
        disk = make_disk()
        extent = disk.allocate(2 * PAGE)
        disk.read(extent)
        before = disk.page_cache.snapshot()
        disk.read(extent)
        delta = disk.page_cache.snapshot() - before
        assert delta.hits == 2
        assert delta.misses == 0
        assert delta.hit_rate == 1.0

    def test_empty_snapshot_rates(self):
        snap = PageCacheSnapshot()
        assert snap.hit_rate == 0.0
        assert snap.miss_rate == 0.0
        assert snap.touches == 0

    def test_read_and_write_hits_split(self):
        disk = make_disk()
        extent = disk.allocate(PAGE)
        disk.read(extent)
        disk.read(extent)
        disk.write(extent, PAGE)
        snap = disk.page_cache.snapshot()
        assert snap.read_hits == 1
        assert snap.write_hits == 1


class TestEffectiveSeeks:
    def test_cache_disables_analytic_discount(self):
        from repro.storage.bufferpool import BufferPoolModel

        cache = PageCache(4 * PAGE, page_size=PAGE)
        disk = SimulatedDisk(
            buffer_pool=BufferPoolModel(memory_bytes=1 << 30),
            page_cache=cache,
        )
        # With the trace-driven cache attached, nominal seeks pass through
        # unscaled — the cache itself decides which touches are free.
        assert disk.effective_seeks(1.0, 100.0) == 1.0

    def test_cacheless_disk_unchanged(self):
        disk = SimulatedDisk()
        extent = disk.allocate(2 * PAGE)
        params = DiskParameters()
        assert disk.read(extent) == pytest.approx(
            params.io_time(2 * PAGE, seeks=1)
        )
        assert disk.read(extent) > 0  # no cache: every read pays
