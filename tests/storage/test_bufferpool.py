"""Tests for the buffer-pool (memory-pressure) model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.bufferpool import BufferPoolModel
from repro.storage.disk import SimulatedDisk


class TestMissRate:
    def test_fully_resident_working_set_never_misses(self):
        pool = BufferPoolModel(memory_bytes=1000)
        assert pool.miss_rate(500) == 0.0
        assert pool.miss_rate(1000) == 0.0

    def test_oversized_working_set_misses_proportionally(self):
        pool = BufferPoolModel(memory_bytes=100)
        assert pool.miss_rate(200) == pytest.approx(0.5)
        assert pool.miss_rate(400) == pytest.approx(0.75)

    def test_min_miss_rate_floor(self):
        pool = BufferPoolModel(memory_bytes=1000, min_miss_rate=0.1)
        assert pool.miss_rate(10) == 0.1
        assert pool.miss_rate(0) == 0.1

    def test_effective_seeks(self):
        pool = BufferPoolModel(memory_bytes=100)
        assert pool.effective_seeks(10, 400) == pytest.approx(7.5)
        assert pool.effective_seeks(10, 50) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPoolModel(memory_bytes=0)
        with pytest.raises(ValueError):
            BufferPoolModel(memory_bytes=10, min_miss_rate=1.5)
        pool = BufferPoolModel(memory_bytes=10)
        with pytest.raises(ValueError):
            pool.miss_rate(-1)
        with pytest.raises(ValueError):
            pool.effective_seeks(-1, 10)

    @given(st.floats(1, 1e9), st.floats(0, 1e9))
    def test_miss_rate_bounded(self, memory, working_set):
        pool = BufferPoolModel(memory_bytes=memory)
        assert 0.0 <= pool.miss_rate(working_set) <= 1.0

    @given(st.floats(1, 1e6))
    def test_miss_rate_monotone_in_working_set(self, memory):
        pool = BufferPoolModel(memory_bytes=memory)
        rates = [pool.miss_rate(ws) for ws in (memory, 2 * memory, 8 * memory)]
        assert rates == sorted(rates)


class TestDiskIntegration:
    def test_no_pool_means_nominal_seeks(self):
        disk = SimulatedDisk()
        assert disk.effective_seeks(3.0, 10_000) == 3.0
        assert disk.effective_seeks(3.0, None) == 3.0

    def test_pool_discounts_random_seeks(self):
        disk = SimulatedDisk(buffer_pool=BufferPoolModel(memory_bytes=100))
        assert disk.effective_seeks(2.0, 400) == pytest.approx(1.5)
        # Streaming callers (working set None) are unaffected.
        assert disk.effective_seeks(2.0, None) == 2.0

    def test_incremental_add_cheaper_when_cached(self):
        """The end-to-end effect: warm-cache updates skip their seeks."""
        from repro.index.config import IndexConfig
        from repro.index.constituent import ConstituentIndex
        from repro.index.entry import Entry

        def add_cost(pool):
            disk = SimulatedDisk(buffer_pool=pool)
            idx = ConstituentIndex.create_empty(disk, IndexConfig())
            idx.insert_postings(
                {f"v{i}": [Entry(i, 1)] for i in range(50)}, [1]
            )
            before = disk.clock
            idx.insert_postings(
                {f"v{i}": [Entry(100 + i, 2)] for i in range(50)}, [2]
            )
            return disk.clock - before

        cold = add_cost(None)
        warm = add_cost(BufferPoolModel(memory_bytes=10**9))
        assert warm < cold / 5  # seeks dominate this tiny workload

    def test_build_unaffected_by_pool(self):
        """Packed builds stream; the pool must not change their cost."""
        from repro.index.builder import build_packed_index
        from repro.index.config import IndexConfig
        from repro.index.entry import Entry

        grouped = {f"v{i}": [Entry(i, 1)] for i in range(50)}

        def build_cost(pool):
            disk = SimulatedDisk(buffer_pool=pool)
            build_packed_index(disk, IndexConfig(), grouped, [1])
            return disk.clock

        assert build_cost(None) == pytest.approx(
            build_cost(BufferPoolModel(memory_bytes=10))
        )
