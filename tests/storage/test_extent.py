"""Tests for extent handles."""

import pytest

from repro.errors import ExtentError
from repro.storage.extent import Extent


class TestExtent:
    def test_end(self):
        assert Extent(offset=100, size=40).end == 140

    def test_ids_are_unique(self):
        a, b = Extent(0, 10), Extent(0, 10)
        assert a.extent_id != b.extent_id

    def test_check_live_passes_when_live(self):
        Extent(0, 10).check_live()

    def test_check_live_raises_after_free(self):
        ext = Extent(0, 10)
        ext.live = False
        with pytest.raises(ExtentError):
            ext.check_live()

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((0, 10), (10, 10), False),  # adjacent, not overlapping
            ((0, 10), (5, 10), True),
            ((5, 10), (0, 10), True),
            ((0, 10), (0, 10), True),
            ((0, 10), (20, 5), False),
            ((3, 4), (0, 20), True),  # containment
        ],
    )
    def test_overlaps(self, a, b, expected):
        ea = Extent(offset=a[0], size=a[1])
        eb = Extent(offset=b[0], size=b[1])
        assert ea.overlaps(eb) is expected
        assert eb.overlaps(ea) is expected

    def test_adjacent(self):
        assert Extent(0, 10).adjacent_to(Extent(10, 5))
        assert Extent(10, 5).adjacent_to(Extent(0, 10))
        assert not Extent(0, 10).adjacent_to(Extent(11, 5))

    def test_zero_size_extent(self):
        ext = Extent(offset=7, size=0)
        assert ext.end == 7
        assert not ext.overlaps(Extent(0, 100))
