"""Tests for the clocked simulated disk."""

import pytest

from repro.storage.cost import MEGABYTE, DiskParameters
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def fast_disk() -> SimulatedDisk:
    """A disk with round numbers: 10 ms seek, 1 MB/s transfer."""
    return SimulatedDisk(DiskParameters(seek_s=0.01, bandwidth_bps=MEGABYTE))


class TestClock:
    def test_read_advances_clock(self, fast_disk):
        ext = fast_disk.allocate(MEGABYTE)
        seconds = fast_disk.read(ext)
        assert seconds == pytest.approx(1.01)
        assert fast_disk.clock == pytest.approx(1.01)

    def test_write_advances_clock(self, fast_disk):
        ext = fast_disk.allocate(500_000)
        fast_disk.write(ext)
        assert fast_disk.clock == pytest.approx(0.51)

    def test_partial_read(self, fast_disk):
        ext = fast_disk.allocate(MEGABYTE)
        assert fast_disk.read(ext, 100_000) == pytest.approx(0.11)

    def test_read_beyond_extent_rejected(self, fast_disk):
        ext = fast_disk.allocate(100)
        with pytest.raises(ValueError):
            fast_disk.read(ext, 101)

    def test_zero_seek_streaming(self, fast_disk):
        ext = fast_disk.allocate(MEGABYTE)
        assert fast_disk.read(ext, seeks=0) == pytest.approx(1.0)

    def test_allocation_and_free_cost_nothing(self, fast_disk):
        ext = fast_disk.allocate(MEGABYTE)
        fast_disk.free(ext)
        assert fast_disk.clock == 0.0

    def test_advance(self, fast_disk):
        fast_disk.advance(3.5)
        assert fast_disk.clock == pytest.approx(3.5)
        with pytest.raises(ValueError):
            fast_disk.advance(-1)

    def test_stream_read_and_write(self, fast_disk):
        fast_disk.stream_read(MEGABYTE)
        fast_disk.stream_write(MEGABYTE)
        assert fast_disk.clock == pytest.approx(2.02)
        snap = fast_disk.snapshot()
        assert snap.bytes_read == MEGABYTE
        assert snap.bytes_written == MEGABYTE
        assert snap.seeks == 2


class TestSpace:
    def test_reallocate_allocates_before_freeing(self, fast_disk):
        ext = fast_disk.allocate(100)
        new = fast_disk.reallocate(ext, 200)
        # Peak saw both extents alive at once.
        assert fast_disk.high_water_bytes == 300
        assert fast_disk.live_bytes == 200
        assert new.size == 200
        assert not ext.live

    def test_reset_high_water(self, fast_disk):
        ext = fast_disk.allocate(100)
        fast_disk.free(ext)
        fast_disk.reset_high_water()
        assert fast_disk.high_water_bytes == 0

    def test_io_on_freed_extent_rejected(self, fast_disk):
        from repro.errors import ExtentError

        ext = fast_disk.allocate(100)
        fast_disk.free(ext)
        with pytest.raises(ExtentError):
            fast_disk.read(ext)


class TestStats:
    def test_snapshot_subtraction_isolates_window(self, fast_disk):
        ext = fast_disk.allocate(MEGABYTE)
        fast_disk.read(ext)
        before = fast_disk.snapshot()
        fast_disk.write(ext, 200_000)
        delta = fast_disk.snapshot() - before
        assert delta.reads == 0
        assert delta.writes == 1
        assert delta.bytes_written == 200_000
        assert delta.bytes_total == 200_000
        assert delta.busy_seconds == pytest.approx(0.21)
