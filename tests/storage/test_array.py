"""Tests for the disk array and its placement policies."""

import pytest

from repro.storage.array import DiskArray, Placement
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultyDisk


class TestPlacement:
    def test_round_robin_assigns_in_arrival_order(self):
        placement = Placement(3)
        assert placement.device_index("I1") == 0
        assert placement.device_index("I2") == 1
        assert placement.device_index("I3") == 2
        assert placement.device_index("I4") == 0  # wraps
        assert placement.device_index("I2") == 1  # stable on re-ask

    def test_hash_is_arrival_order_independent(self):
        a = Placement(4, strategy="hash")
        b = Placement(4, strategy="hash")
        assert a.device_index("I2") == b.device_index("I2")
        b.device_index("I1")  # different arrival order
        assert a.device_index("I2") == b.device_index("I2")

    def test_pinned_overrides_with_round_robin_fallback(self):
        placement = Placement(3, strategy="pinned", pinned={"Temp": 2})
        assert placement.device_index("Temp") == 2
        assert placement.device_index("I1") == 0

    def test_pinned_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Placement(2, strategy="pinned", pinned={"I1": 5})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Placement(2, strategy="striped")

    def test_assignments_reports_placed_names(self):
        placement = Placement(2, pinned={"Temp": 1})
        placement.device_index("I1")
        assert placement.assignments() == {"I1": 0, "Temp": 1}


class TestDiskArray:
    def test_create_builds_independent_devices(self):
        array = DiskArray.create(3)
        assert len(array) == 3
        array.devices[0].write(array.devices[0].allocate(1000), 1000)
        assert array.devices[0].clock > 0
        assert array.devices[1].clock == 0

    def test_disk_for_follows_placement(self):
        array = DiskArray.create(2)
        assert array.disk_for("I1") is array.devices[0]
        assert array.disk_for("I2") is array.devices[1]
        assert array.disk_for("I3") is array.devices[0]

    def test_aggregates_sum_over_devices(self):
        array = DiskArray.create(2)
        for device in array.devices:
            device.write(device.allocate(500), 500)
        io = array.io_snapshot()
        assert io.bytes_written == 1000
        assert array.total_clock == pytest.approx(sum(array.clocks()))
        assert array.live_bytes == 1000

    def test_high_water_is_summed_and_resettable(self):
        array = DiskArray.create(2)
        e0 = array.devices[0].allocate(800)
        array.devices[0].write(e0, 800)
        array.devices[0].free(e0)
        assert array.high_water_bytes >= 800
        array.reset_high_water()
        assert array.high_water_bytes == 0

    def test_page_caches_are_per_device(self):
        array = DiskArray.create(2, page_cache_bytes=1 << 16)
        assert all(d.page_cache is not None for d in array.devices)
        assert array.devices[0].page_cache is not array.devices[1].page_cache
        snap = array.cache_snapshot()
        assert snap is not None and snap.hits == 0

    def test_cache_snapshot_none_without_caches(self):
        assert DiskArray.create(2).cache_snapshot() is None

    def test_device_factory_allows_faulty_members(self):
        array = DiskArray.create(
            2,
            device_factory=lambda i: FaultyDisk() if i == 0 else SimulatedDisk(),
        )
        assert isinstance(array.devices[0], FaultyDisk)
        assert not isinstance(array.devices[1], FaultyDisk)

    def test_placement_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DiskArray([SimulatedDisk()], Placement(2))

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            DiskArray([])

    def test_check_invariants_covers_all_devices(self):
        array = DiskArray.create(2)
        for device in array.devices:
            device.write(device.allocate(100), 100)
        array.check_invariants()
