"""Tests for the resilience bench: schema, config, fault injectors.

The scenarios themselves run real TCP fleets and are exercised by the
CI ``bench-resilience --quick --strict`` job; here the cheap invariants
are pinned — report validation catches every malformed shape, the quick
config genuinely shortens the bursts, and the fault-injecting fakes
behave as advertised.
"""

import asyncio
import copy

import pytest

from repro.errors import FrontendError, TransportError
from repro.serve.client import FrontendClient
from repro.bench.resilience import (
    DRR_LIGHT_SHED_BOUND,
    HEDGE_TAIL_BOUND,
    ExtraDelayBackend,
    FailingBackend,
    ResilienceBenchConfig,
    SCHEMA_VERSION,
    StallServer,
    TornFrameServer,
    quick_config,
    render_summary,
    validate_report,
)


def stub_report() -> dict:
    claim = {
        "hedge_cuts_tail": True,
        "retry_budget_bounds_amplification": True,
        "drr_bounds_heavy_tenant_damage": True,
        "zero_loss_rolling_restart": True,
        "chaos_all_pass": True,
        "pass": True,
    }
    return {
        "bench": "resilience",
        "schema_version": SCHEMA_VERSION,
        "machine_dependent": True,
        "workload": {
            "window": 8, "n_indexes": 4, "scheme": "wave", "n_shards": 4,
            "n_frontends": 3, "chaos_seeds": [7],
        },
        "scenarios": {
            "hedge_tail": {
                "pass": True, "slow_extra_ms": 80.0,
                "hedge_tail_ratio": 0.4,
                "hedged": {"p99_s": 0.02}, "unhedged": {"p99_s": 0.05},
            },
            "retry_budget": {
                "pass": True, "amplification": 1.2,
                "amplification_bound": 1.23,
            },
            "fair_queue": {
                "pass": True, "drr_light_shed_ratio": 0.0,
                "fifo_light_shed_ratio": 0.4,
            },
            "rolling_restart": {
                "pass": True, "lost_requests": 0, "offered": 300,
                "completed": 300, "restart": {"restarted": [0, 1, 2]},
            },
        },
        "chaos": [
            {"cell": "slow_frontend", "seed": 7, "pass": True},
            {"cell": "deadline_storm", "seed": 7, "pass": True},
        ],
        "headline": {
            "rolling_restart_lost_requests": 0.0,
            "hedge_tail_ratio": 0.4,
            "hedged_p99_s": 0.02,
            "unhedged_p99_s": 0.05,
            "retry_amplification": 1.2,
            "retry_amplification_bound": 1.23,
            "drr_light_shed_ratio": 0.0,
            "fifo_light_shed_ratio": 0.4,
            "chaos_cells_passed": 2,
            "chaos_cells_total": 2,
            "claim": claim,
        },
    }


class TestValidateReport:
    def test_stub_is_valid(self):
        validate_report(stub_report())

    @pytest.mark.parametrize(
        "key", ["bench", "workload", "scenarios", "chaos", "headline"]
    )
    def test_missing_top_level_key(self, key):
        report = stub_report()
        del report[key]
        with pytest.raises(ValueError, match=key):
            validate_report(report)

    def test_wrong_bench_name(self):
        report = stub_report()
        report["bench"] = "frontend"
        with pytest.raises(ValueError, match="bench"):
            validate_report(report)

    def test_machine_dependence_must_be_declared(self):
        # Wall-clock artifacts byte-compared across machines are how
        # flaky CI gates are born; the schema refuses the footgun.
        report = stub_report()
        report["machine_dependent"] = False
        with pytest.raises(ValueError, match="machine_dependent"):
            validate_report(report)

    @pytest.mark.parametrize(
        "scenario",
        ["hedge_tail", "retry_budget", "fair_queue", "rolling_restart"],
    )
    def test_missing_scenario(self, scenario):
        report = stub_report()
        del report["scenarios"][scenario]
        with pytest.raises(ValueError, match=scenario):
            validate_report(report)

    def test_scenario_without_verdict(self):
        report = stub_report()
        del report["scenarios"]["fair_queue"]["pass"]
        with pytest.raises(ValueError, match="pass"):
            validate_report(report)

    def test_empty_chaos_matrix(self):
        report = stub_report()
        report["chaos"] = []
        with pytest.raises(ValueError, match="chaos"):
            validate_report(report)

    def test_chaos_cell_missing_key(self):
        report = stub_report()
        del report["chaos"][0]["seed"]
        with pytest.raises(ValueError, match="seed"):
            validate_report(report)

    def test_missing_headline_key(self):
        report = stub_report()
        del report["headline"]["retry_amplification"]
        with pytest.raises(ValueError, match="retry_amplification"):
            validate_report(report)

    def test_negative_lost_requests(self):
        report = stub_report()
        report["headline"]["rolling_restart_lost_requests"] = -1.0
        with pytest.raises(ValueError, match="negative"):
            validate_report(report)

    def test_validation_does_not_mutate(self):
        report = stub_report()
        snapshot = copy.deepcopy(report)
        validate_report(report)
        assert report == snapshot


class TestRenderSummary:
    def test_summary_names_every_scenario(self):
        text = render_summary(stub_report())
        assert "Serving resilience" in text
        assert "hedge tail" in text
        assert "retry budget" in text
        assert "fair queue" in text
        assert "rolling restart" in text
        assert "0 lost" in text
        assert "2/2" in text
        assert "PASS" in text

    def test_summary_shows_the_bounds(self):
        text = render_summary(stub_report())
        assert f"bound {HEDGE_TAIL_BOUND}" in text
        assert f"{DRR_LIGHT_SHED_BOUND:.0%}" in text

    def test_failing_claim_renders_fail(self):
        report = stub_report()
        report["headline"]["claim"]["pass"] = False
        assert "FAIL" in render_summary(report)


class TestConfig:
    def test_needs_two_frontends(self):
        with pytest.raises(FrontendError, match="frontends"):
            ResilienceBenchConfig(n_frontends=1)

    def test_needs_chaos_seeds(self):
        with pytest.raises(FrontendError, match="chaos_seeds"):
            ResilienceBenchConfig(chaos_seeds=())

    def test_needs_positive_straggler_delay(self):
        with pytest.raises(FrontendError, match="slow_extra_ms"):
            ResilienceBenchConfig(slow_extra_ms=0.0)

    def test_quick_config_shortens_every_burst(self):
        full = ResilienceBenchConfig()
        quick = quick_config()
        assert quick.quick is True
        assert quick.tail_duration_s < full.tail_duration_s
        assert quick.budget_requests < full.budget_requests
        assert quick.fair_duration_s < full.fair_duration_s
        assert quick.restart_duration_s < full.restart_duration_s
        assert quick.chaos_duration_s < full.chaos_duration_s
        # Same scenario set, same claims: the smoke run samples the
        # full run, it does not change what is asserted.
        assert quick.n_frontends == full.n_frontends
        assert quick.chaos_seeds == full.chaos_seeds


class Inner:
    def __init__(self):
        self.probe_specs = []
        self.scan_specs = []

    def probe_many(self, specs):
        self.probe_specs.append(list(specs))
        return ["p"] * len(specs)

    def scan_many(self, specs):
        self.scan_specs.append(list(specs))
        return ["s"] * len(specs)


class TestFaultInjectors:
    def test_extra_delay_backend_passes_through(self):
        inner = Inner()
        delayed = ExtraDelayBackend(inner, extra_ms=1.0)
        assert delayed.probe_many([(1, 1, 2)]) == ["p"]
        assert delayed.scan_many([(1, 2)]) == ["s"]
        assert inner.probe_specs == [[(1, 1, 2)]]

    def test_failing_backend_fails_and_counts(self):
        failing = FailingBackend(Inner())
        with pytest.raises(RuntimeError):
            failing.probe_many([(1, 1, 2)])
        with pytest.raises(RuntimeError):
            failing.scan_many([(1, 2)])
        assert failing.calls == 2

    def test_stall_server_never_answers(self):
        async def scenario():
            stall = StallServer()
            port = await stall.start()
            client = await FrontendClient().connect("127.0.0.1", port)
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(client.ping(), timeout=0.2)
            finally:
                await client.close()
                await stall.close()

        asyncio.run(scenario())

    def test_torn_frame_server_surfaces_transport_error(self):
        async def scenario():
            torn = TornFrameServer()
            port = await torn.start()
            client = await FrontendClient().connect("127.0.0.1", port)
            try:
                with pytest.raises(TransportError):
                    await client.probe(1, 1, 2)
            finally:
                await client.close()
                await torn.close()

        asyncio.run(scenario())
