"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestSchemes:
    def test_lists_all_six(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in ("DEL", "REINDEX", "REINDEX+", "REINDEX++", "WATA*", "RATA*"):
            assert name in out


class TestTrace:
    def test_trace_reindex(self, capsys):
        assert main(["trace", "REINDEX", "-w", "10", "-n", "2", "-d", "12"]) == 0
        out = capsys.readouterr().out
        assert "I1 <- BuildIndex({2, 3, 4, 5, 11})" in out
        assert "{d3, d4, d5, d11, d12}" in out

    def test_default_horizon(self, capsys):
        assert main(["trace", "DEL", "-w", "5", "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "11" in out  # window + 6

    def test_unknown_scheme_fails_cleanly(self, capsys):
        assert main(["trace", "NOPE"]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestFigure:
    def test_fig11(self, capsys):
        assert main(["figure", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "index-size ratio" in out
        assert "n=4" in out

    def test_fig4(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "REINDEX" in out and "WATA*" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestAdvise:
    def test_wse_recommends_del_n1(self, capsys):
        assert main(["advise", "--scenario", "WSE", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "DEL" in out
        assert "n=1" in out

    def test_tpcd_legacy_recommends_wata(self, capsys):
        assert (
            main(
                [
                    "advise",
                    "--scenario",
                    "TPC-D",
                    "--no-packed-shadow",
                    "--candidates",
                    "1",
                    "2",
                    "10",
                    "--top",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "WATA*" in out

    def test_hard_window_filter(self, capsys):
        assert (
            main(
                [
                    "advise",
                    "--scenario",
                    "TPC-D",
                    "--no-packed-shadow",
                    "--hard-window",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "WATA*" not in out


class TestCalibrate:
    def test_reports_constants(self, capsys):
        assert main(["calibrate", "--scale-factor", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Build =" in out
        assert "Add/Build" in out

    def test_with_memory_pool(self, capsys):
        assert (
            main(
                [
                    "calibrate",
                    "--cluster-days",
                    "2",
                    "--memory-mb",
                    "100",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "100.0 MB pool" in out


class TestLatency:
    def test_in_place_reports_blocking(self, capsys):
        assert main(["latency", "DEL", "--queries", "2000"]) == 0
        out = capsys.readouterr().out
        assert "blocked by maintenance" in out
        assert "0.0%" not in out.split("blocked")[-1]

    def test_shadow_reports_no_blocking(self, capsys):
        assert (
            main(
                [
                    "latency",
                    "DEL",
                    "--technique",
                    "simple_shadow",
                    "--queries",
                    "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0.0%" in out

    def test_unknown_scheme(self, capsys):
        assert main(["latency", "NOPE"]) == 2

    def test_size_aware_scheme_not_traceable(self, capsys):
        assert main(["trace", "WATA(size)"]) == 2
        assert "extra configuration" in capsys.readouterr().err


class TestSensitivity:
    def test_reports_dominant_parameters(self, capsys):
        assert main(["sensitivity", "REINDEX", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "dominant:" in out
        assert "build" in out

    def test_unknown_scheme(self):
        assert main(["sensitivity", "NOPE"]) == 2


class TestCrashTest:
    def test_small_matrix_passes(self, capsys):
        assert main([
            "crash-test", "DEL",
            "-w", "5", "-n", "2", "--cycles", "1", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "crash matrix" in out
        assert "PASS" in out
        assert "DEL" in out

    def test_verbose_lists_cells(self, capsys):
        assert main([
            "crash-test", "DEL",
            "-w", "5", "-n", "2", "--cycles", "1", "--verbose",
        ]) == 0
        assert "after op 0" in capsys.readouterr().out

    def test_unknown_scheme(self, capsys):
        assert main(["crash-test", "NOPE"]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestBenchServing:
    def test_quick_run_writes_valid_report(self, capsys, tmp_path):
        import json

        from repro.bench.serving import validate_report

        out_path = tmp_path / "BENCH_serving.json"
        assert main(["bench-serving", "--quick", "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        validate_report(report)
        assert report["bench"] == "serving"
        stdout = capsys.readouterr().out
        assert "batch" in stdout
        assert str(out_path) in stdout

    def test_bad_batch_sizes_rejected(self, capsys, tmp_path):
        code = main(
            [
                "bench-serving", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--batch-sizes", "0",
            ]
        )
        assert code == 2
        assert "batch" in capsys.readouterr().err.lower()

    def test_wallclock_and_profile_flags(self, capsys, tmp_path):
        import json
        import pstats

        out_path = tmp_path / "BENCH_serving.json"
        pstats_path = tmp_path / "probe.pstats"
        code = main(
            [
                "bench-serving", "--quick",
                "--out", str(out_path),
                "--wallclock",
                "--profile", str(pstats_path),
            ]
        )
        assert code == 0
        report = json.loads(out_path.read_text())
        wallclock = report["wallclock"]
        for section, count_key in (
            ("probe_replay", "probes"),
            ("build", "docs"),
            ("codec", "entries"),
        ):
            stats = wallclock[section]
            assert stats[count_key] > 0
            for key, value in stats.items():
                if key.endswith("_seconds") or key.endswith("_per_s"):
                    assert value >= 0, (section, key)
        # The profile artifact must be a loadable pstats dump that
        # actually covers the replay.
        stats = pstats.Stats(str(pstats_path))
        assert stats.total_calls > 0
        stdout = capsys.readouterr().out
        assert "wall-clock" in stdout
        assert str(pstats_path) in stdout

    def test_default_artifact_has_no_wallclock_section(self, tmp_path):
        import json

        out_path = tmp_path / "BENCH_serving.json"
        assert main(["bench-serving", "--quick", "--out", str(out_path)]) == 0
        assert "wallclock" not in json.loads(out_path.read_text())


class TestBenchOverlap:
    def test_quick_run_writes_valid_report(self, capsys, tmp_path):
        import json

        from repro.bench.overlap import validate_report

        out_path = tmp_path / "BENCH_overlap.json"
        assert main(["bench-overlap", "--quick", "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        validate_report(report)
        assert report["bench"] == "overlap"
        stdout = capsys.readouterr().out
        assert "makespan" in stdout
        assert str(out_path) in stdout

    def test_unknown_scheme_rejected(self, capsys, tmp_path):
        code = main(
            [
                "bench-overlap", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--schemes", "NOPE",
            ]
        )
        assert code == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_bad_devices_rejected(self, capsys, tmp_path):
        code = main(
            [
                "bench-overlap", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--devices", "1",
            ]
        )
        assert code == 2
        assert "devices" in capsys.readouterr().err


class TestBenchCluster:
    def test_quick_run_writes_valid_report(self, capsys, tmp_path):
        import json

        from repro.bench.cluster import validate_report

        out_path = tmp_path / "BENCH_cluster.json"
        assert main(["bench-cluster", "--quick", "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        validate_report(report)
        assert report["bench"] == "cluster"
        stdout = capsys.readouterr().out
        assert "throughput scaling" in stdout
        assert str(out_path) in stdout

    def test_unknown_scheme_rejected(self, capsys, tmp_path):
        code = main(
            [
                "bench-cluster", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--scheme", "NOPE",
            ]
        )
        assert code == 2
        assert "NOPE" in capsys.readouterr().err

    def test_missing_baseline_shard_count_rejected(self, capsys, tmp_path):
        code = main(
            [
                "bench-cluster", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--shards", "2", "4",
            ]
        )
        assert code == 2
        assert "shard" in capsys.readouterr().err.lower()


class TestChaosSoak:
    def test_quick_strict_run_writes_valid_report(self, capsys, tmp_path):
        import json

        from repro.bench.chaos import validate_report

        out_path = tmp_path / "BENCH_chaos.json"
        assert (
            main(["chaos-soak", "--quick", "--strict", "--out", str(out_path)])
            == 0
        )
        report = json.loads(out_path.read_text())
        validate_report(report)
        assert report["bench"] == "chaos"
        assert report["headline"]["all_invariants_pass"] is True
        stdout = capsys.readouterr().out
        assert "recovery" in stdout
        assert str(out_path) in stdout

    def test_unknown_kill_point_rejected(self, capsys, tmp_path):
        code = main(
            [
                "chaos-soak", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--kill-points", "transition",
                "--replication", "1",
            ]
        )
        assert code == 2
        assert "replication" in capsys.readouterr().err


class TestBenchCheck:
    @staticmethod
    def _reports(tmp_path, speedup=4.0):
        import json

        serving = tmp_path / "BENCH_serving.json"
        serving.write_text(json.dumps({
            "bench": "serving",
            "speedups": {"batch256_cached_vs_unbatched_uncached": speedup},
        }))
        return serving

    def test_update_then_pass(self, capsys, tmp_path):
        serving = self._reports(tmp_path)
        baseline = tmp_path / "BENCH_baseline.json"
        assert main([
            "bench-check", str(serving),
            "--baseline", str(baseline), "--update",
        ]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main([
            "bench-check", str(serving), "--baseline", str(baseline),
        ]) == 0
        assert "gate ok" in capsys.readouterr().out

    def test_regression_fails_the_gate(self, capsys, tmp_path):
        baseline_src = self._reports(tmp_path, speedup=4.0)
        baseline = tmp_path / "BENCH_baseline.json"
        main(["bench-check", str(baseline_src),
              "--baseline", str(baseline), "--update"])
        capsys.readouterr()
        regressed = self._reports(tmp_path, speedup=1.0)
        assert main([
            "bench-check", str(regressed), "--baseline", str(baseline),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_fails_cleanly(self, capsys, tmp_path):
        serving = self._reports(tmp_path)
        code = main([
            "bench-check", str(serving),
            "--baseline", str(tmp_path / "nope.json"),
        ])
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestGlobalSeed:
    def test_global_seed_reaches_subcommand(self, capsys):
        assert main([
            "--seed", "3",
            "crash-test", "DEL", "-w", "5", "-n", "2", "--cycles", "1",
        ]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_subcommand_seed_wins_over_global(self, capsys):
        # Both spellings must run; the per-command flag takes precedence,
        # so this is the same matrix as --seed 3 in TestCrashTest.
        assert main([
            "--seed", "9",
            "crash-test", "DEL",
            "-w", "5", "-n", "2", "--cycles", "1", "--seed", "3",
        ]) == 0
        assert "PASS" in capsys.readouterr().out


class TestCrashTestRebalance:
    def test_rebalance_rows_included_by_default(self, capsys):
        assert main([
            "crash-test", "DEL",
            "-w", "5", "-n", "2", "--cycles", "1", "--seed", "3",
        ]) == 0
        assert "REBALANCE" in capsys.readouterr().out

    def test_no_rebalance_flag_drops_the_rows(self, capsys):
        assert main([
            "crash-test", "DEL",
            "-w", "5", "-n", "2", "--cycles", "1", "--seed", "3",
            "--no-rebalance",
        ]) == 0
        out = capsys.readouterr().out
        assert "REBALANCE" not in out
        assert "PASS" in out


class TestBenchElastic:
    def test_quick_run_writes_valid_report(self, capsys, tmp_path):
        import json

        from repro.bench.elastic import validate_report

        out_path = tmp_path / "BENCH_elastic.json"
        assert main([
            "bench-elastic", "--quick", "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        validate_report(report)
        assert report["bench"] == "elastic"
        stdout = capsys.readouterr().out
        assert "recovery" in stdout
        assert str(out_path) in stdout

    def test_strict_quick_run_passes(self, tmp_path):
        out_path = tmp_path / "BENCH_elastic.json"
        assert main([
            "bench-elastic", "--quick", "--strict",
            "--out", str(out_path),
        ]) == 0

    def test_unknown_scheme_fails_cleanly(self, capsys, tmp_path):
        assert main([
            "bench-elastic", "--quick", "--scheme", "NOPE",
            "--out", str(tmp_path / "x.json"),
        ]) == 2
        assert capsys.readouterr().err


class TestTopologyChaos:
    def test_quick_run_writes_valid_report(self, capsys, tmp_path):
        import json

        from repro.bench.topology_chaos import validate_report

        out_path = tmp_path / "BENCH_topology_chaos.json"
        assert main([
            "topology-chaos", "--quick", "--strict",
            "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        validate_report(report)
        assert report["bench"] == "topology_chaos"
        assert report["headline"]["pass"] is True
        stdout = capsys.readouterr().out
        assert "cells" in stdout
        assert str(out_path) in stdout

    def test_fault_and_kind_filters(self, tmp_path):
        import json

        out_path = tmp_path / "BENCH_topology_chaos.json"
        assert main([
            "topology-chaos", "--quick",
            "--kinds", "merge", "--faults", "crash",
            "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        assert set(report["steps"]) == {"merge"}
        assert {c["fault"] for c in report["cells"]} == {"crash"}
