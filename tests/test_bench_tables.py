"""Tests for the benchmark-harness rendering helpers."""

from pathlib import Path

from repro.bench.tables import emit, render_curves, render_rows


class TestRenderCurves:
    def test_alignment_and_holes(self):
        text = render_curves(
            "Title",
            "n",
            [1, 2, 3],
            {"A": [1000.0, 2000.0, None], "B": [None, 50.0, 60.0]},
            unit="s",
        )
        lines = text.splitlines()
        assert lines[0] == "Title  [s]"
        assert "1,000" in text
        assert "-" in lines[3]  # A's hole at n=3
        # All rows equally wide.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header separator may differ

    def test_scaling(self):
        text = render_curves(
            "T", "x", [1], {"A": [5_000_000.0]}, scale=1_000_000
        )
        assert "5" in text and "5,000,000" not in text

    def test_custom_format(self):
        text = render_curves(
            "T", "x", [1], {"A": [0.1234]}, fmt="{:.2f}"
        )
        assert "0.12" in text


class TestRenderRows:
    def test_mixed_types(self):
        text = render_rows(
            "T",
            ["name", "value"],
            [["a", 1.5], ["b", None], ["c", "raw"]],
        )
        assert "1.5" in text
        assert "-" in text
        assert "raw" in text

    def test_header_separator(self):
        text = render_rows("T", ["x"], [[1]])
        lines = text.splitlines()
        assert set(lines[2]) == {"-"}


class TestEmit:
    def test_writes_artifact(self, tmp_path: Path, capsys):
        emit(tmp_path, "sample", "hello table")
        assert (tmp_path / "sample.txt").read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out

    def test_creates_directory(self, tmp_path: Path):
        nested = tmp_path / "deep" / "out"
        emit(nested, "x", "y")
        assert (nested / "x.txt").exists()
