"""Tests for the cluster benchmark and its report schema."""

import pytest

from repro.bench.cluster import (
    ClusterBenchConfig,
    quick_config,
    render_summary,
    run_cluster_bench,
    validate_report,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_cluster_bench(quick_config())


class TestConfig:
    def test_defaults_validate(self):
        config = ClusterBenchConfig()
        assert config.last_day == config.window + config.transitions

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            ClusterBenchConfig(scheme="NOPE")

    def test_missing_single_shard_baseline_rejected(self):
        with pytest.raises(ValueError):
            ClusterBenchConfig(shard_counts=(2, 4))

    def test_missing_multi_shard_point_rejected(self):
        with pytest.raises(ValueError):
            ClusterBenchConfig(shard_counts=(1,))

    def test_quick_is_marked(self):
        assert quick_config().quick is True


class TestReport:
    def test_schema_validates(self, quick_report):
        validate_report(quick_report)
        assert quick_report["bench"] == "cluster"
        # One lockstep run per shard count plus staggered at k_max.
        assert len(quick_report["runs"]) == len(
            quick_report["cluster"]["shard_counts"]
        ) + 1

    def test_acceptance_throughput_scales_with_shards(self, quick_report):
        # The committed perf claim: k shards on k devices beat one index.
        assert quick_report["headline"]["throughput_scaling"] > 1.0

    def test_acceptance_staggered_beats_lockstep_p95(self, quick_report):
        # The committed perf claim: bounding concurrent transitions cuts
        # the during-transition tail against the all-at-once schedule.
        assert quick_report["headline"]["staggered_p95_improved"] is True
        assert quick_report["headline"]["staggered_p95_ratio"] < 1.0

    def test_every_run_serves_the_same_stream(self, quick_report):
        queries = {entry["queries"] for entry in quick_report["runs"]}
        assert len(queries) == 1
        assert all(
            entry["failovers"] == 0 and entry["queries_degraded"] == 0
            for entry in quick_report["runs"]
        )

    def test_validate_rejects_missing_keys(self, quick_report):
        broken = dict(quick_report)
        del broken["headline"]
        with pytest.raises(ValueError):
            validate_report(broken)

    def test_validate_rejects_empty_runs(self, quick_report):
        broken = dict(quick_report)
        broken["runs"] = []
        with pytest.raises(ValueError):
            validate_report(broken)

    def test_write_and_summary(self, quick_report, tmp_path):
        path = write_report(quick_report, tmp_path / "BENCH_cluster.json")
        assert path.exists()
        text = render_summary(quick_report)
        assert "staggered" in text
        assert "throughput scaling" in text
