"""Seed-plumbing regression tests: same seed, byte-identical artifact.

Every artifact-writing subcommand resolves its RNG seed through the one
``_resolve_seed`` path (per-command ``--seed``, then the global flag,
then :data:`repro.cli.DEFAULT_SEED`).  These tests pin the contract that
matters downstream: two runs with the same seed produce *byte-identical*
JSON artifacts, and the global and per-command spellings of the same
seed are interchangeable.  A subcommand that grows an unseeded RNG (or
stamps wall-clock time into its report) breaks here, not in CI archaeology.
"""

import pytest

from repro.cli import main

#: (subcommand, extra args) for every artifact-writing bench command.
BENCH_COMMANDS = (
    ("bench-serving", ()),
    ("bench-overlap", ("--transitions", "3", "--schemes", "REINDEX")),
    ("bench-cluster", ()),
)


def _run(command, extra, out_path, seed_args):
    argv = [*seed_args[:2], command, "--quick", "--out", str(out_path),
            *extra, *seed_args[2:]]
    assert main(argv) == 0
    return out_path.read_bytes()


@pytest.mark.parametrize("command,extra", BENCH_COMMANDS)
class TestSeedDeterminism:
    def test_same_seed_same_bytes(self, command, extra, tmp_path, capsys):
        first = _run(command, extra, tmp_path / "a.json",
                     ("--seed", "11"))
        second = _run(command, extra, tmp_path / "b.json",
                      ("--seed", "11"))
        capsys.readouterr()
        assert first == second

    def test_global_seed_equals_per_command_seed(
        self, command, extra, tmp_path, capsys
    ):
        # Global spelling: repro --seed 11 bench-X ...
        via_global = _run(command, extra, tmp_path / "g.json",
                          ("--seed", "11"))
        # Per-command spelling: repro bench-X ... --seed 11 (with a
        # decoy global seed that must lose to the per-command flag).
        via_command = _run(command, extra, tmp_path / "c.json",
                           ("--seed", "99", "--seed", "11"))
        capsys.readouterr()
        assert via_global == via_command

    def test_different_seed_different_bytes(
        self, command, extra, tmp_path, capsys
    ):
        base = _run(command, extra, tmp_path / "a.json", ("--seed", "11"))
        other = _run(command, extra, tmp_path / "b.json", ("--seed", "12"))
        capsys.readouterr()
        assert base != other
