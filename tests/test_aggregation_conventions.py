"""Empty/short-input conventions for the report aggregations.

Pinned convention (see DESIGN.md): aggregations over an empty sample
return **0.0 for rates and totals** and **None for ratios** — never a
ZeroDivisionError, never a silent ``None`` where a number is promised.
These tests exercise each aggregation site at its empty boundary.
"""

import pytest

from repro.bench import serving
from repro.bench.chaos import ChaosSoakConfig
from repro.bench.elastic import _baseline_qps
from repro.core.executor import PhaseSeconds
from repro.sim.metrics import DayMetrics, SimulationResult


def day_metrics(day, peak_bytes=0, length_days=0):
    return DayMetrics(
        day=day,
        seconds=PhaseSeconds(),
        query_seconds=1.0,
        steady_bytes=0,
        constituent_bytes=0,
        peak_bytes=peak_bytes,
        length_days=length_days,
        covered_days=frozenset(),
    )


class TestSimulationResultEmpty:
    def make(self, days=()):
        return SimulationResult(
            window=7,
            n_indexes=2,
            scheme_name="DEL",
            technique="IN_PLACE",
            days=list(days),
        )

    def test_maxima_default_to_zero_on_empty_run(self):
        result = self.make()
        assert result.max_peak_bytes() == 0
        assert result.max_length_days() == 0

    def test_averages_default_to_zero_on_empty_run(self):
        result = self.make()
        assert result.avg_total_work_seconds() == 0.0
        assert result.avg_peak_bytes() == 0.0

    def test_start_day_alone_still_counts_for_maxima(self):
        # steady_days() drops day 0, but the whole-run maxima must not.
        result = self.make([day_metrics(0, peak_bytes=5, length_days=3)])
        assert result.max_peak_bytes() == 5
        assert result.max_length_days() == 3
        assert result.avg_peak_bytes() == 0.0  # no steady days yet


class TestElasticBaseline:
    def test_no_baseline_days_is_zero_rate(self):
        # Spike on the first post-warmup day: nothing to average over.
        assert _baseline_qps([], window=7, spike_day=8) == 0.0
        timeline = [{"day": 8, "qps": 50.0}]
        assert _baseline_qps(timeline, window=7, spike_day=8) == 0.0

    def test_baseline_is_mean_of_post_warmup_pre_spike_days(self):
        timeline = [
            {"day": 7, "qps": 999.0},  # warmup: excluded
            {"day": 8, "qps": 10.0},
            {"day": 9, "qps": 20.0},
            {"day": 10, "qps": 999.0},  # spike day: excluded
        ]
        assert _baseline_qps(timeline, window=7, spike_day=10) == 15.0


class TestChaosSeeds:
    def test_empty_seed_tuple_is_rejected_up_front(self):
        # The soak's makespan aggregations use explicit empty defaults,
        # but an empty soak is a configuration error, not a zero result.
        with pytest.raises(ValueError, match="seed"):
            ChaosSoakConfig(seeds=())


class TestServingRender:
    def test_none_speedups_render_as_na(self):
        # Ratio convention: an object path too fast to time yields
        # speedup None, which must render as "n/a", not crash or claim 0x.
        wallclock = {
            "probe_replay": {
                "vectorized_probes_per_s": 1000.0,
                "object_probes_per_s": 0.0,
                "speedup": None,
            },
            "build": {
                "vectorized_docs_per_s": 10.0,
                "object_docs_per_s": 0.0,
                "speedup": None,
            },
            "codec": {
                "batch_encode_entries_per_s": 5.0,
                "object_encode_entries_per_s": 0.0,
                "encode_speedup": None,
                "decode_speedup": 2.0,
            },
        }
        text = serving.render_wallclock(wallclock)
        assert text.count("n/a") == 3
        assert "2.0x" in text

    def test_missing_sections_are_skipped(self):
        text = serving.render_wallclock({})
        assert text.splitlines() == [
            "wall-clock (vectorized kernels vs object path):"
        ]
