"""Tests for the Kleinberg-style WATA extensions (offline + known-horizon)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemeError
from repro.extensions.kleinberg import (
    KnownHorizonOnlineWata,
    brute_force_optimal_plan,
    offline_optimal_plan,
    plan_cost,
    plan_feasible,
    segment_peak_cost,
    theoretical_max_length,
    wata_star_competitive_check,
)


class TestPlanCost:
    def test_single_segment_uniform(self):
        # One segment over 6 days, W = 3: held grows to all 6 days.
        assert plan_cost([6], [1.0] * 6, 3) == pytest.approx(6.0)

    def test_two_segments(self):
        # Split 3+3 with W = 3: second segment's peak spans days 1..6? No —
        # once segment 1 fully expires (day 6 sees oldest live 4), held is 4..6.
        cost = plan_cost([3, 6], [1.0] * 6, 3)
        assert cost == pytest.approx(5.0)  # worst at day 5: days 1..5 held

    def test_closed_form_matches_daywise(self):
        rng = random.Random(1)
        weights = [rng.uniform(0.2, 3.0) for _ in range(15)]
        boundaries = [4, 9, 15]
        prefix = [0.0]
        for w in weights:
            prefix.append(prefix[-1] + w)
        window = 5
        closed = max(
            segment_peak_cost(prefix, a, b, window)
            for a, b in [(1, 4), (5, 9), (10, 15)]
        )
        assert plan_cost(boundaries, weights, window) == pytest.approx(closed)

    def test_bad_boundaries_rejected(self):
        with pytest.raises(SchemeError):
            plan_cost([3], [1.0] * 6, 3)  # does not end at last day


class TestFeasibility:
    def test_wata_star_spacing_feasible(self):
        # Boundaries every W-1 days satisfy the n = 2 constraint exactly.
        assert plan_feasible([6, 12, 18], window=7, n_indexes=2)

    def test_too_tight_for_n2(self):
        assert not plan_feasible([2, 4, 6], window=7, n_indexes=2)

    def test_more_indexes_relax_constraint(self):
        assert plan_feasible([2, 4, 6, 8], window=7, n_indexes=4)

    def test_n1_never_feasible(self):
        assert not plan_feasible([5], window=3, n_indexes=1)


class TestOfflineOptimal:
    @given(
        d=st.integers(6, 12),
        w=st.integers(2, 8),
        n=st.integers(2, 4),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, d, w, n, seed):
        if w > d:
            w = d
        rng = random.Random(seed)
        weights = [rng.uniform(0.5, 2.0) for _ in range(d)]
        bf = brute_force_optimal_plan(weights, w, n)
        opt = offline_optimal_plan(weights, w, n)
        assert opt.max_size == pytest.approx(bf.max_size)
        assert plan_feasible(list(opt.boundaries), w, n)

    def test_optimal_never_worse_than_wata_star(self):
        rng = random.Random(5)
        weights = [rng.uniform(0.5, 2.0) for _ in range(60)]
        opt = offline_optimal_plan(weights, 7, 2)
        lazy, _eager = wata_star_competitive_check(weights, 7, 2)
        assert opt.max_size <= lazy + 1e-9

    def test_segments_property(self):
        weights = [1.0] * 12
        opt = offline_optimal_plan(weights, 4, 2)
        segments = opt.segments
        assert segments[0][0] == 1
        assert segments[-1][1] == 12
        for (a1, b1), (a2, _b2) in zip(segments, segments[1:]):
            assert a2 == b1 + 1

    def test_guard_against_blowup(self):
        with pytest.raises(SchemeError):
            offline_optimal_plan([1.0] * 500, 7, 6)

    def test_window_longer_than_trace_rejected(self):
        with pytest.raises(SchemeError):
            offline_optimal_plan([1.0] * 3, 7, 2)


class TestKnownHorizonOnline:
    def test_respects_guaranteed_bound(self):
        rng = random.Random(9)
        weights = [rng.uniform(0.1, 2.0) for _ in range(100)]
        window, n = 7, 3
        m = max(sum(weights[i : i + window]) for i in range(100 - window + 1))
        online = KnownHorizonOnlineWata(window, n, m)
        for w in weights:
            online.feed(w)
        plan = online.finish()
        assert plan.max_size <= online.competitive_bound() + 1e-9

    def test_beats_wata_star_guarantee(self):
        """n/(n-1) < 2 for n >= 3: knowing M buys a better ratio."""
        online = KnownHorizonOnlineWata(7, 4, 10.0)
        assert online.competitive_bound() < 2 * 10.0

    def test_validation(self):
        with pytest.raises(SchemeError):
            KnownHorizonOnlineWata(7, 1, 10.0)
        with pytest.raises(SchemeError):
            KnownHorizonOnlineWata(7, 2, 0.0)
        online = KnownHorizonOnlineWata(7, 2, 10.0)
        with pytest.raises(SchemeError):
            online.feed(-1.0)
        with pytest.raises(SchemeError):
            online.finish()  # nothing fed


class TestTheorem2Helper:
    @pytest.mark.parametrize(
        "w,n,expected", [(10, 4, 12), (7, 2, 12), (7, 7, 7), (35, 5, 43)]
    )
    def test_values(self, w, n, expected):
        assert theoretical_max_length(w, n) == expected

    def test_needs_two_indexes(self):
        with pytest.raises(SchemeError):
            theoretical_max_length(10, 1)
