"""Tests for the Section-8 multi-disk model."""

import pytest

from repro.analysis.daycount import run_reports
from repro.analysis.parameters import SCAM_PARAMETERS, TPCD_PARAMETERS
from repro.analysis.work import probe_seconds, scan_seconds
from repro.core.schemes import DelScheme
from repro.errors import ReproError
from repro.extensions.multidisk import (
    balanced_assignment,
    parallel_probe_seconds,
    parallel_scan_seconds,
    query_speedup,
    round_robin_assignment,
)
from repro.index.updates import UpdateTechnique


def report_for(params, n):
    scheme = DelScheme(params.window, n)
    reports = run_reports(
        scheme, params, UpdateTechnique.SIMPLE_SHADOW, transitions=params.window
    )
    return reports[-1]


class TestAssignments:
    def test_round_robin(self):
        assignment = round_robin_assignment(5, 2)
        assert assignment.index_to_disk == (0, 1, 0, 1, 0)
        assert assignment.indexes_on(0) == [0, 2, 4]

    def test_round_robin_validation(self):
        with pytest.raises(ReproError):
            round_robin_assignment(0, 2)
        with pytest.raises(ReproError):
            round_robin_assignment(2, 0)

    def test_balanced_assignment_spreads_load(self):
        assignment = balanced_assignment([10.0, 1.0, 1.0, 8.0], 2)
        loads = [0.0, 0.0]
        for i, disk in enumerate(assignment.index_to_disk):
            loads[disk] += [10.0, 1.0, 1.0, 8.0][i]
        assert abs(loads[0] - loads[1]) <= 2.0


class TestParallelQueries:
    def test_single_disk_equals_serial(self):
        report = report_for(SCAM_PARAMETERS, 4)
        assignment = round_robin_assignment(4, 1)
        assert parallel_probe_seconds(
            report, SCAM_PARAMETERS, assignment
        ) == pytest.approx(probe_seconds(report, SCAM_PARAMETERS))

    def test_n_disks_divide_probe_time(self):
        report = report_for(SCAM_PARAMETERS, 4)
        assignment = round_robin_assignment(4, 4)
        parallel = parallel_probe_seconds(report, SCAM_PARAMETERS, assignment)
        serial = probe_seconds(report, SCAM_PARAMETERS)
        assert parallel < serial
        assert parallel >= serial / 4 - 1e-9

    def test_scan_parallelism(self):
        report = report_for(TPCD_PARAMETERS, 4)
        assignment = round_robin_assignment(4, 2)
        parallel = parallel_scan_seconds(report, TPCD_PARAMETERS, assignment)
        serial = scan_seconds(report, TPCD_PARAMETERS)
        assert serial / 2.2 < parallel < serial

    def test_speedup_approaches_n_for_balanced_layout(self):
        report = report_for(SCAM_PARAMETERS, 4)
        speedup = query_speedup(report, SCAM_PARAMETERS, n_disks=4)
        assert 2.5 < speedup <= 4.0 + 1e-9

    def test_speedup_is_one_without_queries(self):
        from dataclasses import replace

        params = replace(
            TPCD_PARAMETERS,
            application=replace(
                TPCD_PARAMETERS.application, probe_num=0, scan_num=0
            ),
        )
        report = report_for(params, 4)
        assert query_speedup(report, params, 4) == 1.0


class TestParallelMaintenance:
    def test_single_disk_equals_serial(self):
        from repro.extensions.multidisk import (
            maintenance_speedup,
            parallel_maintenance_seconds,
        )

        report = report_for(SCAM_PARAMETERS, 4)
        serial = sum(op.seconds for op in report.op_costs)
        assert parallel_maintenance_seconds(report, 1) == pytest.approx(serial)
        assert maintenance_speedup(report, 1) == pytest.approx(1.0)

    def test_more_disks_never_slower(self):
        from repro.extensions.multidisk import parallel_maintenance_seconds

        report = report_for(SCAM_PARAMETERS, 4)
        times = [
            parallel_maintenance_seconds(report, d) for d in (1, 2, 4, 8)
        ]
        for a, b in zip(times, times[1:]):
            assert b <= a + 1e-9

    def test_reindex_start_parallelises_across_disks(self):
        """The initial W-day build touches every constituent: n disks can
        overlap the n builds."""
        from repro.analysis.costing import AnalyticExecutor
        from repro.core.schemes import ReindexScheme
        from repro.extensions.multidisk import maintenance_speedup

        ex = AnalyticExecutor(
            ReindexScheme(8, 4), SCAM_PARAMETERS.with_window(8),
            UpdateTechnique.SIMPLE_SHADOW,
        )
        start = ex.run_start()
        speedup = maintenance_speedup(start, 4)
        assert speedup == pytest.approx(4.0)

    def test_empty_day_speedup_is_one(self):
        from repro.analysis.costing import DayReport
        from repro.core.executor import PhaseSeconds
        from repro.extensions.multidisk import maintenance_speedup

        empty = DayReport(
            day=1,
            seconds=PhaseSeconds(),
            steady_bytes=0,
            constituent_bytes=0,
            peak_bytes=0,
            length_days=0,
            constituents=(),
        )
        assert maintenance_speedup(empty, 4) == 1.0

    def test_validation(self):
        from repro.errors import ReproError
        from repro.extensions.multidisk import parallel_maintenance_seconds

        report = report_for(SCAM_PARAMETERS, 2)
        with pytest.raises(ReproError):
            parallel_maintenance_seconds(report, 0)
