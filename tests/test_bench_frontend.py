"""Frontend-bench tests: config, schema validation, and claim logic.

The sweep itself is wall-clock; these tests exercise its *logic* on
synthetic step data, plus one miniature end-to-end run to keep the
whole pipeline honest without burning bench-length time in tier 1.
"""

import json
from dataclasses import replace

import pytest

from repro.bench.frontend import (
    KNEE_REJECT_EPS,
    REQUIRED_HEADLINE_KEYS,
    REQUIRED_STEP_KEYS,
    FrontendBenchConfig,
    _knee,
    _subsaturation_equivalent,
    quick_config,
    render_summary,
    run_frontend_bench,
    validate_report,
    write_report,
)
from repro.errors import FrontendError
from repro.serve.demo import DemoClusterConfig


def step(multiplier, admitted_qps, p95_s, *, shed=0.0, reject=None,
         offered=100, completed=None):
    if reject is None:
        reject = shed
    if completed is None:
        completed = int(offered * (1 - reject))
    row = {
        "multiplier": multiplier,
        "offered_qps_target": admitted_qps / max(1 - reject, 0.01),
        "offered": offered,
        "completed": completed,
        "admitted_qps": admitted_qps,
        "shed_ratio": shed,
        "reject_ratio": reject,
        "p95_s": p95_s,
        "p50_s": p95_s / 2,
        "errors": 0,
        "max_lag_s": 0.0,
    }
    assert all(k in row for k in REQUIRED_STEP_KEYS)
    return row


def synthetic_report():
    shed_steps = [
        step(0.3, 120.0, 0.004),
        step(0.9, 360.0, 0.010),
        step(1.5, 400.0, 0.015, shed=0.33),
        step(3.0, 400.0, 0.016, shed=0.66),
    ]
    queue_steps = [
        step(0.3, 120.0, 0.004),
        step(0.9, 360.0, 0.010),
        step(1.5, 395.0, 0.200),
        step(3.0, 390.0, 0.450),
    ]
    headline = {
        "frontend_knee_qps": 360.0,
        "knee_multiplier": 0.9,
        "knee_offered_qps": 370.0,
        "pre_knee_p95_s": 0.010,
        "shed_overload_p95_s": 0.015,
        "queue_overload_p95_s": 0.450,
        "shed_p95_over_pre_knee": 1.5,
        "queue_p95_over_shed_p95": 30.0,
        "claim": {
            "graceful_shed": True,
            "queue_p95_degrades": True,
            "shed_beats_queue_at_overload": True,
            "subsaturation_equivalent": True,
            "pass": True,
        },
    }
    assert all(k in headline for k in REQUIRED_HEADLINE_KEYS)
    return {
        "bench": "frontend",
        "schema_version": 1,
        "machine_dependent": True,
        "workload": {"seed": 7},
        "measured": {
            "capacity_qps": 420.0,
            "calibration": step(1.0, 420.0, 0.02, shed=0.5),
            "reference": step(0.9, 378.0, 0.010),
            "sweeps": {"shed": shed_steps, "queue": queue_steps},
        },
        "headline": headline,
    }


class TestConfig:
    def test_multipliers_must_straddle_the_knee(self):
        with pytest.raises(FrontendError, match="straddle"):
            FrontendBenchConfig(load_multipliers=(0.3, 0.6, 0.9))
        with pytest.raises(FrontendError, match="straddle"):
            FrontendBenchConfig(load_multipliers=(1.5, 2.0))

    def test_multipliers_must_increase(self):
        with pytest.raises(FrontendError, match="increasing"):
            FrontendBenchConfig(load_multipliers=(0.5, 2.0, 1.5))

    def test_multipliers_must_exist(self):
        with pytest.raises(FrontendError, match="empty"):
            FrontendBenchConfig(load_multipliers=())

    def test_bad_durations(self):
        with pytest.raises(FrontendError):
            FrontendBenchConfig(step_duration_s=0.0)
        with pytest.raises(FrontendError):
            FrontendBenchConfig(service_us=-1.0)

    def test_quick_config_is_shorter_but_still_valid(self):
        quick = quick_config()
        full = FrontendBenchConfig()
        assert quick.quick is True
        assert quick.step_duration_s < full.step_duration_s
        assert quick.load_multipliers[0] < 1.0 < quick.load_multipliers[-1]


class TestKnee:
    def test_picks_highest_throughput_that_keeps_up(self):
        candidates = [
            step(0.3, 100.0, 0.01),
            step(0.9, 300.0, 0.02),
            step(1.5, 320.0, 0.03, shed=0.4),
        ]
        assert _knee(candidates)["multiplier"] == 0.9

    def test_tolerates_trace_shedding_below_eps(self):
        candidates = [
            step(0.9, 300.0, 0.02, shed=KNEE_REJECT_EPS / 2),
            step(0.3, 100.0, 0.01),
        ]
        assert _knee(candidates)["admitted_qps"] == 300.0

    def test_degenerate_all_shedding_falls_back_to_best(self):
        candidates = [
            step(0.5, 200.0, 0.02, shed=0.3),
            step(1.5, 260.0, 0.03, shed=0.6),
        ]
        assert _knee(candidates)["admitted_qps"] == 260.0


class TestSubsaturationEquivalence:
    def test_identical_substeps_pass(self):
        shed = [step(0.5, 100.0, 0.01), step(2.0, 150.0, 0.02, shed=0.5)]
        queue = [step(0.5, 100.0, 0.01), step(2.0, 140.0, 0.30)]
        assert _subsaturation_equivalent(shed, queue)

    def test_mismatched_completions_fail(self):
        shed = [step(0.5, 100.0, 0.01, completed=100)]
        queue = [step(0.5, 100.0, 0.01, completed=97)]
        assert not _subsaturation_equivalent(shed, queue)

    def test_burst_shed_steps_are_skipped(self):
        # A sub-saturation step where the shed policy dropped a burst
        # is not comparable — it must not fail the claim.
        shed = [step(0.9, 300.0, 0.02, shed=0.03, completed=90)]
        queue = [step(0.9, 310.0, 0.02, completed=100)]
        assert _subsaturation_equivalent(shed, queue)


class TestValidateReport:
    def test_synthetic_report_passes(self):
        validate_report(synthetic_report())

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda r: r.pop("headline"), "missing key"),
            (lambda r: r.update(bench="other"), "unexpected bench"),
            (
                lambda r: r.update(machine_dependent=False),
                "machine_dependent",
            ),
            (lambda r: r["measured"].pop("reference"), "reference"),
            (
                lambda r: r["measured"]["sweeps"].pop("queue"),
                "no sweep steps",
            ),
            (
                lambda r: r["measured"]["sweeps"]["shed"][0].pop("p95_s"),
                "missing key 'p95_s'",
            ),
            (
                lambda r: r["headline"].pop("frontend_knee_qps"),
                "headline missing",
            ),
            (
                lambda r: r["headline"].update(frontend_knee_qps=-1.0),
                "negative",
            ),
        ],
    )
    def test_schema_violations_are_loud(self, mutate, message):
        report = synthetic_report()
        mutate(report)
        with pytest.raises(ValueError, match=message):
            validate_report(report)


class TestMiniatureSweep:
    """One tiny end-to-end run: schema, artifact, and summary."""

    @pytest.fixture(scope="class")
    def report(self):
        config = replace(
            quick_config(),
            cluster=DemoClusterConfig(
                window=3, n_indexes=2, n_shards=2, domain=40,
                records_per_day=8, extra_days=1, seed=3,
            ),
            load_multipliers=(0.4, 2.5),
            step_duration_s=0.15,
            calibrate_duration_s=0.1,
            calibrate_qps=2_000.0,
            service_us=1_500.0,
            n_users=10_000,
            n_tenants=4,
        )
        return run_frontend_bench(config)

    def test_report_validates(self, report):
        validate_report(report)

    def test_saturated_step_sheds(self, report):
        top = report["measured"]["sweeps"]["shed"][-1]
        assert top["shed_ratio"] > 0.0
        assert top["completed"] < top["offered"]

    def test_artifact_round_trips(self, report, tmp_path):
        path = write_report(report, tmp_path / "BENCH_frontend.json")
        validate_report(json.loads(path.read_text()))

    def test_summary_renders(self, report):
        text = render_summary(report)
        assert "knee" in text
        assert "claims" in text
        for policy in ("shed", "queue"):
            assert policy in text
