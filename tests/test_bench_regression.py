"""Tests for the bench-regression gate."""

import pytest

from repro.bench.regression import (
    DEFAULT_THRESHOLD,
    build_baseline,
    compare,
    extract_headlines,
    render_diff_table,
)


def serving_report(speedup=4.0):
    return {
        "bench": "serving",
        "speedups": {"batch256_cached_vs_unbatched_uncached": speedup},
    }


def overlap_report(makespan=0.9, p95=0.5):
    return {
        "bench": "overlap",
        "headline": {
            "makespan_ratio_mean": makespan,
            "reindex_p95_ratio_best": p95,
            "reindex_p95_improved": p95 < 1.0,
        },
    }


class TestExtraction:
    def test_serving_headline(self):
        assert extract_headlines(serving_report(3.5)) == {
            "serving_speedup_batch256": 3.5
        }

    def test_overlap_headlines(self):
        metrics = extract_headlines(overlap_report(0.88, 0.52))
        assert metrics == {
            "overlap_makespan_ratio_mean": 0.88,
            "overlap_reindex_p95_ratio_best": 0.52,
        }

    def test_baseline_merges_and_carries_over(self):
        baseline = build_baseline([serving_report(4.0)])
        assert baseline["metrics"] == {"serving_speedup_batch256": 4.0}
        refreshed = build_baseline([overlap_report()], previous=baseline)
        assert "serving_speedup_batch256" in refreshed["metrics"]
        assert "overlap_makespan_ratio_mean" in refreshed["metrics"]


class TestCompare:
    def test_unchanged_values_pass(self):
        baseline = build_baseline([serving_report(4.0), overlap_report()])
        rows = compare(baseline, [serving_report(4.0), overlap_report()])
        assert all(not r.regressed for r in rows)
        assert all(not r.skipped for r in rows)

    def test_higher_is_better_regression(self):
        baseline = build_baseline([serving_report(4.0)])
        rows = compare(baseline, [serving_report(2.0)])  # halved speedup
        assert rows[0].regressed
        assert rows[0].change == pytest.approx(-0.5)

    def test_lower_is_better_regression(self):
        baseline = build_baseline([overlap_report(makespan=0.8)])
        current = [overlap_report(makespan=1.2)]  # 50% worse
        rows = compare(baseline, current)
        row = next(r for r in rows if r.metric == "overlap_makespan_ratio_mean")
        assert row.regressed

    def test_within_threshold_passes(self):
        baseline = build_baseline([serving_report(4.0)])
        rows = compare(baseline, [serving_report(3.2)])  # -20% < 25%
        assert not rows[0].regressed

    def test_absent_bench_is_skipped_not_failed(self):
        baseline = build_baseline([serving_report(4.0), overlap_report()])
        rows = compare(baseline, [overlap_report()])
        serving = next(
            r for r in rows if r.metric == "serving_speedup_batch256"
        )
        assert serving.skipped and not serving.regressed

    def test_present_bench_missing_metric_fails(self):
        baseline = build_baseline([overlap_report()])
        broken = {"bench": "overlap", "headline": {}}
        rows = compare(baseline, [broken])
        assert all(r.regressed for r in rows if not r.skipped)

    def test_diff_table_names_failures(self):
        baseline = build_baseline([serving_report(4.0)])
        rows = compare(baseline, [serving_report(1.0)])
        table = render_diff_table(rows, DEFAULT_THRESHOLD)
        assert "REGRESSION" in table
        assert "serving_speedup_batch256" in table

    def test_diff_table_reports_ok(self):
        baseline = build_baseline([serving_report(4.0)])
        rows = compare(baseline, [serving_report(4.0)])
        table = render_diff_table(rows, DEFAULT_THRESHOLD)
        assert "gate ok" in table


def elastic_report(makespan=1.2):
    return {
        "bench": "elastic",
        "headline": {"throughput_recovery_makespan": makespan},
    }


class TestNewMetric:
    def test_measured_metric_absent_from_baseline_is_new_not_failing(self):
        # First run of a fresh benchmark against an older baseline: the
        # gate reports the metric instead of ignoring it or crashing.
        baseline = build_baseline([serving_report(4.0)])
        rows = compare(baseline, [serving_report(4.0), elastic_report()])
        fresh = next(
            r for r in rows if r.metric == "throughput_recovery_makespan"
        )
        assert fresh.new
        assert fresh.baseline is None
        assert fresh.current == pytest.approx(1.2)
        assert not fresh.regressed

    def test_diff_table_marks_new_and_points_at_update(self):
        baseline = build_baseline([serving_report(4.0)])
        rows = compare(baseline, [serving_report(4.0), elastic_report()])
        table = render_diff_table(rows, DEFAULT_THRESHOLD)
        assert "NEW" in table
        assert "--update" in table
        assert "gate ok" in table  # a NEW row never fails the gate

    def test_update_adopts_the_metric_into_the_gate(self):
        baseline = build_baseline([serving_report(4.0)])
        refreshed = build_baseline([elastic_report(1.2)], previous=baseline)
        assert refreshed["metrics"]["throughput_recovery_makespan"] == 1.2
        assert refreshed["metrics"]["serving_speedup_batch256"] == 4.0
        rows = compare(
            refreshed, [serving_report(4.0), elastic_report(1.2)]
        )
        assert not any(r.new for r in rows)
        assert not any(r.regressed for r in rows)

    def test_adopted_metric_regresses_like_any_other(self):
        baseline = build_baseline([elastic_report(1.0)])
        rows = compare(baseline, [elastic_report(1.5)])  # 50% worse
        row = next(
            r for r in rows if r.metric == "throughput_recovery_makespan"
        )
        assert row.regressed and not row.new


def serving_wallclock_report(speedup=4.0, probe_speedup=6.0):
    report = serving_report(speedup)
    report["wallclock"] = {"probe_replay": {"speedup": probe_speedup}}
    return report


class TestOptionalWallclockMetric:
    def test_extracted_when_present(self):
        headlines = extract_headlines(serving_wallclock_report())
        assert headlines["serving_wallclock_probe_speedup"] == 6.0

    def test_absent_section_skips_instead_of_failing(self):
        # A default serving report (no --wallclock) must not fail the
        # optional wall-clock gate the baseline adopted.
        baseline = build_baseline([serving_wallclock_report()])
        rows = compare(baseline, [serving_report(4.0)])
        wallclock = next(
            r
            for r in rows
            if r.metric == "serving_wallclock_probe_speedup"
        )
        assert wallclock.skipped and not wallclock.regressed
        mandatory = next(
            r for r in rows if r.metric == "serving_speedup_batch256"
        )
        assert not mandatory.skipped and not mandatory.regressed

    def test_present_section_still_gated(self):
        baseline = build_baseline([serving_wallclock_report()])
        rows = compare(
            baseline, [serving_wallclock_report(probe_speedup=1.0)]
        )
        wallclock = next(
            r
            for r in rows
            if r.metric == "serving_wallclock_probe_speedup"
        )
        assert wallclock.regressed


def frontend_report(knee_qps=500.0):
    return {
        "bench": "frontend",
        "headline": {"frontend_knee_qps": knee_qps},
    }


class TestDroppedMetric:
    """A baseline gate no benchmark measures anymore must fail loudly."""

    def ghost_baseline(self):
        baseline = build_baseline([serving_report(4.0)])
        baseline["metrics"]["retired_metric"] = 1.0
        return baseline

    def test_unknown_baseline_name_is_dropped_and_failing(self):
        rows = compare(self.ghost_baseline(), [serving_report(4.0)])
        ghost = next(r for r in rows if r.metric == "retired_metric")
        assert ghost.dropped
        assert ghost.regressed  # DROPPED fails the gate
        assert not ghost.skipped

    def test_dropped_fails_even_without_its_bench_provided(self):
        # Unlike a skipped metric, DROPPED does not depend on which
        # reports were handed to this CI job: the gate is gone, period.
        rows = compare(self.ghost_baseline(), [overlap_report()])
        ghost = next(r for r in rows if r.metric == "retired_metric")
        assert ghost.dropped and ghost.regressed

    def test_diff_table_names_the_dropped_gate(self):
        rows = compare(self.ghost_baseline(), [serving_report(4.0)])
        table = render_diff_table(rows, DEFAULT_THRESHOLD)
        assert "DROPPED" in table
        assert "retired_metric" in table
        assert "--update" in table

    def test_update_retires_the_dropped_gate(self):
        refreshed = build_baseline(
            [serving_report(4.0)], previous=self.ghost_baseline()
        )
        assert "retired_metric" not in refreshed["metrics"]
        rows = compare(refreshed, [serving_report(4.0)])
        assert not any(r.dropped for r in rows)

    def test_known_but_absent_bench_still_skips(self):
        # The DROPPED path must not swallow the normal skip: a metric
        # whose benchmark simply was not run stays skipped, not failed.
        baseline = build_baseline([serving_report(4.0), overlap_report()])
        rows = compare(baseline, [serving_report(4.0)])
        overlap = next(
            r for r in rows if r.metric == "overlap_makespan_ratio_mean"
        )
        assert overlap.skipped and not overlap.regressed


class TestFrontendKneeMetric:
    def test_extracted_from_frontend_report(self):
        headlines = extract_headlines(frontend_report(512.0))
        assert headlines["frontend_knee_qps"] == 512.0

    def test_not_in_default_baseline_shows_as_new(self):
        baseline = build_baseline([serving_report(4.0)])
        rows = compare(baseline, [frontend_report(512.0)])
        knee = next(r for r in rows if r.metric == "frontend_knee_qps")
        assert knee.new and not knee.regressed

    def test_adopted_knee_gates_like_any_headline(self):
        baseline = build_baseline([frontend_report(500.0)])
        rows = compare(baseline, [frontend_report(200.0)])  # 60% drop
        knee = next(r for r in rows if r.metric == "frontend_knee_qps")
        assert knee.regressed

    def test_absent_headline_skips_because_optional(self):
        baseline = build_baseline([frontend_report(500.0)])
        rows = compare(baseline, [{"bench": "frontend", "headline": {}}])
        knee = next(r for r in rows if r.metric == "frontend_knee_qps")
        assert knee.skipped and not knee.regressed


def resilience_report(lost=0.0, hedge_ratio=0.4):
    headline = {"rolling_restart_lost_requests": lost}
    if hedge_ratio is not None:
        headline["hedge_tail_ratio"] = hedge_ratio
    return {"bench": "resilience", "headline": headline}


class TestExactMetric:
    """Zero-loss is an equality gate, not a percentage allowance."""

    def test_extracted_from_resilience_report(self):
        headlines = extract_headlines(resilience_report(0.0, 0.4))
        assert headlines["rolling_restart_lost_requests"] == 0.0
        assert headlines["hedge_tail_ratio"] == 0.4

    def test_zero_baseline_zero_current_passes(self):
        # The relative gate cannot express a 0.0 baseline; the exact
        # gate treats it as the expected case.
        baseline = build_baseline([resilience_report(0.0)])
        rows = compare(baseline, [resilience_report(0.0)])
        lost = next(
            r for r in rows if r.metric == "rolling_restart_lost_requests"
        )
        assert not lost.regressed
        assert lost.change == 0.0

    def test_any_nonzero_delta_fails(self):
        # One lost request is a correctness bug, not a 25%-allowance
        # perf wiggle.
        baseline = build_baseline([resilience_report(0.0)])
        rows = compare(baseline, [resilience_report(1.0)])
        lost = next(
            r for r in rows if r.metric == "rolling_restart_lost_requests"
        )
        assert lost.regressed
        assert lost.change is None

    def test_missing_value_fails_when_bench_provided(self):
        baseline = build_baseline([resilience_report(0.0)])
        broken = {"bench": "resilience", "headline": {}}
        rows = compare(baseline, [broken])
        lost = next(
            r for r in rows if r.metric == "rolling_restart_lost_requests"
        )
        assert lost.regressed

    def test_absent_bench_still_skips(self):
        baseline = build_baseline([resilience_report(0.0)])
        rows = compare(baseline, [serving_report(4.0)])
        lost = next(
            r for r in rows if r.metric == "rolling_restart_lost_requests"
        )
        assert lost.skipped and not lost.regressed

    def test_diff_table_reports_exact_pass(self):
        baseline = build_baseline([resilience_report(0.0)])
        rows = compare(baseline, [resilience_report(0.0)])
        table = render_diff_table(rows, DEFAULT_THRESHOLD)
        assert "rolling_restart_lost_requests" in table
        assert "gate ok" in table


class TestHedgeTailMetric:
    def test_optional_absence_skips(self):
        # The committed baseline adopts only the exact zero-loss gate;
        # a machine-local baseline may also adopt the hedge ratio, and
        # a report missing the section must then skip, not fail.
        baseline = build_baseline([resilience_report(0.0, hedge_ratio=0.4)])
        rows = compare(baseline, [resilience_report(0.0, hedge_ratio=None)])
        hedge = next(r for r in rows if r.metric == "hedge_tail_ratio")
        assert hedge.skipped and not hedge.regressed

    def test_not_in_baseline_shows_as_new(self):
        baseline = build_baseline([resilience_report(0.0, hedge_ratio=None)])
        rows = compare(baseline, [resilience_report(0.0, hedge_ratio=0.4)])
        hedge = next(r for r in rows if r.metric == "hedge_tail_ratio")
        assert hedge.new and not hedge.regressed

    def test_adopted_ratio_gates_relatively(self):
        baseline = build_baseline([resilience_report(0.0, hedge_ratio=0.4)])
        rows = compare(baseline, [resilience_report(0.0, hedge_ratio=0.8)])
        hedge = next(r for r in rows if r.metric == "hedge_tail_ratio")
        assert hedge.regressed  # doubled tail ratio, lower is better
