"""Scatter-gather correctness of the cluster coordinator.

Probes routed across shards must return exactly what one big index
would have returned (checked against the record store's brute-force
oracle), scans must reassemble the full window from per-shard pieces,
and the merged cost summaries must add up.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterSimulation,
    HashPartitioner,
)
from repro.core.schemes import scheme_by_name
from repro.errors import ClusterError
from tests.conftest import make_store

W, N, LAST = 10, 4, 16
VALUES = "abcdefgh"


@pytest.fixture(scope="module")
def sim():
    store = make_store(LAST)
    scheme_cls = scheme_by_name("REINDEX")
    sim = ClusterSimulation(
        lambda: scheme_cls(W, N),
        store,
        cluster=ClusterConfig(n_shards=3, replication=1),
    )
    sim.run(LAST)
    sim.source_store = store
    return sim


class TestProbeRouting:
    def test_probe_many_matches_brute_oracle_in_request_order(self, sim):
        lo, hi = LAST - W + 1, LAST
        specs = [(v, lo, hi) for v in VALUES] + [("a", lo, hi)]
        batch = sim.coordinator.probe_many(specs)
        assert len(batch) == len(specs)
        for (value, t1, t2), result in zip(specs, batch):
            want = sorted(
                e.record_id for e in sim.source_store.brute_probe(value, t1, t2)
            )
            assert sorted(result.record_ids) == want
            assert result.missing_days == frozenset()
        assert batch.summary.requests == len(specs)
        assert batch.summary.complete
        assert batch.summary.shards_unavailable == ()

    def test_summary_merges_per_shard_costs(self, sim):
        lo, hi = LAST - W + 1, LAST
        batch = sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
        s = batch.summary
        shard_ids = [sid for sid, _ in s.per_shard]
        assert shard_ids == sorted(shard_ids)
        assert s.shards_queried == len(s.per_shard)
        assert s.serial_seconds == pytest.approx(
            sum(part.seconds for _, part in s.per_shard)
        )
        assert s.elapsed_seconds == pytest.approx(
            max(part.seconds for _, part in s.per_shard)
        )
        assert s.elapsed_seconds <= s.serial_seconds + 1e-12
        assert s.seeks == pytest.approx(
            sum(part.seeks for _, part in s.per_shard)
        )
        assert batch.seconds == pytest.approx(s.serial_seconds)

    def test_probe_convenience_routes_to_owner(self, sim):
        lo, hi = LAST - W + 1, LAST
        result = sim.coordinator.probe("c", lo, hi)
        want = sorted(
            e.record_id for e in sim.source_store.brute_probe("c", lo, hi)
        )
        assert sorted(result.record_ids) == want


class TestScanFanout:
    def test_scan_reassembles_full_window(self, sim):
        lo, hi = LAST - W + 1, LAST
        result = sim.coordinator.scan(lo, hi)
        want = sorted(e.record_id for e in sim.source_store.brute_scan(lo, hi))
        assert sorted(e.record_id for e in result.entries) == want
        assert result.covered_days == frozenset(range(lo, hi + 1))
        assert result.missing_days == frozenset()

    def test_scan_many_queries_every_shard(self, sim):
        lo, hi = LAST - W + 1, LAST
        batch = sim.coordinator.scan_many([(lo, hi), (lo, lo + 1)])
        assert len(batch) == 2
        assert batch.summary.shards_queried == 3
        short = batch[1]
        assert short.covered_days == frozenset({lo, lo + 1})


class TestValidationAndObs:
    def test_shard_partitioner_mismatch_rejected(self, sim):
        with pytest.raises(ClusterError):
            ClusterCoordinator(sim.shards, HashPartitioner(2))

    def test_counters_published(self, sim):
        lo, hi = LAST - W + 1, LAST
        before = sim.obs.counter("cluster.probes").value
        sim.coordinator.probe("a", lo, hi)
        assert sim.obs.counter("cluster.probes").value == before + 1
