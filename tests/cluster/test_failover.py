"""Replica failover and partial-result correctness under device faults.

The cluster's fault contract: killing a shard's primary device — even
mid-transition — yields either a replica failover (answers identical to
a fault-free run) or, with no replica left, a correct partial result
whose missing shards and days are enumerated.  *Never a wrong answer.*
The matrix covers placement (hash/range partitioner) x serving policy
(wait/degrade) x replication (1/2).
"""

import pytest

from repro.cluster import ClusterConfig, ClusterSimulation
from repro.core.schemes import scheme_by_name
from repro.sim.querygen import QueryWorkload
from repro.sim.scheduler import OverlapPolicy
from repro.storage.faults import FaultInjector, FaultyDisk
from tests.conftest import make_store

W, N, LAST = 8, 2, 13
VALUES = "abcdefgh"

#: One split point in the middle of the value alphabet: shard 0 owns
#: a-d, shard 1 owns e-h.
RANGE_SPLITS = ("e",)


def _workload():
    return QueryWorkload(
        probes_per_day=6,
        scans_per_day=2,
        value_picker=lambda rng: rng.choice(VALUES),
        seed=3,
    )


def _build(partitioner, policy, replication, injectors=None):
    cfg = ClusterConfig(
        n_shards=2,
        replication=replication,
        partitioner=partitioner,
        range_splits=RANGE_SPLITS if partitioner == "range" else (),
        maintenance="staggered",
        max_concurrent_frac=0.5,
        policy=policy,
    )

    def factory(i):
        disk = FaultyDisk(injector=FaultInjector())
        if injectors is not None:
            injectors[i] = disk.injector
        return disk

    return ClusterSimulation(
        lambda: scheme_by_name("REINDEX")(W, N),
        make_store(LAST),
        queries=_workload(),
        cluster=cfg,
        device_factory=factory,
    )


def _final_answers(sim):
    lo, hi = LAST - W + 1, LAST
    probes = sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
    scan = sim.coordinator.scan(lo, hi)
    return probes, scan


@pytest.mark.parametrize("partitioner", ["hash", "range"])
@pytest.mark.parametrize(
    "policy", [OverlapPolicy.WAIT, OverlapPolicy.DEGRADE]
)
class TestFaultMatrix:
    def test_replicated_shard_fails_over_and_answers_match(
        self, partitioner, policy
    ):
        injectors = {}
        sim = _build(partitioner, policy, replication=2, injectors=injectors)
        twin = _build(partitioner, policy, replication=2)
        sim.run_start()
        twin.run_start()
        # Kill shard 0's primary device; the next transition's first I/O
        # on it raises DeviceFailure mid-plan.
        victim = sim.shards[0].primary
        injectors[victim.device_index].fail_device()
        for day in range(W + 1, LAST + 1):
            sim.run_transition(day)
            twin.run_transition(day)
        assert victim.failed
        assert sim.shards[0].primary is not None
        assert sim.shards[0].primary.replica_id == 1
        # Failover is invisible to correctness: answers equal the
        # fault-free twin's, and nothing is reported missing.
        probes, scan = _final_answers(sim)
        twin_probes, twin_scan = _final_answers(twin)
        for mine, theirs in zip(probes, twin_probes):
            assert sorted(mine.record_ids) == sorted(theirs.record_ids)
            assert mine.missing_days == frozenset()
        assert sorted(e.record_id for e in scan.entries) == sorted(
            e.record_id for e in twin_scan.entries
        )
        assert probes.summary.shards_unavailable == ()
        assert sim.result.all_missing_days() == frozenset()

    def test_unreplicated_shard_degrades_to_correct_partial_results(
        self, partitioner, policy
    ):
        injectors = {}
        sim = _build(partitioner, policy, replication=1, injectors=injectors)
        twin = _build(partitioner, policy, replication=1)
        sim.run_start()
        twin.run_start()
        victim = sim.shards[0].primary
        injectors[victim.device_index].fail_device()
        for day in range(W + 1, LAST + 1):
            sim.run_transition(day)
            twin.run_transition(day)
        assert not sim.shards[0].available
        assert 0 in sim.result.days[-1].shards_unavailable
        # Day-level accounting: the dark shard's days are enumerated.
        assert sim.result.all_missing_days()
        assert sim.result.total_queries_degraded() > 0

        lo, hi = LAST - W + 1, LAST
        probes, scan = _final_answers(sim)
        twin_probes, twin_scan = _final_answers(twin)
        store = make_store(LAST)
        owner = sim.partitioner.shard_for
        for value, mine, theirs in zip(VALUES, probes, twin_probes):
            if owner(value) == 0:
                # Dead shard: empty but honest — the lost days are
                # enumerated, nothing is fabricated.
                assert mine.record_ids == ()
                assert mine.missing_days
                assert mine.missing_days <= frozenset(range(lo, hi + 1))
            else:
                assert sorted(mine.record_ids) == sorted(theirs.record_ids)
                assert mine.missing_days == frozenset()
        assert probes.summary.shards_unavailable == (0,)
        # The scan returns exactly the surviving shard's postings — a
        # strict, correct subset of the oracle, never a wrong entry.
        want = {
            e.record_id
            for e in store.brute_scan(lo, hi)
        }
        got = {e.record_id for e in scan.entries}
        assert got <= want
        twin_ids = {e.record_id for e in twin_scan.entries}
        assert twin_ids == want
        surviving = {
            e.record_id
            for day in range(lo, hi + 1)
            for r in sim.shards[1].store.batch(day).records
            for e in [r]
        }
        assert got == {rid for rid in want if rid in {r for r in surviving}}
        assert scan.missing_days


class TestMidTransitionFailureTimeline:
    def test_failure_mid_plan_marks_replica_and_stops_its_plan(self):
        injectors = {}
        sim = _build("hash", OverlapPolicy.WAIT, 2, injectors=injectors)
        sim.run_start()
        victim = sim.shards[0].primary
        # Arm a counted failure so the device dies partway through the
        # next day's plan rather than before it.
        injectors[victim.device_index].fail_device_after_ios = (
            injectors[victim.device_index].stats.ios + 3
        )
        stats = sim.run_transition(W + 1)
        assert victim.failed
        # The replica's timeline stops at the failure point; the shard's
        # window is still well formed and the day completed.
        assert victim.maintenance_end >= victim.maintenance_start
        assert stats.makespan_seconds > 0.0
        assert sim.shards[0].available

    def test_serving_time_failure_counts_a_failover(self, monkeypatch):
        from repro.cluster import ShardReplica

        injectors = {}
        sim = _build("hash", OverlapPolicy.WAIT, 2, injectors=injectors)
        sim.run_start()
        victim = sim.shards[0].primary
        # Die the instant the victim's maintenance completes, so the
        # failure surfaces on a query's read during serving.
        orig = ShardReplica.run_maintenance

        def die_after_maintenance(replica, plan, start):
            report = orig(replica, plan, start)
            if replica is victim:
                injectors[replica.device_index].fail_device()
            return report

        monkeypatch.setattr(
            ShardReplica, "run_maintenance", die_after_maintenance
        )
        stats = sim.run_transition(W + 1)
        assert victim.failed
        assert stats.failovers >= 1
        # Failover kept every answer complete.
        assert sim.result.all_missing_days() == frozenset()


class TestFailoverCostAccounting:
    """Regression: failover is not free.  The attempt that died
    mid-answer consumed real device time before the fault fired, and a
    real client waits through it before the survivor's answer lands —
    so it must be charged to both the serial and elapsed cost clocks,
    not silently dropped with the dead replica."""

    def test_aborted_attempt_charges_serial_and_elapsed(self):
        injectors = {}
        sim = _build("hash", OverlapPolicy.WAIT, 2, injectors=injectors)
        twin = _build("hash", OverlapPolicy.WAIT, 2)
        sim.run(LAST)
        twin.run(LAST)
        victim = sim.shards[0].primary
        inj = injectors[victim.device_index]
        # A counted failure: the dying attempt performs three charged
        # I/Os before the device gives out mid-batch.
        inj.fail_device_after_ios = inj.stats.ios + 3
        probes, _scan = _final_answers(sim)
        twin_probes, _twin_scan = _final_answers(twin)
        summary = probes.summary
        assert summary.failovers >= 1
        assert summary.aborted_seconds > 0.0
        # Serial time = the per-shard answers' work plus the dead
        # attempt's charged reads — exactly the fault-free cost plus
        # the failover overhead, nothing lost and nothing double-billed.
        per_shard = sum(s.seconds for _, s in summary.per_shard)
        assert summary.serial_seconds == pytest.approx(
            per_shard + summary.aborted_seconds
        )
        healthy = twin_probes.summary
        assert summary.serial_seconds == pytest.approx(
            healthy.serial_seconds + summary.aborted_seconds
        )
        # The aborted attempt is sequential with the survivor's answer
        # on the same shard, so it stretches elapsed time too.
        assert summary.elapsed_seconds >= healthy.elapsed_seconds
        assert summary.elapsed_seconds >= summary.aborted_seconds
        # And the overhead never bought a worse answer.
        for mine, theirs in zip(probes, twin_probes):
            assert sorted(mine.record_ids) == sorted(theirs.record_ids)
            assert mine.missing_days == frozenset()


class TestServingTimeFailoverBeatsDegradation:
    """Regression: a device fault during *serving* must fail over, not
    degrade, while a healthy replica exists.

    The wave index's degraded mode swallows ``FaultError`` into a
    partial answer, which used to hide the fault from the coordinator
    entirely — the shard answered with its whole window missing even
    though a live replica held a full copy.
    """

    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    def test_post_run_device_kill_fails_over_with_full_answer(
        self, partitioner
    ):
        injectors = {}
        sim = _build(partitioner, OverlapPolicy.WAIT, 2, injectors)
        twin = _build(partitioner, OverlapPolicy.WAIT, 2)
        sim.run(LAST)
        twin.run(LAST)

        victim = sim.shards[0].primary
        injectors[victim.device_index].fail_device()

        probes, scan = _final_answers(sim)
        want_probes, want_scan = _final_answers(twin)
        assert victim.failed
        assert sim.shards[0].primary.replica_id != victim.replica_id
        assert probes.summary.failovers >= 1
        for got, want in zip(probes, want_probes):
            assert sorted(got.record_ids) == sorted(want.record_ids)
            assert not got.missing_days
        assert not scan.missing_days
        assert sorted(e.record_id for e in scan.entries) == sorted(
            e.record_id for e in want_scan.entries
        )
