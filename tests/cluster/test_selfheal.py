"""Cluster self-healing: circuit breakers, retry budgets, re-replication.

Two layers.  The breaker unit suite drives :class:`ReplicaHealthMonitor`
directly through its state machine (live → suspect → open → half-open →
live/retired, with escalating cooldowns).  The integration suite kills
and flakes real devices under a self-healing :class:`ClusterSimulation`
and asserts the acceptance contract: the cluster auto-returns to full
replication, answers stay bit-identical to a fault-free twin, and no
shard ever goes dark.
"""

from dataclasses import dataclass, field

import pytest

from repro.cluster import (
    BreakerConfig,
    BreakerState,
    ClusterConfig,
    ClusterSimulation,
    ReplicaHealthMonitor,
    SelfHealConfig,
)
from repro.core.schemes import scheme_by_name
from repro.sim.querygen import QueryWorkload
from repro.storage.faults import (
    CrashPoint,
    FaultInjector,
    FaultyDisk,
    RetryPolicy,
)
from tests.conftest import make_store

W, N, LAST = 8, 2, 14
VALUES = "abcdefgh"


# ----------------------------------------------------------------------
# Breaker state machine (unit)
# ----------------------------------------------------------------------


@dataclass
class _FakeReplica:
    shard_id: int
    replica_id: int
    failed: bool = False


@dataclass
class _FakeShard:
    replicas: list = field(default_factory=list)


def _monitor(**breaker_kwargs):
    breaker = BreakerConfig(
        failure_threshold=3,
        cooldown_s=1.0,
        cooldown_multiplier=2.0,
        max_cooldown_s=4.0,
        **breaker_kwargs,
    )
    return ReplicaHealthMonitor(SelfHealConfig(breaker=breaker))


class TestBreakerStateMachine:
    def test_threshold_consecutive_failures_open_the_breaker(self):
        monitor = _monitor()
        replica = _FakeReplica(0, 0)
        monitor.on_transient(replica, now=0.0)
        assert monitor.breaker_state(replica) is BreakerState.SUSPECT
        monitor.on_transient(replica, now=0.0)
        assert monitor.breaker_state(replica) is BreakerState.SUSPECT
        monitor.on_transient(replica, now=5.0)
        health = monitor.health_of(replica)
        assert health.state is BreakerState.OPEN
        assert health.opened_at == 5.0
        assert health.opens == 1
        counters = monitor.obs.counters()
        assert counters["cluster.heal.breaker_opens"] == 1
        assert counters["cluster.heal.transients"] == 3

    def test_success_resets_the_suspect_streak(self):
        monitor = _monitor()
        replica = _FakeReplica(0, 0)
        monitor.on_transient(replica, now=0.0)
        monitor.on_transient(replica, now=0.0)
        monitor.record_success(replica)
        assert monitor.breaker_state(replica) is BreakerState.LIVE
        assert monitor.health_of(replica).consecutive_failures == 0
        # The streak restarted: two more transients only suspect again.
        monitor.on_transient(replica, now=0.0)
        monitor.on_transient(replica, now=0.0)
        assert monitor.breaker_state(replica) is BreakerState.SUSPECT

    def test_open_breaker_half_opens_after_cooldown(self):
        monitor = _monitor()
        replica = _FakeReplica(0, 0)
        shard = _FakeShard([replica])
        for _ in range(3):
            monitor.on_transient(replica, now=10.0)
        assert monitor.breaker_state(replica) is BreakerState.OPEN
        picked, wait = monitor.serving_replica(shard, now=11.5)
        assert picked is replica
        assert wait == 0.0
        assert monitor.breaker_state(replica) is BreakerState.HALF_OPEN
        assert monitor.obs.counters()["cluster.heal.breaker_half_opens"] == 1

    def test_all_open_request_waits_out_the_soonest_cooldown(self):
        monitor = _monitor()
        replica = _FakeReplica(0, 0)
        shard = _FakeShard([replica])
        for _ in range(3):
            monitor.on_transient(replica, now=10.0)
        # Cooldown runs to 11.0; a request at 10.4 waits the last 0.6s
        # (charged to its latency, not to any device) and probes.
        picked, wait = monitor.serving_replica(shard, now=10.4)
        assert picked is replica
        assert wait == pytest.approx(0.6)
        assert monitor.breaker_state(replica) is BreakerState.HALF_OPEN

    def test_failed_probe_reopens_with_escalating_cooldown(self):
        monitor = _monitor()
        replica = _FakeReplica(0, 0)
        shard = _FakeShard([replica])
        for _ in range(3):
            monitor.on_transient(replica, now=0.0)
        for expected in (2.0, 4.0, 4.0):  # doubled, then capped
            monitor.serving_replica(shard, now=100.0)
            monitor.on_transient(replica, now=100.0)
            health = monitor.health_of(replica)
            assert health.state is BreakerState.OPEN
            assert health.cooldown_s == expected

    def test_successful_probe_closes_and_resets_cooldown(self):
        monitor = _monitor()
        replica = _FakeReplica(0, 0)
        shard = _FakeShard([replica])
        for _ in range(3):
            monitor.on_transient(replica, now=0.0)
        monitor.serving_replica(shard, now=100.0)
        monitor.on_transient(replica, now=100.0)  # escalate to 2.0
        monitor.serving_replica(shard, now=200.0)
        monitor.record_success(replica)
        health = monitor.health_of(replica)
        assert health.state is BreakerState.LIVE
        assert health.cooldown_s == 1.0
        assert monitor.obs.counters()["cluster.heal.breaker_closes"] == 1

    def test_open_breaker_yields_to_a_live_replica(self):
        monitor = _monitor()
        flaky = _FakeReplica(0, 0)
        healthy = _FakeReplica(0, 1)
        shard = _FakeShard([flaky, healthy])
        for _ in range(3):
            monitor.on_transient(flaky, now=0.0)
        picked, wait = monitor.serving_replica(shard, now=0.1)
        assert picked is healthy
        assert wait == 0.0
        assert monitor.breaker_state(flaky) is BreakerState.OPEN

    def test_retired_replica_never_serves_again(self):
        monitor = _monitor()
        replica = _FakeReplica(0, 0)
        shard = _FakeShard([replica])
        monitor.retire(replica, reason="device-failure")
        assert replica.failed
        assert monitor.breaker_state(replica) is BreakerState.RETIRED
        counters = monitor.obs.counters()
        assert counters["cluster.heal.retired"] == 1
        assert counters["cluster.heal.retired.device-failure"] == 1
        picked, wait = monitor.serving_replica(shard, now=1e9)
        assert picked is None
        # Further faults and successes are no-ops on a retired replica.
        monitor.on_transient(replica, now=0.0)
        monitor.record_success(replica)
        assert monitor.breaker_state(replica) is BreakerState.RETIRED

    def test_note_retry_tracks_the_per_op_high_water(self):
        monitor = _monitor()
        monitor.note_retry(1)
        monitor.note_retry(2)
        monitor.note_retry(1)
        assert monitor.max_op_retries == 2
        assert monitor.obs.counters()["cluster.heal.retries"] == 3


# ----------------------------------------------------------------------
# Self-healing cluster (integration)
# ----------------------------------------------------------------------


def _workload():
    return QueryWorkload(
        probes_per_day=6,
        scans_per_day=1,
        value_picker=lambda rng: rng.choice(VALUES),
        seed=3,
    )


def _build(
    *,
    n_shards=2,
    replication=2,
    selfheal=None,
    injectors=None,
):
    cfg = ClusterConfig(
        n_shards=n_shards,
        replication=replication,
        partitioner="hash",
        maintenance="staggered",
        max_concurrent_frac=0.5,
        selfheal=selfheal,
    )

    def factory(i):
        disk = FaultyDisk(injector=FaultInjector())
        if injectors is not None:
            injectors[i] = disk.injector
        return disk

    return ClusterSimulation(
        lambda: scheme_by_name("REINDEX")(W, N),
        make_store(LAST),
        queries=_workload(),
        cluster=cfg,
        device_factory=factory,
    )


def _final_answers(sim):
    lo, hi = LAST - W + 1, LAST
    probes = sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
    scan = sim.coordinator.scan(lo, hi)
    return probes, scan


def _assert_matches_twin(sim, twin):
    probes, scan = _final_answers(sim)
    twin_probes, twin_scan = _final_answers(twin)
    for mine, theirs in zip(probes, twin_probes):
        assert sorted(mine.record_ids) == sorted(theirs.record_ids)
        assert mine.missing_days == frozenset()
    assert sorted(e.record_id for e in scan.entries) == sorted(
        e.record_id for e in twin_scan.entries
    )
    assert not scan.missing_days


class TestReReplication:
    def test_killed_replica_is_rebuilt_to_full_replication(self):
        injectors = {}
        sim = _build(selfheal=SelfHealConfig(), injectors=injectors)
        twin = _build()
        sim.run_start()
        twin.run_start()
        victim = sim.shards[0].primary
        injectors[victim.device_index].fail_device()
        for day in range(W + 1, LAST + 1):
            sim.run_transition(day)
            twin.run_transition(day)
        # The kill retired the replica; the healer restored replication.
        assert victim.failed
        assert len(sim.shards[0].alive_replicas()) == 2
        assert sim.result.total_rebuilds() == 1
        rebuilt = sim.shards[0].alive_replicas()[-1]
        assert rebuilt.replica_id > victim.replica_id
        assert rebuilt.caught_up_day is not None
        counters = sim.obs.counters()
        assert counters["cluster.heal.rebuilds"] == 1
        assert counters["cluster.heal.rebuild_bytes"] > 0
        assert counters["cluster.heal.retired"] == 1
        # Never a dark day, never a diverging answer.
        assert all(not d.shards_unavailable for d in sim.result.days)
        assert sim.result.all_missing_days() == frozenset()
        _assert_matches_twin(sim, twin)

    def test_rebuild_contends_on_the_cluster_timeline(self):
        injectors = {}
        sim = _build(selfheal=SelfHealConfig(), injectors=injectors)
        sim.run_start()
        victim = sim.shards[0].primary
        injectors[victim.device_index].fail_device()
        sim.run_transition(W + 1)  # kill observed, replica retired
        stats = sim.run_transition(W + 2)  # rebuild day
        assert stats.rebuilds == 1
        (span,) = stats.rebuild_spans
        assert span > 0.0
        assert stats.rebuild_seconds == pytest.approx(span)
        # The donor fed the copy before starting its own maintenance,
        # so the rebuild stretches the day rather than hiding for free.
        assert stats.makespan_seconds >= span

    def test_aborted_rebuild_retries_with_a_fresh_spare_next_day(self):
        dead_spares_served = []

        def spare_factory(ordinal):
            injector = FaultInjector()
            if ordinal == 0:
                injector.fail_device()  # first spare is dead on arrival
            dead_spares_served.append(ordinal)
            return FaultyDisk(injector=injector)

        injectors = {}
        sim = _build(
            selfheal=SelfHealConfig(spare_factory=spare_factory),
            injectors=injectors,
        )
        twin = _build()
        sim.run_start()
        twin.run_start()
        victim = sim.shards[0].primary
        injectors[victim.device_index].fail_device()
        for day in range(W + 1, LAST + 1):
            sim.run_transition(day)
            twin.run_transition(day)
        # Day one of healing aborted on the dead spare (donor intact),
        # day two succeeded on a fresh one.
        assert sim.result.total_rebuilds_failed() == 1
        assert sim.result.total_rebuilds() == 1
        assert len(dead_spares_served) == 2
        assert len(sim.shards[0].alive_replicas()) == 2
        assert sim.obs.counters()["cluster.heal.rebuilds_failed"] == 1
        _assert_matches_twin(sim, twin)

    def test_crash_mid_rebuild_rolls_forward_same_day(self):
        def spare_factory(ordinal):
            return FaultyDisk(
                injector=FaultInjector(crash=CrashPoint(after_ios=2))
            )

        injectors = {}
        sim = _build(
            selfheal=SelfHealConfig(spare_factory=spare_factory),
            injectors=injectors,
        )
        twin = _build()
        sim.run_start()
        twin.run_start()
        victim = sim.shards[0].primary
        injectors[victim.device_index].fail_device()
        for day in range(W + 1, LAST + 1):
            sim.run_transition(day)
            twin.run_transition(day)
        # The crash cost a recovery pass, not the rebuild: the spare's
        # disk state survived, the copy swept and rolled forward.
        counters = sim.obs.counters()
        assert counters["cluster.heal.rebuild_crash_recoveries"] >= 1
        assert sim.result.total_rebuilds() == 1
        assert sim.result.total_rebuilds_failed() == 0
        assert len(sim.shards[0].alive_replicas()) == 2
        _assert_matches_twin(sim, twin)

    def test_acceptance_one_kill_per_shard_k4_r2(self):
        injectors = {}
        sim = _build(
            n_shards=4, selfheal=SelfHealConfig(), injectors=injectors
        )
        twin = _build(n_shards=4)
        sim.run_start()
        twin.run_start()
        kill_days = {W + 1 + s: s for s in range(4)}
        for day in range(W + 1, LAST + 1):
            shard_id = kill_days.get(day)
            if shard_id is not None:
                victim = sim.shards[shard_id].primary
                injectors[victim.device_index].fail_device()
            sim.run_transition(day)
            twin.run_transition(day)
        # Every shard lost a replica and got it back; no shard ever went
        # dark; every answer is bit-identical to the fault-free twin.
        assert sim.result.total_rebuilds() == 4
        for shard in sim.shards:
            assert len(shard.alive_replicas()) == 2
        assert all(not d.shards_unavailable for d in sim.result.days)
        assert sim.result.all_missing_days() == frozenset()
        assert sim.result.total_queries_degraded() == 0
        _assert_matches_twin(sim, twin)


class TestServingUnderTransients:
    def test_transient_burst_opens_breaker_and_routes_around(self):
        retry = RetryPolicy(max_attempts=3)
        injectors = {}
        sim = _build(
            selfheal=SelfHealConfig(retry=retry), injectors=injectors
        )
        twin = _build()
        sim.run(LAST)
        twin.run(LAST)
        flaky = sim.shards[0].primary
        injectors[flaky.device_index].transient_read_rate = 1.0
        probes, scan = _final_answers(sim)
        # The flaky replica exhausted its retry budget; the healthy one
        # answered in full — no degradation, no divergence.
        twin_probes, twin_scan = _final_answers(twin)
        for mine, theirs in zip(probes, twin_probes):
            assert sorted(mine.record_ids) == sorted(theirs.record_ids)
            assert mine.missing_days == frozenset()
        assert sorted(e.record_id for e in scan.entries) == sorted(
            e.record_id for e in twin_scan.entries
        )
        monitor = sim._monitor
        counters = sim.obs.counters()
        assert counters["cluster.heal.transients"] > 0
        assert counters["cluster.heal.breaker_opens"] >= 1
        assert counters["cluster.heal.retries"] > 0
        assert monitor.max_op_retries <= retry.max_attempts - 1
        assert probes.summary.aborted_seconds > 0.0
        # The flaky replica is quarantined, not retired — transients are
        # not a death sentence.
        assert not flaky.failed
        assert monitor.breaker_state(flaky) in (
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
        )

    def test_recovered_replica_closes_its_breaker(self):
        retry = RetryPolicy(max_attempts=3)
        injectors = {}
        sim = _build(
            selfheal=SelfHealConfig(retry=retry), injectors=injectors
        )
        sim.run(LAST)
        flaky = sim.shards[0].primary
        injectors[flaky.device_index].transient_read_rate = 1.0
        _final_answers(sim)
        monitor = sim._monitor
        assert sim.obs.counters()["cluster.heal.breaker_opens"] >= 1
        # The device heals; after the cooldown the next request probes
        # the half-open breaker, succeeds, and the replica is live again.
        injectors[flaky.device_index].transient_read_rate = 0.0
        monitor.now += 1000.0
        probes, _scan = _final_answers(sim)
        assert monitor.breaker_state(flaky) is BreakerState.LIVE
        assert sim.obs.counters()["cluster.heal.breaker_closes"] >= 1
        assert probes.summary.missing_days == frozenset()
