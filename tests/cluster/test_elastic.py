"""Elastic resharding: engine, autoscaler, and crash semantics.

The split/merge pipeline's contract — atomic swap, clean abort with the
old topology intact, roll-forward after the commit point — is pinned
here at unit scale; the exhaustive per-step fault matrix lives in
:mod:`repro.bench.topology_chaos`.
"""

import random

import pytest

from repro.cluster import (
    Autoscaler,
    ClusterConfig,
    ClusterSimulation,
    ElasticConfig,
    ReshardAborted,
    ScaleAction,
)
from repro.core.records import Record, RecordStore
from repro.core.schemes import scheme_by_name
from repro.errors import ClusterError, SimulatedCrash
from repro.sim.querygen import QueryWorkload, uniform_key_picker
from repro.storage.faults import FaultInjector, FaultyDisk

WINDOW = 4
N_INDEXES = 2
DOMAIN = 600
SPLITS = (200, 400)


def int_store(last_day: int, *, per_day: int = 10, seed: int = 3) -> RecordStore:
    rng = random.Random(seed)
    store = RecordStore()
    rid = 0
    for day in range(1, last_day + 1):
        records = [
            Record(rid := rid + 1, day, (rng.randint(1, DOMAIN),), nbytes=60)
            for _ in range(per_day)
        ]
        store.add_records(day, records)
    return store


def make_sim(
    store: RecordStore,
    *,
    elastic: ElasticConfig | None = None,
    faulty: bool = False,
    replication: int = 1,
    selfheal=None,
) -> ClusterSimulation:
    scheme_cls = scheme_by_name("REINDEX")
    serial = [0]

    def device(_: int) -> FaultyDisk:
        serial[0] += 1
        return FaultyDisk(injector=FaultInjector(900 + serial[0]))

    return ClusterSimulation(
        lambda: scheme_cls(WINDOW, N_INDEXES),
        store,
        queries=QueryWorkload(
            probes_per_day=8,
            value_picker=uniform_key_picker(DOMAIN),
            seed=21,
        ),
        cluster=ClusterConfig(
            n_shards=3,
            replication=replication,
            partitioner="range",
            range_splits=SPLITS,
            elastic=elastic,
            selfheal=selfheal,
        ),
        device_factory=device if faulty else None,
    )


def run_to(sim: ClusterSimulation, day: int) -> None:
    sim.run_start()
    for d in range(WINDOW + 1, day + 1):
        sim.run_transition(d)


class TestRequestAPI:
    def test_requests_require_elastic(self):
        sim = make_sim(int_store(WINDOW))
        with pytest.raises(ClusterError):
            sim.request_split(1)
        with pytest.raises(ClusterError):
            sim.request_merge(1)

    def test_pending_action_is_visible(self):
        sim = make_sim(
            int_store(WINDOW), elastic=ElasticConfig(autoscale=False)
        )
        assert sim.pending_action is None
        sim.request_split(1, reason="manual")
        assert sim.pending_action.kind == "split"
        assert sim.pending_action.shard_id == 1


class TestSplitUnderTraffic:
    def test_split_applies_and_serves_complete_answers(self):
        store = int_store(WINDOW + 3)
        sim = make_sim(store, elastic=ElasticConfig(autoscale=False))
        run_to(sim, WINDOW + 1)
        sim.request_split(1)
        sim.run_transition(WINDOW + 2)
        stats = sim.result.days[-1]
        assert stats.reshards == 1
        assert stats.reshard_kinds == ("split",)
        assert stats.n_shards == 4
        assert stats.topology_version == 1
        assert stats.queries_degraded == 0
        assert not stats.shards_unavailable
        # The routing table and the shard list agree after the swap.
        assert sim.partitioner.n_shards == 4
        assert [s.shard_id for s in sim.shards] == [0, 1, 2, 3]
        sim.run_transition(WINDOW + 3)
        assert sim.result.days[-1].queries_degraded == 0
        counters = sim.obs.counters()
        assert counters["cluster.elastic.splits"] == 1
        assert counters["cluster.topology.swaps"] == 1
        assert counters["cluster.elastic.bytes_copied"] > 0

    def test_split_children_own_disjoint_key_ranges(self):
        store = int_store(WINDOW + 2)
        sim = make_sim(store, elastic=ElasticConfig(autoscale=False))
        run_to(sim, WINDOW + 1)
        sim.request_split(1)
        sim.run_transition(WINDOW + 2)
        part = sim.partitioner
        journal = sim.elastic.journals[-1]
        assert journal.phase == "done"
        # The journal records the chosen key (stringified for the JSON
        # mirror); it separates the two children exactly.
        key = int(journal.split_key)
        assert part.shard_for(key - 1) == 1
        assert part.shard_for(key) == 2

    def test_retired_parent_series_preserved(self):
        store = int_store(WINDOW + 2)
        sim = make_sim(store, elastic=ElasticConfig(autoscale=False))
        run_to(sim, WINDOW + 1)
        n_days_before = len(sim.result.shard_results[1].days)
        sim.request_split(1)
        sim.run_transition(WINDOW + 2)
        assert len(sim.result.retired_shard_results) == 1
        assert len(sim.result.retired_shard_results[0].days) == n_days_before


class TestMergeUnderTraffic:
    def test_merge_applies_cleanly(self):
        store = int_store(WINDOW + 2)
        sim = make_sim(store, elastic=ElasticConfig(autoscale=False))
        run_to(sim, WINDOW + 1)
        sim.request_merge(1)
        sim.run_transition(WINDOW + 2)
        stats = sim.result.days[-1]
        assert stats.reshards == 1
        assert stats.reshard_kinds == ("merge",)
        assert stats.n_shards == 2
        assert stats.queries_degraded == 0
        assert sim.partitioner.n_shards == 2
        assert sim.obs.counters()["cluster.elastic.merges"] == 1


class TestCrashSemantics:
    def _crash_at(self, match, last_day: int):
        store = int_store(last_day)
        sim = make_sim(
            store, elastic=ElasticConfig(autoscale=False), faulty=True
        )
        run_to(sim, WINDOW + 1)
        sim.request_split(1)

        def hook(step):
            if match(step):
                raise SimulatedCrash(f"test crash at {step.name}")

        sim.elastic.on_step = hook
        sim.run_transition(WINDOW + 2)
        sim.elastic.on_step = None
        return sim

    def test_crash_before_swap_aborts_with_old_topology_serving(self):
        # The first copy step is strictly before the commit point.
        sim = self._crash_at(
            lambda s: s.name.startswith("copy:"), WINDOW + 3
        )
        stats = sim.result.days[-1]
        assert stats.reshards == 0
        assert stats.reshards_aborted == 1
        assert stats.n_shards == 3
        assert stats.topology_version == 0
        assert stats.queries_degraded == 0
        assert not stats.shards_unavailable
        journal = sim.elastic.journals[-1]
        assert journal.phase == "aborted"
        # No orphan extents leak onto the provisioned target devices.
        for index in journal.target_devices:
            assert sim.array.devices[index].live_bytes == 0
        # The action stays queued and lands on the retry.
        assert sim.pending_action is not None
        sim.run_transition(WINDOW + 3)
        assert sim.result.days[-1].reshards == 1
        assert sim.result.days[-1].n_shards == 4
        assert sim.pending_action is None

    def test_crash_at_cleanup_rolls_forward_same_day(self):
        # The cleanup step runs after the SWAPPED commit point: the new
        # topology is already routing, so the crash must not undo it.
        sim = self._crash_at(lambda s: s.name == "cleanup", WINDOW + 2)
        stats = sim.result.days[-1]
        assert stats.reshards == 1
        assert stats.n_shards == 4
        assert stats.queries_degraded == 0
        journal = sim.elastic.journals[-1]
        assert journal.phase == "done"
        counters = sim.obs.counters()
        assert counters["cluster.elastic.crash_recoveries"] == 1


class TestAbortReasons:
    def test_no_spare_budget_aborts_and_retries(self):
        store = int_store(WINDOW + 2)
        sim = make_sim(
            store,
            elastic=ElasticConfig(
                autoscale=False, spare_budget_per_day=0
            ),
        )
        run_to(sim, WINDOW + 1)
        sim.request_split(1)
        sim.run_transition(WINDOW + 2)
        stats = sim.result.days[-1]
        assert stats.reshards_aborted == 1
        assert stats.n_shards == 3
        assert sim.pending_action is not None
        assert sim.elastic.journals[-1].phase == "aborted"
        assert sim.obs.counters()["cluster.elastic.no_spare"] == 1

    def test_dark_source_aborts(self):
        store = int_store(WINDOW + 1)
        sim = make_sim(store, elastic=ElasticConfig(autoscale=False))
        run_to(sim, WINDOW + 1)
        for replica in sim.shards[1].replicas:
            replica.failed = True
        with pytest.raises(ReshardAborted) as excinfo:
            sim.elastic.execute(
                ScaleAction(kind="split", shard_id=1), day=WINDOW + 2
            )
        assert excinfo.value.reason == "dark-source"

    def test_abort_reason_surfaces_in_day_stats(self):
        # The day-stats `reshard_deferred` field carries the abort
        # reason, so operators can see *why* a queued change is waiting.
        store = int_store(WINDOW + 2)
        sim = make_sim(
            store,
            elastic=ElasticConfig(
                autoscale=False, spare_budget_per_day=0
            ),
        )
        run_to(sim, WINDOW + 1)
        sim.request_split(1)
        sim.run_transition(WINDOW + 2)
        assert sim.result.days[-1].reshard_deferred == "no-spare"


class TestAutoscalerPolicy:
    def test_proposes_split_of_hot_shard(self):
        scaler = Autoscaler(ElasticConfig(split_load_factor=2.0))
        decision = scaler.propose(
            day=9,
            busy_seconds=[1.0, 10.0, 1.0],
            requests=[5, 50, 5],
            under_replicated=False,
            last_action_day=None,
        )
        assert decision.queued is not None
        assert decision.queued.kind == "split"
        assert decision.queued.shard_id == 1

    def test_under_replication_defers_everything(self):
        scaler = Autoscaler(ElasticConfig())
        decision = scaler.propose(
            day=9,
            busy_seconds=[1.0, 10.0, 1.0],
            requests=[5, 50, 5],
            under_replicated=True,
            last_action_day=None,
        )
        assert decision.queued is None
        assert decision.deferred_reason == "under-replicated"

    def test_cooldown_observes_only(self):
        scaler = Autoscaler(ElasticConfig(cooldown_days=2))
        decision = scaler.propose(
            day=9,
            busy_seconds=[1.0, 10.0, 1.0],
            requests=[5, 50, 5],
            under_replicated=False,
            last_action_day=8,
        )
        assert decision.queued is None
        assert decision.deferred_reason == "cooldown"

    def test_max_shards_caps_splits(self):
        scaler = Autoscaler(ElasticConfig(max_shards=3))
        decision = scaler.propose(
            day=9,
            busy_seconds=[1.0, 10.0, 1.0],
            requests=[5, 50, 5],
            under_replicated=False,
            last_action_day=None,
        )
        assert decision.queued is None

    def test_proposes_merge_of_coldest_pair(self):
        scaler = Autoscaler(
            ElasticConfig(merge_load_factor=0.4, min_shards=2)
        )
        decision = scaler.propose(
            day=9,
            busy_seconds=[0.05, 0.05, 5.0, 5.0],
            requests=[1, 1, 40, 40],
            under_replicated=False,
            last_action_day=None,
        )
        assert decision.queued is not None
        assert decision.queued.kind == "merge"
        assert decision.queued.shard_id == 0

    def test_min_shards_blocks_merges(self):
        # The (0, 1) pair is cold enough to merge, but k == min_shards;
        # max_shards == k keeps the hot shard from proposing a split so
        # the merge guard is the one being exercised.
        scaler = Autoscaler(
            ElasticConfig(
                merge_load_factor=0.9, min_shards=3, max_shards=3
            )
        )
        decision = scaler.propose(
            day=9,
            busy_seconds=[0.05, 0.05, 1.0],
            requests=[1, 1, 10],
            under_replicated=False,
            last_action_day=None,
        )
        assert decision.queued is None
        scaler_loose = Autoscaler(
            ElasticConfig(
                merge_load_factor=0.9, min_shards=2, max_shards=3
            )
        )
        relaxed = scaler_loose.propose(
            day=9,
            busy_seconds=[0.05, 0.05, 1.0],
            requests=[1, 1, 10],
            under_replicated=False,
            last_action_day=None,
        )
        assert relaxed.queued is not None
        assert relaxed.queued.kind == "merge"

    def test_split_tiebreak_is_deterministic(self):
        scaler = Autoscaler(ElasticConfig(split_load_factor=1.5))
        decision = scaler.propose(
            day=9,
            busy_seconds=[8.0, 8.0, 0.1, 0.1],
            requests=[10, 10, 1, 1],
            under_replicated=False,
            last_action_day=None,
        )
        # Equal busy-seconds: the lower shard id wins, every run.
        assert decision.queued.shard_id == 0


class TestElasticOffByDefault:
    def test_day_stats_stay_inert_without_elastic(self):
        store = int_store(WINDOW + 2)
        sim = make_sim(store)
        run_to(sim, WINDOW + 2)
        stats = sim.result.days[-1]
        assert stats.reshards == 0
        assert stats.reshards_aborted == 0
        assert stats.reshard_deferred is None
        assert stats.autoscaler is None
        assert sim.elastic is None
