"""Shard rebalancing: cross-device moves, cost charging, cache safety.

The move is a packed-shadow-style copy charged to both devices' clocks.
The cache-safety suite is the regression net for a subtle hazard: the
move frees the source extents, and if the page cache kept their pages, a
later allocation recycling those byte offsets could be served stale data.
Extent-identity keys plus free-time invalidation must make that
impossible — asserted here end to end through the rebalance path.
"""

import pytest

from repro.cluster import ClusterConfig, ClusterSimulation, copy_index_to
from repro.core.schemes import scheme_by_name
from repro.sim.querygen import QueryWorkload
from repro.storage.disk import SimulatedDisk
from tests.conftest import make_store

W, N, LAST = 8, 2, 12
VALUES = "abcdefgh"


def _workload():
    return QueryWorkload(
        probes_per_day=4,
        scans_per_day=1,
        value_picker=lambda rng: rng.choice(VALUES),
        seed=3,
    )


def _build(page_cache_bytes=None):
    return ClusterSimulation(
        lambda: scheme_by_name("REINDEX")(W, N),
        make_store(LAST),
        queries=_workload(),
        cluster=ClusterConfig(
            n_shards=2,
            replication=1,
            page_cache_bytes=page_cache_bytes,
            page_size=1 << 10 if page_cache_bytes else None,
        ),
    )


class TestCopyIndexTo:
    def test_copy_preserves_postings_and_packs(self):
        sim = _build()
        sim.run(LAST)
        replica = sim.shards[0].primary
        name, index = next(iter(replica.wave.bindings.items()))
        target = SimulatedDisk()
        clone = copy_index_to(index, target)
        assert clone.disk is target
        assert clone.name == index.name
        assert clone.time_set == index.time_set

        def postings(ix):
            return sorted(
                (b.value, e.record_id, e.day)
                for b in ix.buckets()
                for e in b.entries
            )

        assert postings(clone) == postings(index)
        if postings(index):
            assert clone.packed
            assert clone.allocated_bytes == clone.used_bytes
        # The source index is untouched — the caller does the swap.
        assert index.allocated_bytes > 0 or not postings(index)

    def test_copy_charges_both_device_clocks(self):
        sim = _build()
        sim.run(LAST)
        replica = sim.shards[0].primary
        index = max(
            replica.wave.bindings.values(), key=lambda ix: ix.used_bytes
        )
        target = SimulatedDisk()
        source_before = replica.device.clock
        copy_index_to(index, target)
        assert replica.device.clock > source_before
        assert target.clock > 0.0


class TestRebalanceShard:
    def test_move_keeps_answers_and_frees_source(self):
        sim = _build()
        sim.run(LAST)
        lo, hi = LAST - W + 1, LAST
        before = sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
        source = sim.array.devices[0]
        source_live_before = source.live_bytes
        report = sim.rebalance_shard(0, to_device=1)
        assert report.from_device == 0
        assert report.to_device == 1
        assert report.indexes_moved > 0
        assert report.bytes_moved > 0
        assert report.seconds > 0.0
        assert report.source_read_seconds > 0.0
        assert report.target_write_seconds > 0.0
        # The shard's bytes left the source device...
        assert source.live_bytes < source_live_before
        replica = sim.shards[0].replicas[0]
        assert replica.device is sim.array.devices[1]
        assert replica.device_index == 1
        # ...and every answer survives the move bit for bit.
        after = sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
        for mine, theirs in zip(after, before):
            assert mine.record_ids == theirs.record_ids
            assert mine.missing_days == theirs.missing_days

    def test_maintenance_continues_on_target_device(self):
        sim = _build()
        sim.run_start()
        sim.rebalance_shard(0, to_device=1)
        target = sim.array.devices[1]
        clock_before = target.clock
        sim.run_transition(W + 1)
        assert target.clock > clock_before
        sim.array.check_invariants()

    def test_move_to_same_device_rejected(self):
        from repro.errors import ClusterError

        sim = _build()
        sim.run_start()
        with pytest.raises(ClusterError):
            sim.rebalance_shard(0, to_device=0)
        with pytest.raises(ClusterError):
            sim.rebalance_shard(0, to_device=99)
        with pytest.raises(ClusterError):
            sim.rebalance_shard(99, to_device=1)


class TestCacheInvalidationOnMove:
    def test_freed_extents_leave_no_resident_pages(self):
        sim = _build(page_cache_bytes=1 << 20)
        sim.run(LAST)
        source = sim.array.devices[0]
        cache = source.page_cache
        lo, hi = LAST - W + 1, LAST
        # Warm the source cache through real serving.
        sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
        sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
        assert cache.resident_pages > 0
        old_extents = [
            ix._shared_extent
            for ix in sim.shards[0].replicas[0].wave.bindings.values()
            if ix._shared_extent is not None
        ]
        sim.rebalance_shard(0, to_device=1)
        # Shard 0 was this device's only tenant: nothing may remain.
        assert cache.resident_pages == 0
        for extent in old_extents:
            assert not extent.live

    def test_recycled_offsets_never_serve_stale_pages(self):
        # The satellite-3 hazard: free a cached extent via the move, then
        # reallocate the same byte range at a *different offset alignment*
        # and read it.  Offset-aware (extent-identity) tracking must treat
        # the new extent as cold — first read misses, no stale hits.
        sim = _build(page_cache_bytes=1 << 20)
        sim.run(LAST)
        source = sim.array.devices[0]
        cache = source.page_cache
        lo, hi = LAST - W + 1, LAST
        sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
        sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])
        old_offsets = {
            ix._shared_extent.offset
            for ix in sim.shards[0].replicas[0].wave.bindings.values()
            if ix._shared_extent is not None
        }
        sim.rebalance_shard(0, to_device=1)
        # Reallocate over the freed byte range (first-fit reuses the
        # lowest freed offsets) shifted by a half page.
        fresh = source.allocate(4 << 10)
        assert any(
            fresh.offset <= off < fresh.end or fresh.offset >= off
            for off in old_offsets
        )
        before = cache.snapshot()
        source.read(fresh, 2 << 10, offset=512)
        delta = cache.snapshot() - before
        assert delta.hits == 0
        assert delta.misses > 0
        # A re-read of the same pages now hits — the cache still works,
        # it just never lied about the recycled space.
        before = cache.snapshot()
        source.read(fresh, 2 << 10, offset=512)
        delta = cache.snapshot() - before
        assert delta.misses == 0
        assert delta.hits > 0
