"""Single-shard equivalence guarantee of the cluster simulation.

A ``k=1, r=1`` cluster with lockstep maintenance is architecturally the
serialized driver wearing a coordinator hat: one store (the partition is
the identity), one device, one scheme instance, maintenance from time
zero, queries served in order after it.  This suite pins that down as a
*bit-identical* guarantee over every scheme and technique — the cluster
benchmark's scaling claims are only meaningful if the k=1 baseline is
the very same simulator.
"""

import pytest

from repro.cluster import ClusterConfig, run_cluster_simulation
from repro.core.schemes import scheme_by_name
from repro.index.updates import UpdateTechnique
from repro.sim.driver import Simulation, run_simulation
from repro.sim.querygen import QueryWorkload
from tests.conftest import make_store

ALL_CLI_SCHEMES = (
    "DEL",
    "REINDEX",
    "REINDEX+",
    "REINDEX++",
    "WATA*",
    "RATA*",
    "WATA(table4)",
)

#: One shard, one replica, everything-at-once maintenance: the
#: serialized driver's world.
SINGLE = ClusterConfig(n_shards=1, replication=1, maintenance="lockstep")


def _workload() -> QueryWorkload:
    return QueryWorkload(
        probes_per_day=5,
        scans_per_day=2,
        value_picker=lambda rng: rng.choice("abcdefgh"),
        seed=3,
    )


class TestSingleShardEquivalence:
    @pytest.mark.parametrize("name", ALL_CLI_SCHEMES)
    def test_every_scheme_reproduces_serialized_result(self, name):
        W, n, last = 10, 4, 16
        scheme_cls = scheme_by_name(name)
        serialized = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
        )
        cluster = run_cluster_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
            cluster=SINGLE,
        )
        assert cluster.n_shards == 1
        assert cluster.shard_results[0] == serialized

    @pytest.mark.parametrize(
        "technique",
        [
            UpdateTechnique.IN_PLACE,
            UpdateTechnique.SIMPLE_SHADOW,
            UpdateTechnique.PACKED_SHADOW,
        ],
    )
    def test_equivalence_holds_per_technique(self, technique):
        W, n, last = 8, 2, 13
        scheme_cls = scheme_by_name("DEL")
        serialized = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            technique=technique,
            queries=_workload(),
        )
        cluster = run_cluster_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            technique=technique,
            queries=_workload(),
            cluster=SINGLE,
        )
        assert cluster.shard_results[0] == serialized

    def test_equivalence_without_queries(self):
        W, n, last = 8, 3, 12
        scheme_cls = scheme_by_name("REINDEX+")
        serialized = run_simulation(
            lambda: scheme_cls(W, n), make_store(last), last_day=last
        )
        cluster = run_cluster_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            cluster=SINGLE,
        )
        assert cluster.shard_results[0] == serialized

    def test_query_results_match_single_index_probes(self):
        # Beyond costs: the coordinator's answers over the finished
        # cluster must equal the single wave index's answers element
        # by element.
        W, n, last = 10, 4, 16
        scheme_cls = scheme_by_name("REINDEX")
        store = make_store(last)
        single = Simulation(scheme_cls(W, n), make_store(last))
        single.run(last)
        from repro.cluster.sim import ClusterSimulation

        sim = ClusterSimulation(
            lambda: scheme_cls(W, n), store, cluster=SINGLE
        )
        sim.run(last)
        lo, hi = last - W + 1, last
        probes = [(v, lo, hi) for v in "abcdefgh"]
        expected = single.wave.probe_many(probes)
        got = sim.coordinator.probe_many(probes)
        assert len(got) == len(expected)
        for mine, theirs in zip(got, expected):
            assert mine.record_ids == theirs.record_ids
            assert mine.missing_days == theirs.missing_days
        scan_mine = sim.coordinator.scan(lo, hi)
        scan_theirs = single.wave.timed_segment_scan(lo, hi)
        assert sorted(e.record_id for e in scan_mine.entries) == sorted(
            e.record_id for e in scan_theirs.entries
        )
        assert scan_mine.covered_days == scan_theirs.covered_days

    def test_staggered_single_shard_is_still_identical(self):
        # With one shard there is exactly one batch, so staggered and
        # lockstep coincide.
        W, n, last = 8, 2, 12
        scheme_cls = scheme_by_name("DEL")
        serialized = run_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
        )
        cluster = run_cluster_simulation(
            lambda: scheme_cls(W, n),
            make_store(last),
            last_day=last,
            queries=_workload(),
            cluster=ClusterConfig(
                n_shards=1, replication=1, maintenance="staggered"
            ),
        )
        assert cluster.shard_results[0] == serialized
