"""Rebalancing under faults: a move that dies must change nothing.

:func:`move_replica` copies first and swaps only once every clone has
landed, so a device kill, a simulated crash, or space exhaustion at any
point of the copy phase must (a) leave the source replica byte-for-byte
intact and still serving, and (b) sweep every orphaned extent off the
target — a half-moved shard is indistinguishable from an unmoved one.
"""

import pytest

from repro.cluster import ClusterConfig, ClusterSimulation, move_replica
from repro.core.schemes import scheme_by_name
from repro.errors import DeviceFailure, OutOfSpaceError, SimulatedCrash
from repro.sim.querygen import QueryWorkload
from repro.storage.faults import CrashPoint, FaultInjector, FaultyDisk
from tests.conftest import make_store

W, N, LAST = 8, 2, 12
VALUES = "abcdefgh"


def _workload():
    return QueryWorkload(
        probes_per_day=4,
        scans_per_day=1,
        value_picker=lambda rng: rng.choice(VALUES),
        seed=3,
    )


def _build(injectors=None):
    def factory(i):
        disk = FaultyDisk(injector=FaultInjector())
        if injectors is not None:
            injectors[i] = disk.injector
        return disk

    return ClusterSimulation(
        lambda: scheme_by_name("REINDEX")(W, N),
        make_store(LAST),
        queries=_workload(),
        cluster=ClusterConfig(n_shards=2, replication=1),
        device_factory=factory,
    )


def _answers(sim):
    lo, hi = LAST - W + 1, LAST
    return sim.coordinator.probe_many([(v, lo, hi) for v in VALUES])


def _postings(wave):
    return {
        name: sorted(
            (b.value, e.record_id, e.day)
            for b in index.buckets()
            for e in b.entries
        )
        for name, index in wave.bindings.items()
    }


class TestMoveUnderFaults:
    def test_target_kill_mid_copy_leaves_source_intact(self):
        sim = _build()
        sim.run(LAST)
        replica = sim.shards[0].replicas[0]
        before_postings = _postings(replica.wave)
        before = _answers(sim)
        target = FaultyDisk(
            injector=FaultInjector(fail_device_after_ios=1)
        )
        index = sim.array.add_device(target)
        with pytest.raises(DeviceFailure):
            move_replica(replica, target, index)
        # The swap never happened: same device, same bindings, and the
        # half-written clones were swept off the target.
        assert replica.device is sim.array.devices[0]
        assert replica.device_index == 0
        assert _postings(replica.wave) == before_postings
        assert target.live_bytes == 0
        after = _answers(sim)
        for mine, theirs in zip(after, before):
            assert mine.record_ids == theirs.record_ids
            assert mine.missing_days == frozenset()

    def test_crash_mid_copy_sweeps_target_and_retry_succeeds(self):
        sim = _build()
        sim.run(LAST)
        replica = sim.shards[0].replicas[0]
        before_postings = _postings(replica.wave)
        before = _answers(sim)
        target = FaultyDisk(
            injector=FaultInjector(crash=CrashPoint(after_ios=1))
        )
        index = sim.array.add_device(target)
        with pytest.raises(SimulatedCrash):
            move_replica(replica, target, index)
        # Disk state survives a process crash; the cleanup swept every
        # orphan extent, so the target is as empty as before the move.
        assert target.live_bytes == 0
        assert _postings(replica.wave) == before_postings
        # After a restart (disarm) the same move completes and answers
        # survive bit for bit.
        target.injector.disarm()
        report = move_replica(replica, target, index)
        assert report.indexes_moved > 0
        assert replica.device is target
        assert replica.device_index == index
        assert _postings(replica.wave) == before_postings
        sim.array.check_invariants()
        after = _answers(sim)
        for mine, theirs in zip(after, before):
            assert mine.record_ids == theirs.record_ids
            assert mine.missing_days == frozenset()

    def test_source_crash_mid_copy_leaves_both_sides_clean(self):
        injectors = {}
        sim = _build(injectors=injectors)
        sim.run(LAST)
        replica = sim.shards[0].replicas[0]
        before_postings = _postings(replica.wave)
        source_live = replica.device.live_bytes
        target = FaultyDisk(injector=FaultInjector())
        index = sim.array.add_device(target)
        injectors[0].arm_crash(CrashPoint(after_ios=1))
        with pytest.raises(SimulatedCrash):
            move_replica(replica, target, index)
        injectors[0].disarm()
        assert _postings(replica.wave) == before_postings
        assert replica.device.live_bytes == source_live
        assert target.live_bytes == 0
        sim.array.check_invariants()

    def test_undersized_target_aborts_cleanly(self):
        sim = _build()
        sim.run(LAST)
        replica = sim.shards[0].replicas[0]
        before_postings = _postings(replica.wave)
        target = FaultyDisk(
            injector=FaultInjector(space_limit_bytes=64)
        )
        index = sim.array.add_device(target)
        with pytest.raises(OutOfSpaceError):
            move_replica(replica, target, index)
        assert _postings(replica.wave) == before_postings
        assert target.live_bytes == 0
        assert replica.device is sim.array.devices[0]
        sim.array.check_invariants()
