"""Self-healing vs. elastic resharding: who gets the spares.

Replica rebuilds and topology changes provision devices from one
:class:`~repro.cluster.sim.SparePool`.  The contention rule is
deterministic: the elastic engine runs first each day but *defers*
whenever any shard is under-replicated, so on a contended day the
rebuild takes the spare and the topology change retries the next day —
redundancy outranks rebalancing.
"""

import random

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    ElasticConfig,
    SelfHealConfig,
)
from repro.core.records import Record, RecordStore
from repro.core.schemes import scheme_by_name
from repro.sim.querygen import QueryWorkload, uniform_key_picker
from repro.storage.faults import FaultInjector, FaultyDisk

WINDOW = 4
N_INDEXES = 2
DOMAIN = 600
SPLITS = (200, 400)


def int_store(last_day: int, *, per_day: int = 10, seed: int = 5) -> RecordStore:
    rng = random.Random(seed)
    store = RecordStore()
    rid = 0
    for day in range(1, last_day + 1):
        records = [
            Record(rid := rid + 1, day, (rng.randint(1, DOMAIN),), nbytes=60)
            for _ in range(per_day)
        ]
        store.add_records(day, records)
    return store


def make_sim(store: RecordStore, *, elastic: ElasticConfig) -> ClusterSimulation:
    scheme_cls = scheme_by_name("REINDEX")
    serial = [0]

    def device(_: int) -> FaultyDisk:
        serial[0] += 1
        return FaultyDisk(injector=FaultInjector(700 + serial[0]))

    return ClusterSimulation(
        lambda: scheme_cls(WINDOW, N_INDEXES),
        store,
        queries=QueryWorkload(
            probes_per_day=6,
            value_picker=uniform_key_picker(DOMAIN),
            seed=17,
        ),
        cluster=ClusterConfig(
            n_shards=3,
            replication=2,
            partitioner="range",
            range_splits=SPLITS,
            elastic=elastic,
            selfheal=SelfHealConfig(),
        ),
        device_factory=device,
    )


def run_to(sim: ClusterSimulation, day: int) -> None:
    sim.run_start()
    for d in range(WINDOW + 1, day + 1):
        sim.run_transition(d)


class TestHealerWins:
    def test_under_replication_defers_the_split_until_healed(self):
        sim = make_sim(
            int_store(WINDOW + 3), elastic=ElasticConfig(autoscale=False)
        )
        run_to(sim, WINDOW + 1)
        # A replica dies and a split is queued for the same day.
        sim.shards[1].replicas[1].failed = True
        sim.request_split(1)
        stats = sim.run_transition(WINDOW + 2)
        # The rebuild ran; the topology change waited its turn.
        assert stats.rebuilds == 1
        assert stats.reshards == 0
        assert stats.reshard_deferred == "under-replicated"
        assert stats.n_shards == 3
        assert sim.pending_action is not None
        assert sim.obs.counters()["cluster.elastic.deferred"] == 1
        # Fully replicated again: the split lands the next day.
        follow = sim.run_transition(WINDOW + 3)
        assert follow.reshards == 1
        assert follow.n_shards == 4
        assert sim.pending_action is None
        # Nobody went dark while the two subsystems took turns.
        assert all(
            not d.shards_unavailable
            for d in sim.result.days
        )

    def test_healthy_cluster_runs_the_split_immediately(self):
        sim = make_sim(
            int_store(WINDOW + 2), elastic=ElasticConfig(autoscale=False)
        )
        run_to(sim, WINDOW + 1)
        sim.request_split(1)
        stats = sim.run_transition(WINDOW + 2)
        assert stats.reshards == 1
        assert stats.reshard_deferred is None


class TestSpareBudget:
    def test_budget_denial_defers_the_second_rebuild(self):
        sim = make_sim(
            int_store(WINDOW + 3),
            elastic=ElasticConfig(
                autoscale=False, spare_budget_per_day=1
            ),
        )
        run_to(sim, WINDOW + 1)
        # Two shards lose a replica on the same day; the budget covers
        # one spare, so one rebuild runs and the other is deferred.
        sim.shards[0].replicas[1].failed = True
        sim.shards[2].replicas[1].failed = True
        stats = sim.run_transition(WINDOW + 2)
        assert stats.rebuilds == 1
        counters = sim.obs.counters()
        assert counters["cluster.heal.rebuilds_deferred"] == 1
        # The fresh budget covers the remaining shard the next day.
        follow = sim.run_transition(WINDOW + 3)
        assert follow.rebuilds == 1
        assert all(
            len(shard.alive_replicas()) == 2 for shard in sim.shards
        )

    def test_split_budget_is_all_or_nothing(self):
        # A split needs 2 x replication devices; a budget of one below
        # that denies the whole acquisition and leaves the day's budget
        # for the healer instead of stranding a half-provisioned change.
        sim = make_sim(
            int_store(WINDOW + 3),
            elastic=ElasticConfig(
                autoscale=False, spare_budget_per_day=3
            ),
        )
        run_to(sim, WINDOW + 1)
        sim.shards[1].replicas[1].failed = True
        sim.request_split(0)
        stats = sim.run_transition(WINDOW + 2)
        # Deferred for under-replication first; once healed the next
        # day, 4 spares are needed but only 3 remain — clean abort.
        assert stats.reshard_deferred == "under-replicated"
        assert stats.rebuilds == 1
        follow = sim.run_transition(WINDOW + 3)
        assert follow.reshards_aborted == 1
        assert follow.reshard_deferred == "no-spare"
        assert follow.n_shards == 3
        assert sim.obs.counters()["cluster.elastic.no_spare"] == 1
