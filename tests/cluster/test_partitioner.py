"""Partitioner unit + property tests.

The hypothesis suites pin the two partitioners' contracts: the hash
partitioner keeps shard loads balanced for arbitrary key sets (no shard
ever carries more than a constant factor of the mean), and the range
partitioner's mapping is monotone non-decreasing in the key with split
points landing exactly on shard boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
    partition_store,
)
from repro.errors import ClusterError
from tests.conftest import make_store


class TestHashPartitioner:
    def test_is_a_partitioner(self):
        assert isinstance(HashPartitioner(4), Partitioner)

    def test_deterministic_and_in_range(self):
        p = HashPartitioner(5)
        for v in ["a", "b", 7, ("x", 1)]:
            s = p.shard_for(v)
            assert 0 <= s < 5
            assert p.shard_for(v) == s

    def test_rejects_zero_shards(self):
        with pytest.raises(ClusterError):
            HashPartitioner(0)

    def test_describe_is_json_friendly(self):
        import json

        assert json.dumps(HashPartitioner(3).describe())

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        k=st.integers(min_value=2, max_value=8),
    )
    def test_balance_bound_over_random_key_sets(self, seed, k):
        # Max shard load stays within 1.5x the mean for a 500-key set —
        # CRC32 spreads arbitrary string keys evenly enough that no
        # shard becomes a hotspot.
        p = HashPartitioner(k)
        n_keys = 500
        loads = [0] * k
        for i in range(n_keys):
            loads[p.shard_for(f"k{seed}:{i}")] += 1
        assert sum(loads) == n_keys
        assert max(loads) <= 1.5 * (n_keys / k)


class TestRangePartitioner:
    def test_split_points_are_boundaries(self):
        p = RangePartitioner([10, 20])
        assert p.n_shards == 3
        assert p.shard_for(9) == 0
        assert p.shard_for(10) == 1
        assert p.shard_for(19) == 1
        assert p.shard_for(20) == 2
        assert p.shard_for(10**9) == 2

    def test_rejects_unordered_or_empty_splits(self):
        with pytest.raises(ClusterError):
            RangePartitioner([])
        with pytest.raises(ClusterError):
            RangePartitioner([3, 3])
        with pytest.raises(ClusterError):
            RangePartitioner([5, 2])
        with pytest.raises(ClusterError):
            RangePartitioner([1, "b"])

    def test_incomparable_value_raises(self):
        p = RangePartitioner(["m"])
        with pytest.raises(ClusterError):
            p.shard_for(object())

    @settings(max_examples=50, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=-(10**6), max_value=10**6),
            min_size=1,
            max_size=7,
            unique=True,
        ),
        values=st.lists(
            st.integers(min_value=-(10**6) - 10, max_value=10**6 + 10),
            min_size=2,
            max_size=50,
        ),
    )
    def test_shard_for_is_monotone_in_the_key(self, splits, values):
        p = RangePartitioner(sorted(splits))
        shards = [p.shard_for(v) for v in sorted(values)]
        assert all(a <= b for a, b in zip(shards, shards[1:]))
        assert all(0 <= s < p.n_shards for s in shards)

    @settings(max_examples=30, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    def test_non_monotone_splits_always_rejected(self, splits):
        ordered = sorted(splits)
        shuffled = list(reversed(ordered))
        assert shuffled != ordered
        with pytest.raises(ClusterError):
            RangePartitioner(shuffled)


class TestMakePartitioner:
    def test_hash_kind(self):
        assert isinstance(make_partitioner("hash", 4), HashPartitioner)

    def test_range_kind_needs_matching_splits(self):
        p = make_partitioner("range", 3, range_splits=["h", "p"])
        assert isinstance(p, RangePartitioner)
        with pytest.raises(ClusterError):
            make_partitioner("range", 3, range_splits=["h"])
        with pytest.raises(ClusterError):
            make_partitioner("range", 3)

    def test_single_shard_range_needs_no_splits(self):
        assert make_partitioner("range", 1).n_shards == 1

    def test_unknown_kind(self):
        with pytest.raises(ClusterError):
            make_partitioner("modulo", 2)


class TestPartitionStore:
    def test_single_shard_is_identity(self):
        store = make_store(6)
        assert partition_store(store, HashPartitioner(1)) == [store]

    def test_every_shard_sees_every_day(self):
        store = make_store(8)
        shards = partition_store(store, HashPartitioner(3))
        assert len(shards) == 3
        for shard_store in shards:
            assert shard_store.days == store.days

    def test_values_land_on_their_owning_shard_only(self):
        store = make_store(8)
        p = HashPartitioner(3)
        shards = partition_store(store, p)
        for shard_id, shard_store in enumerate(shards):
            for day in shard_store.days:
                for record in shard_store.batch(day).records:
                    assert record.values
                    assert all(
                        p.shard_for(v) == shard_id for v in record.values
                    )

    def test_union_of_shards_covers_every_posting(self):
        store = make_store(8)
        shards = partition_store(store, HashPartitioner(4))
        want = set()
        for day in store.days:
            for record in store.batch(day).records:
                for v in record.values:
                    want.add((record.record_id, day, v))
        got = set()
        for shard_store in shards:
            for day in shard_store.days:
                for record in shard_store.batch(day).records:
                    for v in record.values:
                        got.add((record.record_id, day, v))
        assert got == want
