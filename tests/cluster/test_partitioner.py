"""Partitioner unit + property tests.

The hypothesis suites pin the two partitioners' contracts: the hash
partitioner keeps shard loads balanced for arbitrary key sets (no shard
ever carries more than a constant factor of the mean), and the range
partitioner's mapping is monotone non-decreasing in the key with split
points landing exactly on shard boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    SlotHashPartitioner,
    make_partitioner,
    partition_store,
    reshard_id_mapping,
)
from repro.errors import ClusterError
from tests.conftest import make_store


class TestHashPartitioner:
    def test_is_a_partitioner(self):
        assert isinstance(HashPartitioner(4), Partitioner)

    def test_deterministic_and_in_range(self):
        p = HashPartitioner(5)
        for v in ["a", "b", 7, ("x", 1)]:
            s = p.shard_for(v)
            assert 0 <= s < 5
            assert p.shard_for(v) == s

    def test_rejects_zero_shards(self):
        with pytest.raises(ClusterError):
            HashPartitioner(0)

    def test_describe_is_json_friendly(self):
        import json

        assert json.dumps(HashPartitioner(3).describe())

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        k=st.integers(min_value=2, max_value=8),
    )
    def test_balance_bound_over_random_key_sets(self, seed, k):
        # Max shard load stays within 1.5x the mean for a 500-key set —
        # CRC32 spreads arbitrary string keys evenly enough that no
        # shard becomes a hotspot.
        p = HashPartitioner(k)
        n_keys = 500
        loads = [0] * k
        for i in range(n_keys):
            loads[p.shard_for(f"k{seed}:{i}")] += 1
        assert sum(loads) == n_keys
        assert max(loads) <= 1.5 * (n_keys / k)


class TestRangePartitioner:
    def test_split_points_are_boundaries(self):
        p = RangePartitioner([10, 20])
        assert p.n_shards == 3
        assert p.shard_for(9) == 0
        assert p.shard_for(10) == 1
        assert p.shard_for(19) == 1
        assert p.shard_for(20) == 2
        assert p.shard_for(10**9) == 2

    def test_rejects_unordered_or_empty_splits(self):
        with pytest.raises(ClusterError):
            RangePartitioner([])
        with pytest.raises(ClusterError):
            RangePartitioner([3, 3])
        with pytest.raises(ClusterError):
            RangePartitioner([5, 2])
        with pytest.raises(ClusterError):
            RangePartitioner([1, "b"])

    def test_incomparable_value_raises(self):
        p = RangePartitioner(["m"])
        with pytest.raises(ClusterError):
            p.shard_for(object())

    @settings(max_examples=50, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=-(10**6), max_value=10**6),
            min_size=1,
            max_size=7,
            unique=True,
        ),
        values=st.lists(
            st.integers(min_value=-(10**6) - 10, max_value=10**6 + 10),
            min_size=2,
            max_size=50,
        ),
    )
    def test_shard_for_is_monotone_in_the_key(self, splits, values):
        p = RangePartitioner(sorted(splits))
        shards = [p.shard_for(v) for v in sorted(values)]
        assert all(a <= b for a, b in zip(shards, shards[1:]))
        assert all(0 <= s < p.n_shards for s in shards)

    @settings(max_examples=30, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    def test_non_monotone_splits_always_rejected(self, splits):
        ordered = sorted(splits)
        shuffled = list(reversed(ordered))
        assert shuffled != ordered
        with pytest.raises(ClusterError):
            RangePartitioner(shuffled)


class TestRangeSplitMerge:
    def test_split_inserts_a_boundary(self):
        p = RangePartitioner([10, 20]).split(1, key=15)
        assert p.n_shards == 4
        assert p.shard_for(14) == 1
        assert p.shard_for(15) == 2
        assert p.shard_for(20) == 3

    def test_split_rejects_key_on_lower_boundary(self):
        # key == lo would leave the left child with an empty range.
        with pytest.raises(ClusterError):
            RangePartitioner([10, 20]).split(1, key=10)

    def test_split_rejects_key_at_or_past_upper_boundary(self):
        with pytest.raises(ClusterError):
            RangePartitioner([10, 20]).split(1, key=20)
        with pytest.raises(ClusterError):
            RangePartitioner([10, 20]).split(1, key=25)

    def test_single_value_integer_range_cannot_split(self):
        # [7, 8) holds exactly one integer: no interior split point.
        p = RangePartitioner([7, 8])
        for key in (7, 8):
            with pytest.raises(ClusterError):
                p.split(1, key=key)

    def test_split_requires_a_key(self):
        with pytest.raises(ClusterError):
            RangePartitioner([10]).split(0)

    def test_split_rejects_bad_shard_id(self):
        with pytest.raises(ClusterError):
            RangePartitioner([10]).split(2, key=20)

    def test_merge_removes_the_boundary(self):
        p = RangePartitioner([10, 20]).merge_with_next(0)
        assert p.n_shards == 2
        assert p.shard_for(5) == 0
        assert p.shard_for(15) == 0
        assert p.shard_for(20) == 1

    def test_merge_below_two_shards_rejected(self):
        p = RangePartitioner([10])
        assert p.n_shards == 2
        with pytest.raises(ClusterError):
            p.merge_with_next(0)

    def test_merge_needs_a_next_neighbour(self):
        with pytest.raises(ClusterError):
            RangePartitioner([10, 20]).merge_with_next(2)

    @settings(max_examples=60, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        shard_id=st.integers(min_value=0, max_value=6),
        offset=st.integers(min_value=-1500, max_value=1500),
        values=st.lists(
            st.integers(min_value=-1100, max_value=1100),
            min_size=4,
            max_size=40,
        ),
    )
    def test_split_then_inverse_merge_is_identity(
        self, splits, shard_id, offset, values
    ):
        # For any legal split, merging the two children back routes every
        # value exactly as before, and routing stays monotone throughout.
        p = RangePartitioner(sorted(splits))
        shard_id %= p.n_shards
        key = offset
        try:
            split = p.split(shard_id, key=key)
        except ClusterError:
            return  # key outside the shard's open interval: rejected
        assert split.n_shards == p.n_shards + 1
        shards = [split.shard_for(v) for v in sorted(values)]
        assert all(a <= b for a, b in zip(shards, shards[1:]))
        merged = split.merge_with_next(shard_id)
        for v in values:
            assert merged.shard_for(v) == p.shard_for(v)

    @settings(max_examples=60, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=2,
            max_size=6,
            unique=True,
        ),
        shard_id=st.integers(min_value=0, max_value=5),
        values=st.lists(
            st.integers(min_value=-1100, max_value=1100),
            min_size=4,
            max_size=40,
        ),
    )
    def test_merge_routes_monotone_and_fuses_neighbours(
        self, splits, shard_id, values
    ):
        p = RangePartitioner(sorted(splits))
        shard_id %= p.n_shards - 1
        merged = p.merge_with_next(shard_id)
        assert merged.n_shards == p.n_shards - 1
        shards = [merged.shard_for(v) for v in sorted(values)]
        assert all(a <= b for a, b in zip(shards, shards[1:]))
        for v in values:
            old = p.shard_for(v)
            want = old if old <= shard_id else old - 1
            assert merged.shard_for(v) == want


class TestSlotHashPartitioner:
    def test_balanced_covers_all_shards(self):
        p = SlotHashPartitioner.balanced(3, n_slots=8)
        assert p.n_shards == 3
        owned = [p.owned_slots(s) for s in range(3)]
        assert sorted(slot for slots in owned for slot in slots) == list(
            range(8)
        )

    def test_split_moves_only_own_slots(self):
        p = SlotHashPartitioner.balanced(3, n_slots=12)
        before = {v: p.shard_for(v) for v in range(500)}
        split = p.split(1)
        assert split.n_shards == 4
        for v, old in before.items():
            new = split.shard_for(v)
            if old == 1:
                assert new in (1, 2)
            elif old > 1:
                assert new == old + 1  # shifted, not rerouted
            else:
                assert new == old

    def test_split_single_slot_shard_rejected(self):
        p = SlotHashPartitioner((0, 1))
        with pytest.raises(ClusterError):
            p.split(0)

    def test_merge_is_split_inverse(self):
        p = SlotHashPartitioner.balanced(4, n_slots=16)
        round_trip = p.split(2).merge_with_next(2)
        for v in range(500):
            assert round_trip.shard_for(v) == p.shard_for(v)

    def test_merge_needs_neighbour(self):
        p = SlotHashPartitioner.balanced(2, n_slots=4)
        with pytest.raises(ClusterError):
            p.merge_with_next(1)

    def test_make_partitioner_kind(self):
        p = make_partitioner("slot-hash", 4)
        assert isinstance(p, SlotHashPartitioner)
        assert p.describe()["kind"] == "slot-hash"


class TestReshardIdMapping:
    def test_split_shifts_up_above(self):
        assert reshard_id_mapping("split", 1, 4) == {0: 0, 2: 3, 3: 4}

    def test_merge_shifts_down_above(self):
        assert reshard_id_mapping("merge", 1, 4) == {0: 0, 3: 2}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ClusterError):
            reshard_id_mapping("rotate", 0, 3)


class TestMakePartitioner:
    def test_hash_kind(self):
        assert isinstance(make_partitioner("hash", 4), HashPartitioner)

    def test_range_kind_needs_matching_splits(self):
        p = make_partitioner("range", 3, range_splits=["h", "p"])
        assert isinstance(p, RangePartitioner)
        with pytest.raises(ClusterError):
            make_partitioner("range", 3, range_splits=["h"])
        with pytest.raises(ClusterError):
            make_partitioner("range", 3)

    def test_single_shard_range_needs_no_splits(self):
        assert make_partitioner("range", 1).n_shards == 1

    def test_unknown_kind(self):
        with pytest.raises(ClusterError):
            make_partitioner("modulo", 2)


class TestPartitionStore:
    def test_single_shard_is_identity(self):
        store = make_store(6)
        assert partition_store(store, HashPartitioner(1)) == [store]

    def test_every_shard_sees_every_day(self):
        store = make_store(8)
        shards = partition_store(store, HashPartitioner(3))
        assert len(shards) == 3
        for shard_store in shards:
            assert shard_store.days == store.days

    def test_values_land_on_their_owning_shard_only(self):
        store = make_store(8)
        p = HashPartitioner(3)
        shards = partition_store(store, p)
        for shard_id, shard_store in enumerate(shards):
            for day in shard_store.days:
                for record in shard_store.batch(day).records:
                    assert record.values
                    assert all(
                        p.shard_for(v) == shard_id for v in record.values
                    )

    def test_union_of_shards_covers_every_posting(self):
        store = make_store(8)
        shards = partition_store(store, HashPartitioner(4))
        want = set()
        for day in store.days:
            for record in store.batch(day).records:
                for v in record.values:
                    want.add((record.record_id, day, v))
        got = set()
        for shard_store in shards:
            for day in shard_store.days:
                for record in shard_store.batch(day).records:
                    for v in record.values:
                        got.add((record.record_id, day, v))
        assert got == want


class TestShardsForMany:
    """Batched routing must be element-identical to per-value routing."""

    values = st.lists(
        st.one_of(
            st.text(max_size=8),
            st.integers(min_value=-1000, max_value=1000),
            st.tuples(st.text(max_size=3), st.integers()),
        ),
        max_size=50,
    )

    @settings(max_examples=100, deadline=None)
    @given(values=values, k=st.integers(min_value=1, max_value=6))
    def test_hash_matches_shard_for(self, values, k):
        p = HashPartitioner(k)
        assert p.shards_for_many(values) == [
            p.shard_for(v) for v in values
        ]

    @settings(max_examples=100, deadline=None)
    @given(values=values, k=st.integers(min_value=1, max_value=6))
    def test_slot_hash_matches_shard_for(self, values, k):
        p = SlotHashPartitioner.balanced(k, 16)
        assert p.shards_for_many(values) == [
            p.shard_for(v) for v in values
        ]

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=-100, max_value=100), max_size=50
        ),
        splits=st.lists(
            st.integers(min_value=-80, max_value=80),
            min_size=1,
            max_size=5,
            unique=True,
        ).map(sorted),
    )
    def test_range_matches_shard_for(self, values, splits):
        p = RangePartitioner(tuple(splits))
        assert p.shards_for_many(values) == [
            p.shard_for(v) for v in values
        ]

    def test_unhashable_values_fall_back_to_per_value_routing(self):
        # The routing memo keys on the value; unhashable values (lists)
        # must still route rather than raise TypeError.
        p = HashPartitioner(4)
        mixed = ["a", [1, 2], "b", [1, 2], {"k": 1}]
        assert p.shards_for_many(mixed) == [
            p.shard_for(v) for v in mixed
        ]

    def test_memo_survives_repeat_batches(self):
        p = SlotHashPartitioner.balanced(3, 8)
        batch = ["x", "y", "x", "z"]
        first = p.shards_for_many(batch)
        assert p.shards_for_many(batch) == first
        assert p.shards_for_many(list(reversed(batch))) == list(
            reversed(first)
        )

    def test_empty_batch(self):
        assert HashPartitioner(3).shards_for_many([]) == []

    def test_split_partitioner_does_not_inherit_stale_memo(self):
        # split() returns a *new* partitioner; routings cached on the
        # parent must not leak into the child's different topology.
        parent = SlotHashPartitioner.balanced(2, 8)
        keys = [f"k{i}" for i in range(32)]
        parent.shards_for_many(keys)  # warm the parent's memo
        child = parent.split(0)
        assert child.shards_for_many(keys) == [
            child.shard_for(k) for k in keys
        ]
