"""Shared fixtures for the advisor suite: integer-keyed stores."""

from __future__ import annotations

import random

from repro.core.records import Record, RecordStore


def make_int_store(
    num_days: int,
    *,
    domain: int = 16,
    per_day: int = 8,
    seed: int = 3,
    record_bytes: int = 64,
) -> RecordStore:
    """A deterministic store of single-valued integer-keyed records.

    Matches the key type :func:`repro.sim.querygen.uniform_key_picker`
    draws, so probe workloads actually hit.
    """
    rng = random.Random(seed)
    store = RecordStore()
    rid = 0
    for day in range(1, num_days + 1):
        records = []
        for _ in range(per_day):
            records.append(
                Record(rid, day, (rng.randint(1, domain),), nbytes=record_bytes)
            )
            rid += 1
        store.add_records(day, records)
    return store
