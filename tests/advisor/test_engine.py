"""The advisor engine end to end inside a live cluster simulation."""

from repro.advisor import AdvisorConfig
from repro.cluster import ClusterConfig, ClusterSimulation, ElasticConfig
from repro.core.schemes import scheme_by_name
from repro.sim.querygen import QueryWorkload, uniform_key_picker
from tests.advisor.helpers import make_int_store

WINDOW = 6
LAST = WINDOW + 8


def _probe_heavy() -> QueryWorkload:
    return QueryWorkload(
        probes_per_day=200,
        value_picker=uniform_key_picker(16),
        seed=5,
    )


def _advisor(**overrides) -> AdvisorConfig:
    base = dict(
        observe_days=1,
        cooldown_days=30,
        amortization_days=30,
        hysteresis=0.05,
    )
    base.update(overrides)
    return AdvisorConfig(**base)


def _run(advisor, *, elastic=None, replication=1, last=LAST):
    # Probe-heavy traffic against a DEL/6 start: the model wants fewer
    # constituents, so the advisor must retune.
    scheme_cls = scheme_by_name("DEL")
    sim = ClusterSimulation(
        lambda: scheme_cls(WINDOW, WINDOW),
        make_int_store(last, domain=16, seed=3),
        queries=_probe_heavy(),
        cluster=ClusterConfig(
            n_shards=1,
            replication=replication,
            maintenance="lockstep",
            advisor=advisor,
            elastic=elastic,
        ),
    )
    sim.run(last)
    return sim


class TestRetuneExecution:
    def test_probe_heavy_traffic_triggers_a_committed_retune(self):
        sim = _run(_advisor())
        total = sum(d.retunes for d in sim.result.days)
        assert total == 1
        assert sim.obs.counter("cluster.advisor.retunes").value == 1
        # The replica really is running the new design now.
        replica = sim.shards[0].replicas[0]
        assert replica.scheme is not None
        assert replica.scheme.n_indexes < WINDOW

    def test_decision_lands_the_day_after_it_is_made(self):
        sim = _run(_advisor())
        retune_days = [d.day for d in sim.result.days if d.retunes]
        # Decisions happen at day-end boundaries and execute at the start
        # of the NEXT day; the start day's traffic decides at earliest at
        # the end of day W, landing the retune on day W+1 or later.
        assert retune_days
        assert retune_days[0] >= WINDOW + 1

    def test_designs_are_reported_in_day_stats(self):
        sim = _run(_advisor())
        last = sim.result.days[-1]
        assert last.designs is not None
        (label,) = last.designs.values()
        scheme_name, n = label.rsplit("/", 1)
        assert scheme_name == "DEL"
        assert int(n) < WINDOW

    def test_retune_span_is_charged_to_the_day(self):
        sim = _run(_advisor())
        charged = [d for d in sim.result.days if d.retunes]
        assert charged
        assert all(d.retune_seconds > 0.0 for d in charged)
        assert all(
            d.maintenance_makespan_seconds >= d.retune_seconds
            for d in charged
        )

    def test_advisor_answers_match_the_static_twin(self):
        tuned = _run(_advisor())
        frozen = _run(None)
        probes = [(v, LAST - WINDOW + 1, LAST) for v in range(1, 17)]
        scans = [(LAST - WINDOW + 1, LAST), (LAST, LAST)]

        def canon(sim):
            out = []
            for r in sim.coordinator.probe_many(probes).results:
                out.append((sorted(r.entries), sorted(r.missing_days)))
            for r in sim.coordinator.scan_many(scans).results:
                out.append((sorted(r.entries), sorted(r.covered_days)))
            return out

        assert canon(tuned) == canon(frozen)


class TestSpareContention:
    def test_no_spare_aborts_and_requeues(self):
        elastic = ElasticConfig(
            autoscale=False, min_shards=1, spare_budget_per_day=0
        )
        sim = _run(_advisor(), elastic=elastic)
        assert sum(d.retunes for d in sim.result.days) == 0
        assert sum(d.retunes_aborted for d in sim.result.days) >= 1
        assert sim.obs.counter("cluster.advisor.no_spare").value >= 1
        # The decision stayed queued rather than being dropped.
        assert sim._retune_queue

    def test_one_spare_per_day_limits_throughput_not_outcome(self):
        elastic = ElasticConfig(
            autoscale=False, min_shards=1, spare_budget_per_day=1
        )
        sim = _run(_advisor(), elastic=elastic, replication=1)
        assert sum(d.retunes for d in sim.result.days) == 1


class TestBudget:
    def test_max_retunes_per_day_caps_execution(self):
        sim = _run(_advisor(max_retunes_per_day=1), replication=2)
        for day in sim.result.days:
            assert day.retunes <= 1
        # Both replicas eventually converge, one day at a time.
        assert sum(d.retunes for d in sim.result.days) == 2


class TestJournal:
    def test_committed_retunes_leave_done_journals(self):
        journals = []
        from repro.advisor.engine import AdvisorEngine

        scheme_cls = scheme_by_name("DEL")
        sim2 = ClusterSimulation(
            lambda: scheme_cls(WINDOW, WINDOW),
            make_int_store(LAST, domain=16, seed=3),
            queries=_probe_heavy(),
            cluster=ClusterConfig(
                n_shards=1,
                replication=1,
                maintenance="lockstep",
                advisor=_advisor(),
            ),
        )
        sim2.advisor = AdvisorEngine(
            sim2, journal_sink=lambda j: journals.append(j.to_dict())
        )
        sim2.run(LAST)
        assert sum(d.retunes for d in sim2.result.days) == 1
        assert journals
        assert journals[-1]["phase"] == "done"
        phases = [j["phase"] for j in journals]
        for required in ("planned", "copying", "copied", "catchup",
                         "swapped", "done"):
            assert required in phases
