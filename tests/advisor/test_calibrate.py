"""Substrate calibration for the advisor's cost model."""

import pytest

from repro.advisor import calibrate_parameters
from repro.core.records import RecordStore
from repro.index.config import IndexConfig
from tests.advisor.helpers import make_int_store


class TestCalibrate:
    def test_measures_positive_constants(self):
        params = calibrate_parameters(
            make_int_store(10), IndexConfig(), window=6
        )
        assert params.window == 6
        impl = params.implementation
        assert impl.build_s > 0.0
        assert impl.add_s > 0.0
        assert impl.s_prime_bytes >= 1.0
        assert params.application.s_bytes >= 1.0
        assert params.application.c_bytes >= 1.0
        # Growth factor must be model-legal (> 1) even when the index
        # config uses exact sizing.
        assert impl.g > 1.0

    def test_workload_half_is_left_zeroed(self):
        # The planner overlays the observed mix per shard; calibration
        # must not bake one in.
        params = calibrate_parameters(
            make_int_store(10), IndexConfig(), window=6
        )
        assert params.application.probe_num == 0.0
        assert params.application.scan_num == 0.0

    def test_is_deterministic(self):
        a = calibrate_parameters(make_int_store(10), IndexConfig(), window=6)
        b = calibrate_parameters(make_int_store(10), IndexConfig(), window=6)
        assert a == b

    def test_short_store_still_calibrates(self):
        params = calibrate_parameters(
            make_int_store(2), IndexConfig(), window=6, sample_days=3
        )
        assert params.implementation.build_s > 0.0

    def test_empty_store_is_rejected(self):
        with pytest.raises(ValueError):
            calibrate_parameters(RecordStore(), IndexConfig(), window=6)

    def test_bad_sample_days_is_rejected(self):
        with pytest.raises(ValueError):
            calibrate_parameters(
                make_int_store(5), IndexConfig(), window=6, sample_days=0
            )

    def test_feeds_the_analytic_model(self):
        # The calibrated parameters must be usable end to end: pricing a
        # design through steady_state is the planner's hot path.
        from repro.analysis.daycount import steady_state
        from repro.core.schemes import scheme_by_name
        from repro.index.updates import UpdateTechnique

        params = calibrate_parameters(
            make_int_store(10), IndexConfig(), window=6
        ).with_overrides(probe_num=50.0, scan_num=2.0)
        scheme_cls = scheme_by_name("DEL")
        averages = steady_state(
            lambda: scheme_cls(6, 2),
            params,
            UpdateTechnique.SIMPLE_SHADOW,
            measure_cycles=1,
        )
        assert averages.total_work_s > 0.0
