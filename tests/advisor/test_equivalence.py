"""Advisor-off defaults and divergent routing preserve every answer.

Two regression guarantees, checked by running twins rather than by
inspecting code:

* ``ClusterConfig()`` still defaults to ``advisor=None``, and an
  advisor-off cluster is bit-identical to the serialized driver at
  ``k=1`` — the equivalence the pre-advisor suites pinned, re-asserted
  here against the wired-up simulation.
* Divergent replicas answer bit-identically to an advisor-off uniform
  cluster: per-replica designs change the *price* of an answer, never
  its content, whichever twin the router picks.
"""

from repro.advisor import AdvisorConfig
from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    run_cluster_simulation,
)
from repro.core.schemes import scheme_by_name
from repro.sim.driver import run_simulation
from repro.sim.querygen import QueryWorkload, uniform_key_picker
from tests.advisor.helpers import make_int_store

WINDOW = 6
LAST = WINDOW + 8
DOMAIN = 16


def _workload(seed=5):
    return QueryWorkload(
        probes_per_day=40,
        scans_per_day=10,
        value_picker=uniform_key_picker(DOMAIN),
        seed=seed,
    )


def _canon(sim):
    lo = LAST - WINDOW + 1
    probes = [(v, lo, LAST) for v in range(1, DOMAIN + 1)]
    scans = [(lo, LAST), (LAST, LAST), (lo + 1, LAST - 1)]
    out = []
    for r in sim.coordinator.probe_many(probes).results:
        out.append((sorted(r.entries), sorted(r.missing_days)))
    for r in sim.coordinator.scan_many(scans).results:
        out.append(
            (sorted(r.entries), sorted(r.covered_days), sorted(r.missing_days))
        )
    return out


class TestAdvisorOffDefaults:
    def test_default_config_has_no_advisor(self):
        assert ClusterConfig().advisor is None

    def test_advisor_off_cluster_still_equals_serialized_driver(self):
        scheme_cls = scheme_by_name("DEL")
        serialized = run_simulation(
            lambda: scheme_cls(WINDOW, 3),
            make_int_store(LAST, domain=DOMAIN),
            last_day=LAST,
            queries=_workload(),
        )
        cluster = run_cluster_simulation(
            lambda: scheme_cls(WINDOW, 3),
            make_int_store(LAST, domain=DOMAIN),
            last_day=LAST,
            queries=_workload(),
            cluster=ClusterConfig(
                n_shards=1, replication=1, maintenance="lockstep"
            ),
        )
        assert cluster.shard_results[0] == serialized

    def test_advisor_none_runs_no_observation_machinery(self):
        scheme_cls = scheme_by_name("DEL")
        sim = ClusterSimulation(
            lambda: scheme_cls(WINDOW, 3),
            make_int_store(LAST, domain=DOMAIN),
            queries=_workload(),
            cluster=ClusterConfig(
                n_shards=1, replication=1, maintenance="lockstep"
            ),
        )
        sim.run(LAST)
        assert sim.advisor is None
        assert sim.router is None
        advisor_counters = [
            name
            for name in sim.obs.counters()
            if name.startswith("advisor.") or ".advisor." in name
        ]
        assert advisor_counters == []
        assert all(d.retunes == 0 for d in sim.result.days)
        assert all(d.designs is None for d in sim.result.days)


class TestDivergentBitIdentity:
    def _run(self, advisor):
        scheme_cls = scheme_by_name("DEL")
        sim = ClusterSimulation(
            lambda: scheme_cls(WINDOW, 3),
            make_int_store(LAST, domain=DOMAIN, per_day=32),
            queries=QueryWorkload(
                probes_per_day=60,
                scans_per_day=40,
                scan_newest_only=True,
                value_picker=uniform_key_picker(DOMAIN),
                seed=5,
            ),
            cluster=ClusterConfig(
                n_shards=1,
                replication=2,
                maintenance="lockstep",
                advisor=advisor,
            ),
        )
        sim.run(LAST)
        return sim

    def test_divergent_answers_match_the_uniform_twin(self):
        tuned = self._run(
            AdvisorConfig(
                observe_days=1,
                cooldown_days=30,
                amortization_days=30,
                hysteresis=0.05,
                divergent=True,
            )
        )
        frozen = self._run(None)
        # The runs genuinely diverged in design...
        assert sum(d.retunes for d in tuned.result.days) >= 1
        # ...yet every canonicalized answer is identical.
        assert _canon(tuned) == _canon(frozen)

    def test_divergent_twins_really_hold_different_designs(self):
        tuned = self._run(
            AdvisorConfig(
                observe_days=1,
                cooldown_days=30,
                amortization_days=30,
                hysteresis=0.05,
                divergent=True,
            )
        )
        designs = tuned.result.days[-1].designs
        assert designs is not None
        assert len(set(designs.values())) >= 2
