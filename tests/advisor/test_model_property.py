"""Property: the model's ranking tracks the simulator's measurements.

The advisor is only as good as its cost model's *ordering* — it never
needs exact seconds, but the design it ranks best must not be far from
the design the simulator would actually measure best.  Hypothesis draws
probe/scan mixes; for each we rank candidates with the calibrated
planner, then run every candidate through the real measured simulator
and require the model's pick to cost within :data:`TOLERANCE` of the
true optimum.

The tolerance is 35%: the model prices the *steady-state analytic cycle*
(Section 5) while the simulator charges actual seeks, bucket growth and
shadow copies day by day, and the worst observed divergence across the
full mix grid is ~26% (a near-tie between REINDEX+ and WATA* under a
light mixed load).  A model pick costing >35% over optimum would mean
the ranking, not just the estimate, has drifted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advisor import (
    AdvisorConfig,
    CostModelPlanner,
    Design,
    calibrate_parameters,
)
from repro.advisor.observer import ShardObservation
from repro.core.schemes import scheme_by_name
from repro.index.config import IndexConfig
from repro.sim.driver import run_simulation
from repro.sim.querygen import QueryWorkload, uniform_key_picker
from tests.advisor.helpers import make_int_store

#: Model-pick cost may exceed the simulator-measured optimum by this
#: factor, never more (see module docstring for why 35%).
TOLERANCE = 1.35

WINDOW = 4
LAST = 9
DOMAIN = 16

#: A spread of the design space: thin/fat DEL, full REINDEX+, WATA*.
CANDIDATES = (
    ("DEL", 1),
    ("DEL", 2),
    ("DEL", 4),
    ("REINDEX+", 4),
    ("WATA*", 2),
)


def _store():
    return make_int_store(LAST, domain=DOMAIN, seed=3)


def _measured_cost(name, n, probes, scans, newest):
    """Ground truth: run the design on the measured simulator."""
    workload = QueryWorkload(
        probes_per_day=probes,
        scans_per_day=scans,
        scan_newest_only=newest,
        value_picker=uniform_key_picker(DOMAIN),
        seed=5,
    )
    scheme_cls = scheme_by_name(name)
    result = run_simulation(
        lambda: scheme_cls(WINDOW, n),
        _store(),
        last_day=LAST,
        queries=workload,
    )
    # Skip the start day: it builds the whole window at once and is the
    # same for every design.
    return sum(d.total_work_seconds for d in result.days[1:])


@settings(max_examples=12, deadline=None)
@given(
    probes=st.sampled_from([0, 5, 30, 120, 400]),
    scans=st.sampled_from([0, 2, 10, 40]),
    newest=st.booleans(),
)
def test_model_ranked_best_is_near_simulator_best(probes, scans, newest):
    if probes == 0 and scans == 0:
        return  # the planner abstains on zero traffic; nothing to rank
    params = calibrate_parameters(_store(), IndexConfig(), window=WINDOW)
    planner = CostModelPlanner(params, AdvisorConfig(observe_days=1))
    obs = ShardObservation(
        shard_id=0,
        days=1,
        probes_per_day=float(probes),
        scans_per_day=float(scans),
        newest_fraction=1.0 if newest else 0.0,
        requests_per_day=float(probes + scans),
        top_value_share=1.0 / DOMAIN,
    )
    ranked = min(
        CANDIDATES,
        key=lambda d: planner.predict(Design(d[0], d[1], "simple_shadow"), obs),
    )
    costs = {
        d: _measured_cost(d[0], d[1], probes, scans, newest)
        for d in CANDIDATES
    }
    optimum = min(costs.values())
    assert costs[ranked] <= optimum * TOLERANCE, (
        f"model picked {ranked} at {costs[ranked]:.3f}s but the simulator "
        f"optimum is {optimum:.3f}s (> {TOLERANCE}x off) for "
        f"probes={probes} scans={scans} newest={newest}"
    )
