"""The cost-model planner: candidate grid, hysteresis, cooldown."""

import pytest

from repro.advisor import AdvisorConfig, CostModelPlanner, Design
from repro.advisor.observer import ShardObservation
from repro.analysis.parameters import SCAM_PARAMETERS

WINDOW = 6


def _planner(**overrides) -> CostModelPlanner:
    config = AdvisorConfig(**overrides)
    return CostModelPlanner(SCAM_PARAMETERS.with_window(WINDOW), config)


def _obs(probes=50.0, scans=5.0, *, days=2, newest=0.0) -> ShardObservation:
    return ShardObservation(
        shard_id=0,
        days=days,
        probes_per_day=probes,
        scans_per_day=scans,
        newest_fraction=newest,
        requests_per_day=probes + scans,
        top_value_share=0.1,
    )


class TestCandidates:
    def test_grid_is_schemes_times_legal_n(self):
        planner = _planner()
        labels = {(d.scheme, d.n_indexes) for d in planner.candidates()}
        # Default n grid at W=6: {1, 2, 3, 6}; WATA* needs n >= 2.
        assert ("DEL", 1) in labels
        assert ("DEL", 6) in labels
        assert ("WATA*", 2) in labels
        assert ("WATA*", 1) not in labels

    def test_explicit_n_grid_is_respected(self):
        planner = _planner(candidate_n=(2,))
        assert {d.n_indexes for d in planner.candidates()} == {2}

    def test_never_exceeds_window(self):
        planner = _planner(candidate_n=(1, 2, WINDOW, WINDOW + 5))
        assert all(d.n_indexes <= WINDOW for d in planner.candidates())


class TestPredict:
    def test_costs_are_positive_and_cached(self):
        planner = _planner()
        design = Design("DEL", 2, "simple_shadow")
        first = planner.predict(design, _obs())
        assert first > 0.0
        assert planner.predict(design, _obs()) == first
        assert len(planner._cost_cache) == 1

    def test_workload_changes_the_prediction(self):
        planner = _planner()
        design = Design("DEL", 2, "simple_shadow")
        light = planner.predict(design, _obs(probes=1.0, scans=0.0))
        heavy = planner.predict(design, _obs(probes=500.0, scans=0.0))
        assert heavy > light

    def test_switch_charge_amortizes_a_window_rebuild(self):
        planner = _planner(amortization_days=7)
        params = planner.params
        expected = WINDOW * params.implementation.build_s / 7
        assert planner.switch_charge_s == pytest.approx(expected)


class TestReplicaView:
    def test_uniform_mode_sees_everything(self):
        planner = _planner(divergent=False)
        obs = _obs(probes=10.0, scans=4.0)
        assert planner.replica_view(obs, 1, 2) is obs

    def test_single_replica_sees_everything_even_divergent(self):
        planner = _planner(divergent=True)
        obs = _obs()
        assert planner.replica_view(obs, 0, 1) is obs

    def test_divergent_twins_split_by_access_type(self):
        planner = _planner(divergent=True)
        obs = _obs(probes=10.0, scans=4.0)
        probe_twin = planner.replica_view(obs, 0, 2)
        scan_twin = planner.replica_view(obs, 1, 2)
        assert probe_twin.probes_per_day == 10.0
        assert probe_twin.scans_per_day == 0.0
        assert scan_twin.probes_per_day == 0.0
        assert scan_twin.scans_per_day == 4.0


class TestDecide:
    CURRENT = Design("DEL", 6, "simple_shadow")

    def test_abstains_during_warmup(self):
        planner = _planner(observe_days=3)
        assert planner.decide(0, 0, 9, self.CURRENT, _obs(days=2)) is None

    def test_abstains_on_zero_traffic(self):
        planner = _planner()
        quiet = _obs(probes=0.0, scans=0.0)
        assert planner.decide(0, 0, 9, self.CURRENT, quiet) is None

    def test_switches_away_from_a_bad_design_under_probes(self):
        # Heavy probing makes DEL/6 a bad incumbent under the SCAM
        # constants; the planner must move, and only to a challenger
        # whose charged cost clears the hysteresis margin.
        planner = _planner(hysteresis=0.05, amortization_days=30)
        decision = planner.decide(
            0, 0, 9, self.CURRENT, _obs(probes=500.0, scans=0.0)
        )
        assert decision is not None
        assert decision.target != self.CURRENT
        assert decision.switch_charge_s > 0.0
        assert decision.predicted_target_s < (
            decision.predicted_current_s * (1.0 - planner.config.hysteresis)
        )

    def test_cooldown_blocks_back_to_back_retunes(self):
        planner = _planner(hysteresis=0.05, amortization_days=30,
                           cooldown_days=3)
        heavy = _obs(probes=500.0, scans=0.0)
        assert planner.decide(0, 0, 9, self.CURRENT, heavy) is not None
        assert planner.decide(0, 0, 10, self.CURRENT, heavy) is None
        assert planner.decide(0, 0, 12, self.CURRENT, heavy) is not None

    def test_total_hysteresis_never_switches(self):
        planner = _planner(hysteresis=0.99)
        heavy = _obs(probes=500.0, scans=0.0)
        assert planner.decide(0, 0, 9, self.CURRENT, heavy) is None

    def test_hysteresis_bounds_are_enforced(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            AdvisorConfig(hysteresis=1.0)

    def test_incumbent_already_best_holds(self):
        planner = _planner(hysteresis=0.05)
        probe_best = _planner(hysteresis=0.05, amortization_days=30).decide(
            0, 0, 9, self.CURRENT, _obs(probes=500.0, scans=0.0)
        )
        assert probe_best is not None
        decision = planner.decide(
            0, 0, 9, probe_best.target, _obs(probes=500.0, scans=0.0)
        )
        assert decision is None
