"""The workload observer: counters in, windowed observations out."""

import pytest

from repro.advisor.observer import (
    VALUE_TRACK_LIMIT,
    ShardObservation,
    WorkloadObserver,
)
from repro.obs import MetricsRegistry


def _publish(registry, shard_id, *, probes=0, scans=0, newest=0, values=()):
    prefix = f"advisor.shard{shard_id}."
    registry.counter(prefix + "requests").inc(probes + scans)
    registry.counter(prefix + "probes").inc(probes)
    registry.counter(prefix + "scans").inc(scans)
    registry.counter(prefix + "scans_newest").inc(newest)
    for value in values:
        registry.counter(prefix + f"value.{value}").inc()


class TestWorkloadObserver:
    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            WorkloadObserver(MetricsRegistry(), 0)

    def test_single_day_is_averaged_over_itself(self):
        registry = MetricsRegistry()
        observer = WorkloadObserver(registry, observe_days=2)
        _publish(registry, 0, probes=10, scans=4, newest=3)
        observer.end_day()
        obs = observer.observation(0)
        assert obs.days == 1
        assert obs.probes_per_day == 10.0
        assert obs.scans_per_day == 4.0
        assert obs.newest_fraction == pytest.approx(0.75)

    def test_window_averages_across_days(self):
        registry = MetricsRegistry()
        observer = WorkloadObserver(registry, observe_days=2)
        _publish(registry, 0, probes=10)
        observer.end_day()
        _publish(registry, 0, probes=30)
        observer.end_day()
        assert observer.observation(0).probes_per_day == 20.0

    def test_old_days_roll_off(self):
        registry = MetricsRegistry()
        observer = WorkloadObserver(registry, observe_days=2)
        _publish(registry, 0, probes=1000)
        observer.end_day()
        for _ in range(2):
            _publish(registry, 0, probes=2)
            observer.end_day()
        # The 1000-probe day is outside the 2-day window.
        assert observer.observation(0).probes_per_day == 2.0

    def test_deltas_not_running_totals(self):
        registry = MetricsRegistry()
        observer = WorkloadObserver(registry, observe_days=1)
        _publish(registry, 0, probes=50)
        observer.end_day()
        observer.end_day()  # a quiet day
        assert observer.observation(0).probes_per_day == 0.0

    def test_shards_are_independent(self):
        registry = MetricsRegistry()
        observer = WorkloadObserver(registry, observe_days=1)
        _publish(registry, 0, probes=7)
        _publish(registry, 1, scans=5, newest=5)
        observer.end_day()
        assert observer.observation(0).probes_per_day == 7.0
        assert observer.observation(0).scans_per_day == 0.0
        assert observer.observation(1).scans_per_day == 5.0
        assert observer.observation(1).scan_target == "newest"

    def test_scan_target_inference(self):
        newest = ShardObservation(0, 2, 0.0, 10.0, 0.6, 10.0, 0.1)
        spread = ShardObservation(0, 2, 0.0, 10.0, 0.4, 10.0, 0.1)
        assert newest.scan_target == "newest"
        assert spread.scan_target == "all"

    def test_top_value_share_detects_hotspots(self):
        registry = MetricsRegistry()
        observer = WorkloadObserver(registry, observe_days=1)
        _publish(registry, 0, probes=10, values=["hot"] * 9 + ["cold"])
        observer.end_day()
        assert observer.observation(0).top_value_share == pytest.approx(0.9)

    def test_value_track_limit_is_a_constantly_bounded_namespace(self):
        # The serving loop caps distinct per-shard value counters; the
        # observer must still produce a sane share with the ~other lump.
        registry = MetricsRegistry()
        observer = WorkloadObserver(registry, observe_days=1)
        values = [str(v) for v in range(VALUE_TRACK_LIMIT)] + ["~other"] * 5
        _publish(registry, 0, probes=len(values), values=values)
        observer.end_day()
        obs = observer.observation(0)
        assert 0.0 < obs.top_value_share < 1.0
