"""Cost-aware routing: structural keys, tie-breaks, failure fallback."""

from dataclasses import dataclass, field

from repro.advisor import DesignRouter


@dataclass
class FakeIndex:
    time_set: frozenset


@dataclass
class FakeWave:
    constituents: list

    def live_constituents(self):
        return self.constituents


@dataclass
class FakeReplica:
    replica_id: int
    wave: FakeWave
    failed: bool = False


@dataclass
class FakeShard:
    replicas: list = field(default_factory=list)

    def alive_replicas(self):
        return [r for r in self.replicas if not r.failed]


def _replica(replica_id, day_sets, failed=False):
    wave = FakeWave([FakeIndex(frozenset(days)) for days in day_sets])
    return FakeReplica(replica_id, wave, failed)


class TestCostKey:
    def test_probe_prefers_fewer_overlapping_constituents(self):
        router = DesignRouter()
        fat = _replica(0, [range(1, 7)])           # one 6-day constituent
        thin = _replica(1, [[d] for d in range(1, 7)])  # six 1-day ones
        assert router.cost_key(fat, 1, 6, "probe") < router.cost_key(
            thin, 1, 6, "probe"
        )

    def test_scan_prefers_fewer_total_bytes(self):
        router = DesignRouter()
        # Newest-day scan: the fat layout streams all 6 days, the thin
        # layout streams exactly one.
        fat = _replica(0, [range(1, 7)])
        thin = _replica(1, [[d] for d in range(1, 7)])
        assert router.cost_key(thin, 6, 6, "scan") < router.cost_key(
            fat, 6, 6, "scan"
        )

    def test_non_overlapping_constituents_cost_nothing(self):
        router = DesignRouter()
        replica = _replica(0, [[1, 2], [5, 6]])
        overlapping, overlap_days, _ = router.cost_key(replica, 1, 2, "probe")
        assert (overlapping, overlap_days) == (1, 2)


class TestChoose:
    def test_ties_break_to_lowest_replica_id(self):
        # Identical layouts must reduce to the legacy primary choice —
        # that is the uniform-mode bit-identity guarantee.
        router = DesignRouter()
        shard = FakeShard(
            [_replica(i, [[d] for d in range(1, 5)]) for i in range(3)]
        )
        chosen = router.choose(shard, 1, 4, "probe")
        assert chosen.replica_id == 0

    def test_divergent_twins_split_probe_and_scan_traffic(self):
        router = DesignRouter()
        probe_twin = _replica(0, [range(1, 7)])
        scan_twin = _replica(1, [[d] for d in range(1, 7)])
        shard = FakeShard([probe_twin, scan_twin])
        assert router.choose(shard, 1, 6, "probe") is probe_twin
        assert router.choose(shard, 6, 6, "scan") is scan_twin

    def test_failed_replicas_are_never_chosen(self):
        router = DesignRouter()
        best = _replica(0, [range(1, 7)], failed=True)
        fallback = _replica(1, [[d] for d in range(1, 7)])
        shard = FakeShard([best, fallback])
        assert router.choose(shard, 1, 6, "probe") is fallback

    def test_candidates_restrict_the_pool(self):
        router = DesignRouter()
        a = _replica(0, [range(1, 7)])
        b = _replica(1, [[d] for d in range(1, 7)])
        shard = FakeShard([a, b])
        assert router.choose(shard, 1, 6, "probe", candidates=[b]) is b

    def test_nothing_alive_returns_none(self):
        router = DesignRouter()
        shard = FakeShard([_replica(0, [[1]], failed=True)])
        assert router.choose(shard, 1, 1, "probe") is None
