"""Round-trip and path-equivalence proofs for the batch entry codec.

The contract under test (`repro.index.codec`): the batch encoder and the
per-entry reference encoder produce **byte-identical** blocks, both
decoders recover the **identical** entry list (values and types), and
malformed blocks or unencodable entries fail loudly.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import codec
from repro.index.entry import Entry
from repro.index.kernels import vectorized

I64 = 2**63

record_ids = st.integers(min_value=-(2**63), max_value=2**63 - 1)
days = st.integers(min_value=-(2**63), max_value=2**63 - 1)
infos = st.one_of(
    st.none(),
    st.integers(),  # includes out-of-int64 values (pool-backed)
    st.floats(allow_nan=False),
    st.text(max_size=40),
)
entry_lists = st.lists(
    st.builds(Entry, record_ids, days, infos), max_size=60
)


@given(entry_lists)
@settings(max_examples=200)
def test_batch_encoder_is_byte_identical_to_reference(entries):
    reference = codec.encode_entries_object(entries)
    with vectorized(True):
        assert codec.encode_entries(entries) == reference
    with vectorized(False):
        assert codec.encode_entries(entries) == reference


@given(entry_lists)
@settings(max_examples=200)
def test_round_trip_recovers_identical_entries(entries):
    block = codec.encode_entries_object(entries)
    for decode in (codec.decode_entries_object, codec.decode_entries):
        got = decode(block)
        assert got == entries
        for original, decoded in zip(entries, got):
            assert type(decoded.info) is type(original.info)


@given(entry_lists)
@settings(max_examples=100)
def test_decoders_agree_with_kernels_on_and_off(entries):
    block = codec.encode_entries(entries)
    reference = codec.decode_entries_object(block)
    with vectorized(True):
        assert codec.decode_entries(block) == reference
    with vectorized(False):
        assert codec.decode_entries(block) == reference


def test_none_info_round_trips():
    entries = [Entry(1, 2, None), Entry(3, 4, None), Entry(5, 6, None)]
    block = codec.encode_entries(entries)
    assert codec.decode_entries(block) == entries
    assert codec.decode_entries(block)[0].info is None


def test_mixed_info_types_round_trip():
    entries = [
        Entry(1, 1, None),
        Entry(2, 1, 42),
        Entry(3, 2, -7),
        Entry(4, 2, 3.5),
        Entry(5, 3, "häßlich ünïcode"),
        Entry(6, 3, 10**30),
        Entry(7, 4, -(10**30)),
        Entry(8, 4, ""),
    ]
    block = codec.encode_entries(entries)
    assert block == codec.encode_entries_object(entries)
    got = codec.decode_entries(block)
    assert got == entries
    assert [type(e.info) for e in got] == [type(e.info) for e in entries]


def test_block_layout_is_fixed_width():
    entries = [Entry(i, i, i) for i in range(5)]
    block = codec.encode_entries(entries)
    assert block[:4] == codec.MAGIC
    assert len(block) == codec.encoded_size(5)
    with_pool = codec.encode_entries([Entry(1, 1, "abc")])
    assert len(with_pool) == codec.encoded_size(1, 3)


def test_empty_list_round_trips():
    block = codec.encode_entries([])
    assert codec.decode_entries(block) == []
    assert len(block) == codec.encoded_size(0)


def test_bool_info_is_rejected():
    with pytest.raises(codec.EntryCodecError):
        codec.encode_entries_object([Entry(1, 1, True)])
    # The batch path must reject it too, not silently encode as int.
    with pytest.raises(codec.EntryCodecError):
        codec.encode_entries([Entry(1, 1, True), Entry(2, 2, False)])


def test_unencodable_info_is_rejected():
    with pytest.raises(codec.EntryCodecError):
        codec.encode_entries([Entry(1, 1, [1, 2])])


def test_out_of_range_record_id_is_rejected():
    with pytest.raises(codec.EntryCodecError):
        codec.encode_entries([Entry(I64, 1, None), Entry(1, 1, None)])
    with pytest.raises(codec.EntryCodecError):
        codec.encode_entries([Entry(1, -I64 - 1, None), Entry(1, 1, None)])


def test_truncated_block_is_rejected():
    block = codec.encode_entries([Entry(1, 1, 2), Entry(3, 4, 5)])
    with pytest.raises(codec.EntryCodecError):
        codec.decode_entries(block[:-1])
    with pytest.raises(codec.EntryCodecError):
        codec.decode_entries(block[: codec._HEADER.size - 1])


def test_bad_magic_is_rejected():
    block = codec.encode_entries([Entry(1, 1, 2), Entry(3, 4, 5)])
    with pytest.raises(codec.EntryCodecError):
        codec.decode_entries(b"XXXX" + block[4:])


def test_unknown_tag_is_rejected():
    block = bytearray(codec.encode_entries([Entry(1, 1, 2), Entry(3, 4, 5)]))
    block[codec._HEADER.size + 16] = 99
    with pytest.raises(codec.EntryCodecError):
        codec.decode_entries(bytes(block))
    with pytest.raises(codec.EntryCodecError):
        codec.decode_entries_object(bytes(block))


def test_pool_reference_outside_pool_is_rejected():
    block = bytearray(codec.encode_entries_object([Entry(1, 1, "ab")]))
    # Inflate the pool-ref length field far past the 2-byte pool.
    offset = codec._HEADER.size + 24
    struct.pack_into("<II", block, offset, 0, 9999)
    with pytest.raises(codec.EntryCodecError):
        codec.decode_entries_object(bytes(block))
