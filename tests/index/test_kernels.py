"""Equivalence proofs for the day-column filter kernels.

Every kernel in `repro.index.kernels` must return exactly what its
object-level reference returns — element-identical lists, same order —
for sorted columns (bisect path), unsorted columns (mask path), and with
the kernels switched off entirely.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import kernels
from repro.index.bucket import Bucket
from repro.index.entry import Entry
from repro.index.kernels import (
    RangeFilterCache,
    bucket_day_column,
    bucket_touches_days,
    day_column,
    filter_bucket,
    filter_entries,
    filter_entries_object,
    is_nondecreasing,
    set_vectorized,
    vectorized,
    vectorized_enabled,
)

day_lists = st.lists(st.integers(min_value=-50, max_value=50), max_size=40)
ranges = st.tuples(
    st.integers(min_value=-60, max_value=60),
    st.integers(min_value=-60, max_value=60),
)


def entries_for(days):
    return [Entry(i, day, i) for i, day in enumerate(days)]


@given(day_lists, ranges)
@settings(max_examples=300)
def test_filter_entries_matches_reference(days, bounds):
    t1, t2 = bounds
    entries = entries_for(days)
    expected = filter_entries_object(entries, t1, t2)
    with vectorized(True):
        assert filter_entries(entries, t1, t2) == expected
    with vectorized(False):
        assert filter_entries(entries, t1, t2) == expected


@given(day_lists, ranges)
@settings(max_examples=300)
def test_filter_on_sorted_column_matches_reference(days, bounds):
    t1, t2 = bounds
    days = sorted(days)
    entries = entries_for(days)
    expected = filter_entries_object(entries, t1, t2)
    with vectorized(True):
        column = day_column(entries)
        assert is_nondecreasing(column)
        assert filter_entries(entries, t1, t2, column, True) == expected


@given(day_lists, ranges)
@settings(max_examples=200)
def test_filter_bucket_and_cache_match_reference(days, bounds):
    t1, t2 = bounds
    bucket = Bucket(value="v", entries=entries_for(days))
    expected = filter_entries_object(bucket.entries, t1, t2)
    with vectorized(True):
        assert filter_bucket(bucket, t1, t2) == expected
        cache = RangeFilterCache.for_bucket(bucket)
        assert cache.filter(t1, t2) == expected
        assert cache.filter(t1, t2) == expected  # memoized second hit
    with vectorized(False):
        assert filter_bucket(bucket, t1, t2) == expected


@given(day_lists, st.sets(st.integers(min_value=-60, max_value=60)))
@settings(max_examples=200)
def test_bucket_touches_days_matches_reference(days, probe_days):
    bucket = Bucket(value="v", entries=entries_for(days))
    expected = any(e.day in probe_days for e in bucket.entries)
    with vectorized(True):
        # Twice: once column-less (reference fallback), once cached.
        assert bucket_touches_days(bucket, probe_days) == expected
        bucket_day_column(bucket)
        assert bucket_touches_days(bucket, probe_days) == expected
    with vectorized(False):
        assert bucket_touches_days(bucket, probe_days) == expected


def test_column_cache_tracks_appends_incrementally():
    bucket = Bucket(value="v", entries=entries_for([1, 2, 3]))
    column, is_sorted = bucket_day_column(bucket)
    assert list(column) == [1, 2, 3] and is_sorted
    bucket.append_entries([Entry(10, 3, None), Entry(11, 5, None)])
    column, is_sorted = bucket_day_column(bucket)
    assert list(column) == [1, 2, 3, 3, 5] and is_sorted
    bucket.append_entries([Entry(12, 4, None)])  # breaks sortedness
    column, is_sorted = bucket_day_column(bucket)
    assert list(column) == [1, 2, 3, 3, 5, 4] and not is_sorted


def test_column_cache_rebuilds_after_external_mutation():
    bucket = Bucket(value="v", entries=entries_for([5, 1, 9]))
    bucket_day_column(bucket)
    # Direct list mutation bypasses the cache; length mismatch triggers
    # a rebuild instead of serving stale days.
    bucket.entries.append(Entry(99, -3, None))
    column, is_sorted = bucket_day_column(bucket)
    assert list(column) == [5, 1, 9, -3] and not is_sorted


def test_replace_entries_invalidates_column():
    bucket = Bucket(value="v", entries=entries_for([1, 2]))
    bucket_day_column(bucket)
    bucket.replace_entries(entries_for([7]))
    column, is_sorted = bucket_day_column(bucket)
    assert list(column) == [7] and is_sorted


def test_remove_days_keeps_select_consistent():
    bucket = Bucket(value="v", entries=entries_for([1, 2, 3, 2, 1]))
    with vectorized(True):
        bucket_day_column(bucket)
        assert bucket.remove_days({2}) == 2
        assert [e.day for e in bucket.select(0, 9)] == [1, 3, 1]


def test_switch_round_trips():
    before = vectorized_enabled()
    try:
        set_vectorized(False)
        assert not vectorized_enabled()
        with vectorized(True):
            assert vectorized_enabled()
        assert not vectorized_enabled()
    finally:
        set_vectorized(before)


def test_day_column_is_int64_array():
    column = day_column(entries_for([3, 1, 2]))
    assert column.typecode == "q"
    assert column.itemsize == 8
    assert list(column) == [3, 1, 2]


def test_filter_entries_empty_input():
    with vectorized(True):
        assert filter_entries([], 0, 10) == []


def test_kernels_module_switch_reaches_bucket_select():
    bucket = Bucket(value="v", entries=entries_for([1, 2, 3]))
    with vectorized(False):
        assert [e.day for e in bucket.select(2, 3)] == [2, 3]
    with vectorized(True):
        assert [e.day for e in bucket.select(2, 3)] == [2, 3]
