"""Tests for the CONTIGUOUS growth policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.contiguous import ContiguousPolicy


class TestPolicyValidation:
    def test_growth_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            ContiguousPolicy(growth_factor=1.0)
        with pytest.raises(ValueError):
            ContiguousPolicy(growth_factor=0.5)

    def test_initial_entries_positive(self):
        with pytest.raises(ValueError):
            ContiguousPolicy(initial_entries=0)


class TestCapacities:
    def test_initial_capacity_floors_at_initial_entries(self):
        policy = ContiguousPolicy(initial_entries=8)
        assert policy.initial_capacity(3) == 8
        assert policy.initial_capacity(20) == 20

    def test_grown_capacity_multiplies_by_g(self):
        policy = ContiguousPolicy(growth_factor=2.0)
        assert policy.grown_capacity(10, 11) == 20

    def test_grown_capacity_jumps_to_needed(self):
        policy = ContiguousPolicy(growth_factor=2.0)
        assert policy.grown_capacity(10, 100) == 100

    def test_small_growth_factor_still_grows(self):
        # g = 1.08 (TPC-D): growth must make progress on small buckets.
        policy = ContiguousPolicy(growth_factor=1.08)
        assert policy.grown_capacity(4, 5) > 4

    def test_shrink_threshold(self):
        policy = ContiguousPolicy(growth_factor=2.0, initial_entries=4)
        assert policy.should_shrink(capacity=100, live_entries=10)
        assert not policy.should_shrink(capacity=100, live_entries=30)
        assert not policy.should_shrink(capacity=4, live_entries=0)

    def test_shrink_disabled(self):
        policy = ContiguousPolicy(shrink=False)
        assert not policy.should_shrink(capacity=1000, live_entries=1)

    def test_shrunk_capacity_leaves_headroom(self):
        policy = ContiguousPolicy(growth_factor=2.0, initial_entries=4)
        assert policy.shrunk_capacity(10) == 20
        assert policy.shrunk_capacity(0) >= policy.initial_entries


class TestPolicyProperties:
    @given(
        st.floats(min_value=1.01, max_value=4.0),
        st.integers(1, 1000),
        st.integers(0, 5000),
    )
    @settings(max_examples=200)
    def test_grown_capacity_always_sufficient_and_larger(
        self, g, capacity, needed
    ):
        policy = ContiguousPolicy(growth_factor=g)
        grown = policy.grown_capacity(capacity, needed)
        assert grown >= needed
        assert grown > capacity

    @given(st.integers(0, 10_000))
    def test_initial_capacity_sufficient(self, n):
        policy = ContiguousPolicy()
        assert policy.initial_capacity(n) >= n

    @given(st.integers(0, 10_000))
    def test_amortized_doubling_bound(self, n):
        """Total copy work under repeated unit appends is O(n) with g = 2."""
        policy = ContiguousPolicy(growth_factor=2.0, initial_entries=4)
        capacity = policy.initial_capacity(0)
        copies = 0
        size = 0
        for _ in range(n):
            if size + 1 > capacity:
                copies += size
                capacity = policy.grown_capacity(capacity, size + 1)
            size += 1
        assert copies <= 2 * max(n, 1)
