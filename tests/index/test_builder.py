"""Tests for packed index construction."""

import pytest

from repro.index.builder import build_empty_index, build_packed_index
from repro.index.config import IndexConfig
from repro.index.entry import Entry


def grouped(*postings):
    out = {}
    for value, entry in postings:
        out.setdefault(value, []).append(entry)
    return out


class TestBuildPacked:
    def test_packed_size_is_exact(self, disk):
        config = IndexConfig(entry_size_bytes=10)
        idx = build_packed_index(
            disk, config, grouped(("a", Entry(1, 1)), ("b", Entry(2, 1))), [1]
        )
        assert idx.packed
        assert idx.allocated_bytes == 20  # no slack whatsoever
        assert idx.used_bytes == 20

    def test_single_extent(self, disk, config):
        before = disk.live_extents
        build_packed_index(
            disk,
            config,
            grouped(*[(f"v{i}", Entry(i, 1)) for i in range(20)]),
            [1],
        )
        assert disk.live_extents == before + 1

    def test_build_charges_scan_and_write(self, disk):
        config = IndexConfig(entry_size_bytes=10)
        before = disk.snapshot()
        build_packed_index(
            disk,
            config,
            grouped(("a", Entry(1, 1))),
            [1],
            source_bytes=5_000,
        )
        delta = disk.snapshot() - before
        assert delta.bytes_read == 5_000  # one pass over the source records
        assert delta.bytes_written == 10  # the packed index itself

    def test_buckets_ordered_with_btree_directory(self, disk, btree_config):
        idx = build_packed_index(
            disk,
            btree_config,
            grouped(("c", Entry(3, 1)), ("a", Entry(1, 1)), ("b", Entry(2, 1))),
            [1],
        )
        assert [b.value for b in idx.buckets()] == ["a", "b", "c"]
        offsets = [b.offset_in_extent for b in idx.buckets()]
        assert offsets == sorted(offsets)

    def test_time_set(self, disk, config):
        idx = build_packed_index(
            disk, config, grouped(("a", Entry(1, 3))), days=[3, 4]
        )
        assert idx.days == {3, 4}

    def test_empty_build(self, disk, config):
        idx = build_packed_index(disk, config, {}, days=[])
        assert idx.packed
        assert idx.entry_count == 0
        assert idx.allocated_bytes == 0

    def test_values_with_empty_entry_lists_skipped(self, disk, config):
        idx = build_packed_index(
            disk, config, {"a": [Entry(1, 1)], "b": []}, [1]
        )
        assert len(idx.directory) == 1

    def test_probe_on_packed(self, disk, config):
        idx = build_packed_index(
            disk, config, grouped(("a", Entry(1, 1)), ("a", Entry(2, 1))), [1]
        )
        entries, seconds = idx.probe("a")
        assert [e.record_id for e in entries] == [1, 2]
        assert seconds == pytest.approx(
            0.014 + 2 * config.entry_size_bytes / 10_000_000
        )


class TestBuildEmpty:
    def test_empty_index(self, disk, config):
        idx = build_empty_index(disk, config, name="Temp")
        assert idx.name == "Temp"
        assert idx.entry_count == 0
        assert not idx.packed
