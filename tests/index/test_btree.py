"""Unit and property tests for the B+Tree directory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTreeDirectory


class TestBasicOperations:
    def test_empty(self):
        tree = BPlusTreeDirectory(order=4)
        assert len(tree) == 0
        assert tree.get("x") is None
        assert "x" not in tree
        assert list(tree.items()) == []

    def test_put_get(self):
        tree = BPlusTreeDirectory(order=4)
        tree.put("b", 2)
        tree.put("a", 1)
        assert tree.get("a") == 1
        assert tree.get("b") == 2
        assert len(tree) == 2

    def test_put_overwrites(self):
        tree = BPlusTreeDirectory(order=4)
        tree.put("a", 1)
        tree.put("a", 99)
        assert tree.get("a") == 99
        assert len(tree) == 1

    def test_remove(self):
        tree = BPlusTreeDirectory(order=4)
        tree.put("a", 1)
        assert tree.remove("a") == 1
        assert tree.remove("a") is None
        assert len(tree) == 0

    def test_items_sorted(self):
        tree = BPlusTreeDirectory(order=4)
        for key in [5, 3, 9, 1, 7, 2, 8, 4, 6, 0]:
            tree.put(key, key * 10)
        assert [k for k, _ in tree.items()] == list(range(10))
        assert [v for v in tree.values()] == [k * 10 for k in range(10)]

    def test_minimum_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTreeDirectory(order=2)

    def test_many_inserts_force_splits(self):
        tree = BPlusTreeDirectory(order=3)
        for i in range(200):
            tree.put(i, i)
        tree.check_invariants()
        assert len(tree) == 200
        assert tree.get(137) == 137

    def test_many_deletes_force_merges(self):
        tree = BPlusTreeDirectory(order=3)
        for i in range(200):
            tree.put(i, i)
        for i in range(0, 200, 2):
            assert tree.remove(i) == i
        tree.check_invariants()
        assert len(tree) == 100
        assert tree.get(2) is None
        assert tree.get(3) == 3

    def test_delete_everything(self):
        tree = BPlusTreeDirectory(order=3)
        for i in range(50):
            tree.put(i, i)
        for i in range(50):
            tree.remove(i)
        tree.check_invariants()
        assert len(tree) == 0
        assert list(tree.items()) == []


class TestRangeQueries:
    def test_range_items(self):
        tree = BPlusTreeDirectory(order=4)
        for i in range(0, 100, 2):
            tree.put(i, i)
        got = [k for k, _ in tree.range_items(10, 21)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_range_outside_keys(self):
        tree = BPlusTreeDirectory(order=4)
        tree.put(5, "x")
        assert list(tree.range_items(10, 20)) == []
        assert [k for k, _ in tree.range_items(0, 6)] == [5]

    def test_range_on_empty_tree(self):
        tree = BPlusTreeDirectory(order=4)
        assert list(tree.range_items(0, 100)) == []


@st.composite
def tree_scripts(draw):
    keys = st.integers(0, 60)
    n = draw(st.integers(1, 120))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["put", "put", "remove", "get"]))
        ops.append((kind, draw(keys)))
    return ops


class TestBTreeProperties:
    @given(tree_scripts(), st.integers(3, 8))
    @settings(max_examples=200, deadline=None)
    def test_matches_dict_model(self, script, order):
        tree = BPlusTreeDirectory(order=order)
        model: dict[int, int] = {}
        for i, (kind, key) in enumerate(script):
            if kind == "put":
                tree.put(key, i)
                model[key] = i
            elif kind == "remove":
                assert tree.remove(key) == model.pop(key, None)
            else:
                assert tree.get(key) == model.get(key)
        tree.check_invariants()
        assert len(tree) == len(model)
        assert list(tree.items()) == sorted(model.items())

    @given(st.lists(st.text(max_size=6), unique=True, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_string_keys_iterate_sorted(self, keys):
        tree = BPlusTreeDirectory(order=4)
        for k in keys:
            tree.put(k, None)
        assert [k for k, _ in tree.items()] == sorted(keys)
        tree.check_invariants()


class TestBulkLoad:
    def test_empty(self):
        tree = BPlusTreeDirectory.bulk_load([])
        assert len(tree) == 0
        tree.check_invariants()

    def test_single_item(self):
        tree = BPlusTreeDirectory.bulk_load([(5, "x")], order=4)
        assert tree.get(5) == "x"
        tree.check_invariants()

    def test_contents_and_structure(self):
        items = [(i, i * 10) for i in range(500)]
        tree = BPlusTreeDirectory.bulk_load(items, order=8)
        tree.check_invariants()
        assert len(tree) == 500
        assert list(tree.items()) == items
        assert tree.get(321) == 3210

    def test_unsorted_rejected(self):
        import pytest

        from repro.errors import DirectoryError

        with pytest.raises(DirectoryError):
            BPlusTreeDirectory.bulk_load([(2, "a"), (1, "b")])

    def test_duplicates_rejected(self):
        import pytest

        from repro.errors import DirectoryError

        with pytest.raises(DirectoryError):
            BPlusTreeDirectory.bulk_load([(1, "a"), (1, "b")])

    def test_inserts_and_deletes_after_bulk_load(self):
        tree = BPlusTreeDirectory.bulk_load(
            [(i, i) for i in range(0, 200, 2)], order=6
        )
        for i in range(1, 200, 2):
            tree.put(i, i)
        for i in range(0, 200, 4):
            tree.remove(i)
        tree.check_invariants()
        assert tree.get(3) == 3
        assert tree.get(4) is None

    @given(
        st.lists(st.integers(0, 10_000), unique=True, max_size=400),
        st.integers(3, 12),
    )
    @settings(max_examples=100, deadline=None)
    def test_bulk_load_equals_incremental(self, keys, order):
        items = [(k, k) for k in sorted(keys)]
        bulk = BPlusTreeDirectory.bulk_load(items, order=order)
        incremental = BPlusTreeDirectory(order=order)
        for k, v in items:
            incremental.put(k, v)
        bulk.check_invariants()
        assert list(bulk.items()) == list(incremental.items())
        assert len(bulk) == len(incremental)
