"""Tests for constituent indexes: inserts, deletes, probes, scans, drops."""

import pytest

from repro.errors import ConstituentIndexError
from repro.index.builder import build_packed_index
from repro.index.config import IndexConfig
from repro.index.constituent import ConstituentIndex
from repro.index.contiguous import ContiguousPolicy
from repro.index.entry import Entry


def grouped(*postings):
    out = {}
    for value, entry in postings:
        out.setdefault(value, []).append(entry)
    return out


class TestIncrementalInsert:
    def test_insert_creates_buckets(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config, name="I1")
        idx.insert_postings(
            grouped(("a", Entry(1, 1)), ("b", Entry(2, 1))), days=[1]
        )
        assert idx.entry_count == 2
        assert idx.days == {1}
        assert not idx.packed

    def test_appends_within_capacity_do_not_grow(self, disk):
        config = IndexConfig(
            contiguous=ContiguousPolicy(initial_entries=10, growth_factor=2.0)
        )
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(grouped(("a", Entry(1, 1))), days=[1])
        bytes_before = idx.allocated_bytes
        idx.insert_postings(grouped(("a", Entry(2, 2))), days=[2])
        assert idx.allocated_bytes == bytes_before

    def test_overflow_grows_by_g(self, disk):
        config = IndexConfig(
            entry_size_bytes=10,
            contiguous=ContiguousPolicy(initial_entries=2, growth_factor=2.0),
        )
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(grouped(("a", Entry(1, 1)), ("a", Entry(2, 1))), [1])
        assert idx.allocated_bytes == 20
        idx.insert_postings(grouped(("a", Entry(3, 2))), [2])
        assert idx.allocated_bytes == 40  # doubled

    def test_overflow_charges_copy_io(self, disk):
        config = IndexConfig(
            entry_size_bytes=10,
            contiguous=ContiguousPolicy(initial_entries=2, growth_factor=2.0),
        )
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(grouped(("a", Entry(1, 1)), ("a", Entry(2, 1))), [1])
        before = disk.snapshot()
        idx.insert_postings(grouped(("a", Entry(3, 2))), [2])
        delta = disk.snapshot() - before
        assert delta.bytes_read == 20  # old bucket copied out
        assert delta.bytes_written == 30  # full new bucket written

    def test_insert_into_packed_evicts_bucket(self, disk, config):
        idx = build_packed_index(
            disk, config, grouped(("a", Entry(1, 1)), ("b", Entry(2, 1))), [1]
        )
        assert idx.packed
        idx.insert_postings(grouped(("a", Entry(3, 2))), [2])
        assert not idx.packed
        entries, _ = idx.probe("a")
        assert [e.record_id for e in entries] == [1, 3]
        # The shared extent still pins space (dead slice) plus the new bucket.
        assert idx.allocated_bytes > idx.used_bytes

    def test_empty_insert_is_noop(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        seconds = idx.insert_postings({}, days=[])
        assert seconds == 0.0
        assert idx.entry_count == 0


class TestDelete:
    def _two_day_index(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config, name="I1")
        idx.insert_postings(
            grouped(("a", Entry(1, 1)), ("a", Entry(2, 2)), ("b", Entry(3, 1))),
            days=[1, 2],
        )
        return idx

    def test_delete_removes_day(self, disk, config):
        idx = self._two_day_index(disk, config)
        idx.delete_days([1])
        assert idx.days == {2}
        entries, _ = idx.probe("a")
        assert [e.record_id for e in entries] == [2]
        assert idx.probe("b")[0] == []

    def test_empty_buckets_are_retired(self, disk, config):
        idx = self._two_day_index(disk, config)
        idx.delete_days([1])
        assert len(idx.directory) == 1  # "b" bucket removed entirely

    def test_delete_frees_space_when_index_empties(self, disk, config):
        idx = self._two_day_index(disk, config)
        idx.delete_days([1, 2])
        assert idx.entry_count == 0
        assert idx.allocated_bytes == 0

    def test_delete_missing_days_is_noop(self, disk, config):
        idx = self._two_day_index(disk, config)
        seconds = idx.delete_days([99])
        assert seconds == 0.0 or idx.entry_count == 3

    def test_sparse_bucket_shrinks(self, disk):
        config = IndexConfig(
            entry_size_bytes=10,
            contiguous=ContiguousPolicy(
                initial_entries=2, growth_factor=2.0, shrink=True
            ),
        )
        idx = ConstituentIndex.create_empty(disk, config)
        postings = grouped(*[("a", Entry(i, 1)) for i in range(16)])
        idx.insert_postings(postings, [1])
        idx.insert_postings(grouped(("a", Entry(100, 2))), [2])
        big = idx.allocated_bytes
        idx.delete_days([1])
        assert idx.allocated_bytes < big

    def test_delete_from_packed_keeps_remaining(self, disk, config):
        idx = build_packed_index(
            disk, config, grouped(("a", Entry(1, 1)), ("a", Entry(2, 2))), [1, 2]
        )
        idx.delete_days([1])
        assert not idx.packed  # holes now
        entries, _ = idx.probe("a")
        assert [e.record_id for e in entries] == [2]


class TestQueries:
    def test_probe_miss_costs_nothing(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        entries, seconds = idx.probe("ghost")
        assert entries == []
        assert seconds == 0.0

    def test_probe_cost_scales_with_bucket(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(grouped(*[("a", Entry(i, 1)) for i in range(50)]), [1])
        idx.insert_postings(grouped(("b", Entry(99, 1))), [1])
        _, big = idx.probe("a")
        _, small = idx.probe("b")
        assert big > small

    def test_timed_probe_filters_by_day(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(
            grouped(("a", Entry(1, 1)), ("a", Entry(2, 2)), ("a", Entry(3, 3))),
            [1, 2, 3],
        )
        entries, _ = idx.timed_probe("a", 2, 3)
        assert [e.record_id for e in entries] == [2, 3]

    def test_scan_returns_everything(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(grouped(("a", Entry(1, 1)), ("b", Entry(2, 1))), [1])
        entries, seconds = idx.scan()
        assert {e.record_id for e in entries} == {1, 2}
        assert seconds > 0

    def test_packed_scan_cheaper_than_unpacked(self, disk):
        config = IndexConfig(
            contiguous=ContiguousPolicy(initial_entries=16, growth_factor=2.0)
        )
        postings = grouped(*[(f"v{i}", Entry(i, 1)) for i in range(40)])
        packed = build_packed_index(disk, config, postings, [1])
        loose = ConstituentIndex.create_empty(disk, config)
        loose.insert_postings(postings, [1])
        _, packed_s = packed.scan()
        _, loose_s = loose.scan()
        assert packed_s < loose_s  # S vs S': the Table 9 distinction

    def test_timed_scan_filters(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(
            grouped(("a", Entry(1, 1)), ("b", Entry(2, 2))), [1, 2]
        )
        entries, _ = idx.timed_scan(2, 2)
        assert [e.record_id for e in entries] == [2]


class TestDrop:
    def test_drop_frees_all_space(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(grouped(("a", Entry(1, 1))), [1])
        assert disk.live_bytes > 0
        idx.drop()
        assert disk.live_bytes == 0
        assert idx.dropped

    def test_drop_costs_no_time(self, disk, config):
        idx = build_packed_index(disk, config, grouped(("a", Entry(1, 1))), [1])
        before = disk.clock
        idx.drop()
        assert disk.clock == before

    def test_use_after_drop_rejected(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        idx.drop()
        with pytest.raises(ConstituentIndexError):
            idx.probe("a")
        with pytest.raises(ConstituentIndexError):
            idx.insert_postings({}, [])
        with pytest.raises(ConstituentIndexError):
            idx.drop()


class TestBufferPoolWorkingSet:
    """Regression: the working set must reach the buffer pool explicitly.

    ``allocated_bytes or None`` used to turn a 0-byte index into a
    "streaming" caller (``None``), bypassing the pool so the very first
    bucket updates paid full seeks even with a warm, oversized pool.
    """

    @pytest.fixture
    def warm_disk(self):
        from repro.storage.bufferpool import BufferPoolModel
        from repro.storage.disk import SimulatedDisk

        return SimulatedDisk(buffer_pool=BufferPoolModel(memory_bytes=1 << 30))

    def test_first_insert_into_empty_index_uses_pool(self, warm_disk, config):
        idx = ConstituentIndex.create_empty(warm_disk, config)
        before = warm_disk.stats.snapshot()
        idx.insert_postings(grouped(("a", Entry(1, 1))), [1])
        delta = warm_disk.stats.snapshot() - before
        assert delta.seeks == 0  # resident working set: seek absorbed

    def test_delete_from_resident_index_uses_pool(self, warm_disk, config):
        idx = ConstituentIndex.create_empty(warm_disk, config)
        idx.insert_postings(
            grouped(("a", Entry(1, 1)), ("b", Entry(2, 2))), [1, 2]
        )
        before = warm_disk.stats.snapshot()
        idx.delete_days([1])
        delta = warm_disk.stats.snapshot() - before
        assert delta.seeks == 0

    def test_min_miss_rate_still_charges_floor(self, config):
        from repro.storage.bufferpool import BufferPoolModel
        from repro.storage.disk import SimulatedDisk

        disk = SimulatedDisk(
            buffer_pool=BufferPoolModel(memory_bytes=1 << 30, min_miss_rate=0.5)
        )
        idx = ConstituentIndex.create_empty(disk, config)
        before = disk.stats.snapshot()
        idx.insert_postings(grouped(("a", Entry(1, 1))), [1])
        delta = disk.stats.snapshot() - before
        assert delta.seeks == pytest.approx(0.5)
