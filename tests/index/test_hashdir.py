"""Tests for the hash directory."""

from repro.index.hashdir import HashDirectory


class TestHashDirectory:
    def test_put_get_remove(self):
        d = HashDirectory()
        d.put("a", 1)
        assert d.get("a") == 1
        assert "a" in d
        assert d.remove("a") == 1
        assert d.get("a") is None
        assert d.remove("a") is None

    def test_len_and_iteration(self):
        d = HashDirectory()
        for i in range(5):
            d.put(f"k{i}", i)
        assert len(d) == 5
        assert dict(d.items()) == {f"k{i}": i for i in range(5)}
        assert list(d.keys()) == [f"k{i}" for i in range(5)]
        assert list(d.values()) == list(range(5))

    def test_overwrite(self):
        d = HashDirectory()
        d.put("a", 1)
        d.put("a", 2)
        assert d.get("a") == 2
        assert len(d) == 1

    def test_unhashable_friendly_types(self):
        d = HashDirectory()
        d.put(42, "int-key")
        d.put((1, 2), "tuple-key")
        assert d.get(42) == "int-key"
        assert d.get((1, 2)) == "tuple-key"
