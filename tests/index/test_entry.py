"""Tests for index entries and posting grouping."""

from repro.index.entry import Entry, entries_by_value


class TestEntry:
    def test_fields(self):
        entry = Entry(record_id=7, day=3, info="offset:120")
        assert entry.record_id == 7
        assert entry.day == 3
        assert entry.info == "offset:120"

    def test_info_defaults_to_none(self):
        assert Entry(1, 1).info is None

    def test_expired(self):
        entry = Entry(1, day=5)
        assert entry.expired(oldest_live_day=6)
        assert not entry.expired(oldest_live_day=5)
        assert not entry.expired(oldest_live_day=4)

    def test_entries_are_hashable_tuples(self):
        assert Entry(1, 2) == Entry(1, 2)
        assert len({Entry(1, 2), Entry(1, 2), Entry(1, 3)}) == 2


class TestGrouping:
    def test_groups_by_value_preserving_order(self):
        postings = [
            ("b", Entry(1, 1)),
            ("a", Entry(2, 1)),
            ("b", Entry(3, 2)),
        ]
        grouped = entries_by_value(postings)
        assert grouped == {
            "b": [Entry(1, 1), Entry(3, 2)],
            "a": [Entry(2, 1)],
        }

    def test_empty(self):
        assert entries_by_value([]) == {}
