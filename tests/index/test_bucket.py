"""Tests for bucket bookkeeping."""

from repro.index.bucket import Bucket
from repro.index.entry import Entry
from repro.storage.extent import Extent


def make_bucket(entries, capacity=10, shared=False):
    return Bucket(
        value="v",
        entries=list(entries),
        extent=Extent(offset=0, size=capacity * 16),
        shared=shared,
        capacity_entries=capacity,
    )


class TestBucket:
    def test_counts_and_bytes(self):
        bucket = make_bucket([Entry(1, 1), Entry(2, 2)], capacity=10)
        assert bucket.live_count == 2
        assert bucket.used_bytes(16) == 32
        assert bucket.capacity_bytes(16) == 160
        assert bucket.free_entries() == 8

    def test_fits(self):
        bucket = make_bucket([Entry(1, 1)], capacity=3)
        assert bucket.fits(2)
        assert not bucket.fits(3)

    def test_shared_never_fits(self):
        bucket = make_bucket([Entry(1, 1)], capacity=5, shared=True)
        assert not bucket.fits(1)

    def test_remove_days(self):
        bucket = make_bucket([Entry(1, 1), Entry(2, 2), Entry(3, 1)])
        removed = bucket.remove_days({1})
        assert removed == 2
        assert [e.record_id for e in bucket.entries] == [2]

    def test_remove_no_match(self):
        bucket = make_bucket([Entry(1, 1)])
        assert bucket.remove_days({9}) == 0
        assert bucket.live_count == 1

    def test_select_range(self):
        bucket = make_bucket([Entry(i, i) for i in range(1, 6)])
        selected = bucket.select(2, 4)
        assert [e.record_id for e in selected] == [2, 3, 4]
