"""Tests for the three update techniques (Section 2.1)."""

import pytest

from repro.index.builder import build_packed_index
from repro.index.config import IndexConfig
from repro.index.constituent import ConstituentIndex
from repro.index.entry import Entry
from repro.index.updates import (
    UpdateTechnique,
    add_to_index,
    clone_index,
    delete_from_index,
    packed_rewrite,
)


def grouped(*postings):
    out = {}
    for value, entry in postings:
        out.setdefault(value, []).append(entry)
    return out


def two_day_index(disk, config):
    return build_packed_index(
        disk,
        config,
        grouped(("a", Entry(1, 1)), ("a", Entry(2, 2)), ("b", Entry(3, 1))),
        [1, 2],
    )


class TestClone:
    def test_clone_preserves_contents_and_packedness(self, disk, config):
        idx = two_day_index(disk, config)
        copy = clone_index(idx, name="shadow")
        assert copy.packed
        assert copy.days == idx.days
        assert sorted(e.record_id for e in copy.all_entries()) == [1, 2, 3]
        # Source untouched.
        assert sorted(e.record_id for e in idx.all_entries()) == [1, 2, 3]

    def test_clone_of_unpacked_preserves_slack(self, disk, config):
        idx = ConstituentIndex.create_empty(disk, config)
        idx.insert_postings(grouped(("a", Entry(1, 1))), [1])
        copy = clone_index(idx)
        assert not copy.packed
        assert copy.allocated_bytes == idx.allocated_bytes

    def test_clone_doubles_space_until_drop(self, disk, config):
        idx = two_day_index(disk, config)
        base = disk.live_bytes
        copy = clone_index(idx)
        assert disk.live_bytes == 2 * base
        idx.drop()
        assert disk.live_bytes == base
        assert copy.entry_count == 3

    def test_clone_charges_read_and_write(self, disk, config):
        idx = two_day_index(disk, config)
        before = disk.snapshot()
        clone_index(idx)
        delta = disk.snapshot() - before
        assert delta.bytes_read == idx.allocated_bytes
        assert delta.bytes_written == idx.allocated_bytes


class TestPackedRewrite:
    def test_rewrite_merges_and_deletes(self, disk, config):
        idx = two_day_index(disk, config)
        result = packed_rewrite(
            idx,
            grouped(("a", Entry(9, 3)), ("c", Entry(10, 3))),
            insert_days=[3],
            delete_days=[1],
        )
        assert result.packed
        assert result.days == {2, 3}
        assert sorted(e.record_id for e in result.all_entries()) == [2, 9, 10]
        # Old index still alive for the caller to swap out.
        assert idx.entry_count == 3

    def test_rewrite_is_exactly_sized(self, disk):
        config = IndexConfig(entry_size_bytes=10)
        idx = two_day_index(disk, config)
        result = packed_rewrite(idx, {}, (), delete_days=[1])
        assert result.allocated_bytes == result.used_bytes == 10

    def test_temp_index_freed(self, disk, config):
        idx = two_day_index(disk, config)
        base = disk.live_bytes
        result = packed_rewrite(idx, grouped(("z", Entry(50, 3))), [3], ())
        # Live: old index + new result, no temp left behind.
        assert disk.live_bytes == base + result.allocated_bytes


class TestAddToIndex:
    @pytest.mark.parametrize("technique", list(UpdateTechnique))
    def test_contents_identical_across_techniques(self, disk, config, technique):
        idx = two_day_index(disk, config)
        result = add_to_index(
            idx, grouped(("a", Entry(9, 3))), [3], technique
        )
        assert sorted(e.record_id for e in result.all_entries()) == [1, 2, 3, 9]
        assert result.days == {1, 2, 3}

    def test_in_place_returns_same_object(self, disk, config):
        idx = two_day_index(disk, config)
        result = add_to_index(
            idx, grouped(("a", Entry(9, 3))), [3], UpdateTechnique.IN_PLACE
        )
        assert result is idx
        assert not result.packed

    def test_simple_shadow_returns_new_unpacked(self, disk, config):
        idx = two_day_index(disk, config)
        result = add_to_index(
            idx, grouped(("a", Entry(9, 3))), [3], UpdateTechnique.SIMPLE_SHADOW
        )
        assert result is not idx
        assert not result.packed
        assert idx.entry_count == 3  # original untouched until dropped

    def test_packed_shadow_returns_new_packed(self, disk, config):
        idx = two_day_index(disk, config)
        result = add_to_index(
            idx, grouped(("a", Entry(9, 3))), [3], UpdateTechnique.PACKED_SHADOW
        )
        assert result is not idx
        assert result.packed
        assert result.allocated_bytes == result.used_bytes


class TestDeleteFromIndex:
    @pytest.mark.parametrize("technique", list(UpdateTechnique))
    def test_contents_identical_across_techniques(self, disk, config, technique):
        idx = two_day_index(disk, config)
        result = delete_from_index(idx, [1], technique)
        assert sorted(e.record_id for e in result.all_entries()) == [2]
        assert result.days == {2}

    def test_packed_shadow_delete_repacks(self, disk, config):
        idx = two_day_index(disk, config)
        idx.insert_postings(grouped(("c", Entry(7, 2))), [2])  # unpack it
        result = delete_from_index(idx, [1], UpdateTechnique.PACKED_SHADOW)
        assert result.packed
        assert result.allocated_bytes == result.used_bytes

    def test_unknown_technique_rejected(self, disk, config):
        idx = two_day_index(disk, config)
        with pytest.raises(ValueError):
            add_to_index(idx, {}, [], "not-a-technique")
        with pytest.raises(ValueError):
            delete_from_index(idx, [], "not-a-technique")
