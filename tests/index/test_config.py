"""Tests for index configuration."""

import pytest

from repro.index.btree import BPlusTreeDirectory
from repro.index.config import IndexConfig
from repro.index.hashdir import HashDirectory


class TestIndexConfig:
    def test_defaults(self):
        config = IndexConfig()
        assert config.entry_size_bytes == 16
        assert isinstance(config.directory_factory(), HashDirectory)

    def test_bytes_for(self):
        config = IndexConfig(entry_size_bytes=8)
        assert config.bytes_for(0) == 0
        assert config.bytes_for(100) == 800
        with pytest.raises(ValueError):
            config.bytes_for(-1)

    def test_invalid_entry_size(self):
        with pytest.raises(ValueError):
            IndexConfig(entry_size_bytes=0)

    def test_custom_directory_factory(self):
        config = IndexConfig(
            directory_factory=lambda: BPlusTreeDirectory(order=8)
        )
        a = config.directory_factory()
        b = config.directory_factory()
        assert isinstance(a, BPlusTreeDirectory)
        assert a is not b  # factory makes fresh directories
